"""Unified bug observations and triage.

An observation is anything an oracle flagged during one trial: a data
race report, a console failure line, or a deadlock.  The evaluation
harness deduplicates observations across trials and matches them against
the bug catalog (our analogue of the manual inspection step in section
5.2 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.detect.console import ConsoleChecker, ConsoleFinding
from repro.detect.datarace import RaceReport


class Triage(enum.Enum):
    """Manual-triage verdict analogue."""

    HARMFUL = "harmful"
    BENIGN = "benign"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class BugObservation:
    """One oracle firing: a race, a console failure, or a deadlock."""

    kind: str  # "race" | "console" | "deadlock"
    race: Optional[RaceReport] = None
    console: Optional[ConsoleFinding] = None
    detail: str = ""

    @property
    def key(self) -> Tuple:
        """Stable dedup key across trials."""
        if self.kind == "race":
            return ("race", self.race.key)
        if self.kind == "console":
            return ("console", self.console.key)
        return ("deadlock", self.detail)

    def involves(self, needle: str) -> bool:
        """True when the observation mentions ``needle`` (ins or text)."""
        if self.kind == "race":
            return self.race.involves(needle)
        if self.kind == "console":
            return needle in self.console.line
        return needle in self.detail

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "race":
            return str(self.race)
        if self.kind == "console":
            return f"console: {self.console.line}"
        return f"deadlock: {self.detail}"


def observation_to_obj(obs: BugObservation) -> dict:
    """A JSON-ready representation of one observation (checkpoint use)."""
    obj: dict = {"kind": obs.kind, "detail": obs.detail}
    if obs.kind == "race":
        r = obs.race
        obj["race"] = {
            "ins_a": r.ins_a,
            "ins_b": r.ins_b,
            "type_a": r.type_a,
            "type_b": r.type_b,
            "addr": r.addr,
            "size": r.size,
            "value_a": r.value_a,
            "value_b": r.value_b,
            "thread_a": r.thread_a,
            "thread_b": r.thread_b,
        }
    elif obs.kind == "console":
        obj["console"] = {"kind": obs.console.kind, "line": obs.console.line}
    return obj


def observation_from_obj(obj: dict) -> BugObservation:
    """Rebuild an observation from :func:`observation_to_obj` output."""
    kind = obj["kind"]
    if kind == "race":
        return BugObservation(
            kind="race", race=RaceReport(**obj["race"]), detail=obj.get("detail", "")
        )
    if kind == "console":
        return BugObservation(
            kind="console",
            console=ConsoleFinding(**obj["console"]),
            detail=obj.get("detail", ""),
        )
    return BugObservation(kind=kind, detail=obj.get("detail", ""))


def observe(result, checker: Optional[ConsoleChecker] = None) -> List[BugObservation]:
    """Extract all bug observations from one execution result."""
    checker = checker or ConsoleChecker()
    observations: List[BugObservation] = []
    for race in result.races:
        observations.append(BugObservation(kind="race", race=race))
    for finding in checker.scan(result.console):
        observations.append(BugObservation(kind="console", console=finding))
    if result.deadlocked:
        observations.append(
            BugObservation(kind="deadlock", detail="all threads stuck")
        )
    return observations
