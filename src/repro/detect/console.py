"""Kernel console checker.

The paper's ``is_bug`` oracle captures guest console output and matches
failure patterns: panics, NULL dereferences, filesystem errors and I/O
errors.  This module scans the console lines a trial produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

# (pattern substring, finding kind) in match priority order.
CONSOLE_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("BUG: kernel NULL pointer dereference", "null-deref"),
    ("BUG: unable to handle page fault", "page-fault"),
    ("Kernel panic", "panic"),
    ("EXT4-fs error", "ext4-error"),
    ("Blk_update_request: I/O error", "io-error"),
    ("tty_port_open: port type unknown", "tty-error"),
)


@dataclass(frozen=True)
class ConsoleFinding:
    """One console line that matched a failure pattern."""

    kind: str
    line: str

    @property
    def key(self) -> Tuple[str, str]:
        """Dedup key: the kind plus the line with addresses normalised."""
        return (self.kind, _normalise(self.line))


class ConsoleChecker:
    """Scans console transcripts for failure patterns."""

    def __init__(self, patterns: Sequence[Tuple[str, str]] = CONSOLE_PATTERNS):
        self.patterns = tuple(patterns)

    def scan(self, console: Sequence[str]) -> List[ConsoleFinding]:
        """Return one finding per matching console line (first pattern wins)."""
        findings = []
        for line in console:
            for pattern, kind in self.patterns:
                if pattern in line:
                    findings.append(ConsoleFinding(kind=kind, line=line))
                    break
        return findings


def _normalise(line: str) -> str:
    """Strip hex addresses so identical bugs at different addresses dedup."""
    out = []
    for token in line.split():
        if token.startswith("0x"):
            out.append("0xADDR")
        else:
            out.append(token)
    return " ".join(out)
