"""Bug oracles.

Snowboard itself never raises a false alarm: bugs are only reported when
a dynamic detector fires during concurrent execution.  We provide the
same stock detectors the paper uses — a DataCollider-style data race
detector (ours is a precise vector-clock happens-before detector rather
than a sampling one) and a kernel-console checker for panics and
filesystem errors — plus the catalog that maps raw observations onto the
Table 2 bug inventory for the evaluation harness.
"""

from repro.detect.catalog import BUG_CATALOG, BugSpec, match_observations
from repro.detect.console import ConsoleChecker, ConsoleFinding
from repro.detect.datarace import RaceDetector, RaceReport
from repro.detect.postmortem import (
    PostmortemReport,
    analyze_all,
    analyze_race,
    decode_ins,
)
from repro.detect.report import BugObservation, Triage, observe

__all__ = [
    "BUG_CATALOG",
    "BugSpec",
    "match_observations",
    "ConsoleChecker",
    "ConsoleFinding",
    "RaceDetector",
    "RaceReport",
    "PostmortemReport",
    "analyze_all",
    "analyze_race",
    "decode_ins",
    "BugObservation",
    "Triage",
    "observe",
]
