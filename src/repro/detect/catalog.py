"""The bug catalog: mapping raw observations to the Table 2 inventory.

Each planted bug in the mini-kernel corresponds to one row of Table 2 in
the paper.  Matchers key on the *kernel symbols* involved (the qualified
function names embedded in instruction addresses) and on console
patterns — the same signals a kernel developer uses to identify an oops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Set

from repro.detect.report import BugObservation, Triage

Matcher = Callable[[BugObservation], bool]


@dataclass(frozen=True)
class BugSpec:
    """One catalogued bug (a row of Table 2)."""

    id: str
    paper_id: int
    summary: str
    subsystem: str
    bug_type: str  # "DR" | "AV" | "OV"
    triage: Triage
    input_shape: str  # "distinct" | "duplicate"
    matcher: Matcher

    def matches(self, obs: BugObservation) -> bool:
        return self.matcher(obs)


def _race_between(a: str, b: str) -> Matcher:
    """Race whose two instructions mention ``a`` and ``b`` respectively."""

    def match(obs: BugObservation) -> bool:
        if obs.kind != "race":
            return False
        r = obs.race
        return (a in r.ins_a and b in r.ins_b) or (a in r.ins_b and b in r.ins_a)

    return match


def _race_involving(*needles: str) -> Matcher:
    """Race where every needle appears in at least one instruction."""

    def match(obs: BugObservation) -> bool:
        if obs.kind != "race":
            return False
        return all(obs.involves(n) for n in needles)

    return match


def _console(pattern: str, rip: str = "") -> Matcher:
    """Console finding containing ``pattern`` (and ``rip`` if given)."""

    def match(obs: BugObservation) -> bool:
        if obs.kind != "console":
            return False
        line = obs.console.line
        return pattern in line and (not rip or rip in line)

    return match


def _any(*matchers: Matcher) -> Matcher:
    def match(obs: BugObservation) -> bool:
        return any(m(obs) for m in matchers)

    return match


BUG_CATALOG: List[BugSpec] = [
    BugSpec(
        id="SB01",
        paper_id=1,
        summary="BUG: unable to handle page fault (rhashtable double fetch)",
        subsystem="lib/rhashtable",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_any(
            _console("BUG:", rip="rht_"),
            _race_involving("rhashtable.py"),
        ),
    ),
    BugSpec(
        id="SB02",
        paper_id=2,
        summary="EXT4-fs error: swap_inode_boot_loader: checksum invalid",
        subsystem="fs/ext4",
        bug_type="AV",
        triage=Triage.HARMFUL,
        input_shape="duplicate",
        matcher=_console("swap_inode_boot_loader", rip="checksum invalid"),
    ),
    BugSpec(
        id="SB03",
        paper_id=3,
        summary="EXT4-fs error: ext4_ext_check_inode: invalid magic",
        subsystem="fs/ext4",
        bug_type="AV",
        triage=Triage.UNKNOWN,
        input_shape="duplicate",
        matcher=_console("ext4_ext_check_inode"),
    ),
    BugSpec(
        id="SB04",
        paper_id=4,
        summary="Blk_update_request: I/O error",
        subsystem="fs",
        bug_type="AV",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_console("Blk_update_request: I/O error"),
    ),
    BugSpec(
        id="SB05",
        paper_id=5,
        summary="Data race: blkdev_ioctl() / generic_fadvise()",
        subsystem="block,mm",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_race_between("sample_ra_pages", "ioctl_blkraset"),
    ),
    BugSpec(
        id="SB06",
        paper_id=6,
        summary="Data race: do_mpage_readpage() / set_blocksize()",
        subsystem="fs",
        bug_type="DR",
        triage=Triage.UNKNOWN,
        input_shape="distinct",
        matcher=_race_between("sample_blocksize", "ioctl_set_blocksize"),
    ),
    BugSpec(
        id="SB07",
        paper_id=7,
        summary="Data race: rawv6_send_hdrinc() / __dev_set_mtu()",
        subsystem="net",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_race_between("rawv6_send_hdrinc", "ioctl_set_mtu"),
    ),
    BugSpec(
        id="SB08",
        paper_id=8,
        summary="Data race: packet_getname() / e1000_set_mac()",
        subsystem="net",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_race_between("sys_getsockname", "ioctl_set_mac"),
    ),
    BugSpec(
        id="SB09",
        paper_id=9,
        summary="Data race: dev_ifsioc_locked() / eth_commit_mac_addr_change()",
        subsystem="net",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_race_between("ioctl_get_mac", "ioctl_set_mac"),
    ),
    BugSpec(
        id="SB10",
        paper_id=10,
        summary="Data race: fib6_get_cookie_safe() / fib6_clean_node()",
        subsystem="net",
        bug_type="DR",
        triage=Triage.BENIGN,
        input_shape="distinct",
        matcher=_race_between("rawv6_send_hdrinc", "sys_route_update"),
    ),
    BugSpec(
        id="SB11",
        paper_id=11,
        summary="BUG: kernel NULL pointer dereference (configfs lookup)",
        subsystem="fs/configfs",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_any(
            _console("NULL pointer dereference", rip="sys_lookup"),
            _race_between("sys_mkdir", "sys_lookup"),
        ),
    ),
    BugSpec(
        id="SB12",
        paper_id=12,
        summary="BUG: kernel NULL pointer dereference (l2tp tunnel sock)",
        subsystem="net/l2tp",
        bug_type="OV",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_console("NULL pointer dereference", rip="pppol2tp_sendmsg"),
    ),
    BugSpec(
        id="SB13",
        paper_id=13,
        summary="Data race: cache_alloc_refill() / free_block() (slab stats)",
        subsystem="mm",
        bug_type="DR",
        triage=Triage.BENIGN,
        input_shape="duplicate",
        matcher=_race_involving("alloc.py"),
    ),
    BugSpec(
        id="SB14",
        paper_id=14,
        summary="Data race: tty_port_open() / uart_do_autoconfig()",
        subsystem="drivers/tty",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_any(
            _race_between("sys_tty_open", "ioctl_autoconfig"),
            _console("tty_port_open: port type unknown"),
        ),
    ),
    BugSpec(
        id="SB15",
        paper_id=15,
        summary="Data race: snd_ctl_elem_add() (quota accounting)",
        subsystem="sound/core",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_race_involving("sys_snd_ctl_add"),
    ),
    BugSpec(
        id="SB16",
        paper_id=16,
        summary="Data race: tcp default congestion control",
        subsystem="net/ipv4",
        bug_type="DR",
        triage=Triage.BENIGN,
        input_shape="distinct",
        matcher=_any(
            _race_between("sys_connect", "sys_setsockopt"),
            _race_involving("sys_setsockopt", "net.py"),
        ),
    ),
    BugSpec(
        id="SB17",
        paper_id=17,
        summary="Data race: fanout_demux_rollover() / __fanout_unlink()",
        subsystem="net/packet",
        bug_type="DR",
        triage=Triage.HARMFUL,
        input_shape="distinct",
        matcher=_any(
            _race_between("fanout_demux_rollover", "fanout_unlink"),
            _race_between("fanout_demux_rollover", "fanout_add"),
        ),
    ),
]


def match_observations(
    observations: Iterable[BugObservation],
) -> Dict[str, List[BugObservation]]:
    """Group observations by catalog bug id (first matching spec wins).

    Observations matching no spec are grouped under ``"unmatched"``.
    """
    grouped: Dict[str, List[BugObservation]] = {}
    for obs in observations:
        bug_id = "unmatched"
        for spec in BUG_CATALOG:
            if spec.matches(obs):
                bug_id = spec.id
                break
        grouped.setdefault(bug_id, []).append(obs)
    return grouped


def catalog_ids() -> Set[str]:
    return {spec.id for spec in BUG_CATALOG}


def spec_by_id(bug_id: str) -> BugSpec:
    for spec in BUG_CATALOG:
        if spec.id == bug_id:
            return spec
    raise KeyError(bug_id)
