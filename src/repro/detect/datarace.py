"""Happens-before data race detection.

A precise vector-clock detector in the FastTrack tradition, specialised
for the executor's serialised two-vCPU model:

* threads carry vector clocks, advanced on every event;
* lock release/acquire joins clocks through per-lock clocks;
* atomic (marked) stores publish a per-address release clock that atomic
  loads join — this models ``rcu_assign_pointer``/``rcu_dereference`` and
  WRITE_ONCE/READ_ONCE, so RCU publication is correctly *not* a race
  (and everything sequenced before the release is ordered for readers);
* ``synchronize_rcu`` joins the clock left behind by completed RCU
  read-side critical sections;
* shadow memory keeps per-byte last-write and last-read epochs.

Two conflicting accesses are a data race when at least one is plain
(non-atomic) and neither happens-before the other — the C11/LKMM notion,
which is also what DataCollider approximates by sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.kernel.ops import SyncOp
from repro.machine.accesses import MemoryAccess


@dataclass(frozen=True)
class RaceReport:
    """One detected data race, deduplicated by instruction pair."""

    ins_a: str
    ins_b: str
    type_a: str
    type_b: str
    addr: int
    size: int
    value_a: int
    value_b: int
    thread_a: int
    thread_b: int

    @property
    def key(self) -> Tuple:
        """Dedup key: the unordered instruction/type pair."""
        return tuple(sorted(((self.ins_a, self.type_a), (self.ins_b, self.type_b))))

    def involves(self, needle: str) -> bool:
        """True when either instruction address contains ``needle``."""
        return needle in self.ins_a or needle in self.ins_b

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"data race at {self.addr:#x}: "
            f"{self.type_a}@{self.ins_a} (t{self.thread_a}) vs "
            f"{self.type_b}@{self.ins_b} (t{self.thread_b})"
        )


class _Epoch:
    """A byte-granular access epoch: who, when, with what access."""

    __slots__ = ("thread", "clock", "access", "atomic")

    def __init__(self, thread: int, clock: int, access: MemoryAccess, atomic: bool):
        self.thread = thread
        self.clock = clock
        self.access = access
        self.atomic = atomic


class RaceDetector:
    """Precise happens-before detector over the serialised execution."""

    def __init__(self, nthreads: int = 2, metrics=None):
        self.nthreads = nthreads
        self._clock: List[List[int]] = [[0] * nthreads for _ in range(nthreads)]
        for t in range(nthreads):
            self._clock[t][t] = 1
        self._lock_clock: Dict[int, List[int]] = {}
        self._release_clock: Dict[int, List[int]] = {}
        self._rcu_clock: List[int] = [0] * nthreads
        self._last_write: Dict[int, _Epoch] = {}
        self._last_read: Dict[int, Dict[int, _Epoch]] = {}
        self._reports: List[RaceReport] = []
        self._seen: set = set()
        # Optional obs Metrics registry.  Counted only when a *fresh*
        # report is recorded (rare), never on the per-access hot path,
        # so an attached registry costs one branch per report.
        self._metrics = metrics

    # -- events ------------------------------------------------------------------

    def on_access(self, access: MemoryAccess, atomic: bool = False) -> None:
        """Process one traced (non-stack) memory access.

        Check and record are fused into one pass over the byte range —
        every byte key is distinct, so recording byte ``b`` can never
        influence the check of byte ``b' != b`` within the same access,
        and report order is unchanged.  One shared :class:`_Epoch` is
        recorded for all bytes (it is immutable), instead of one
        allocation per byte.
        """
        t = access.thread
        clock = self._clock[t]
        is_write = access.is_write

        if atomic:
            if is_write:
                self._release_clock[access.addr] = self._joined(
                    self._release_clock.get(access.addr), clock
                )
            else:
                rel = self._release_clock.get(access.addr)
                if rel is not None:
                    self._join_into(clock, rel)

        last_write = self._last_write
        last_read = self._last_read
        races = self._races
        epoch = _Epoch(t, clock[t], access, atomic)
        for byte in range(access.addr, access.end):
            prev_write = last_write.get(byte)
            if prev_write is not None and races(prev_write, t, clock, atomic):
                self._report(prev_write.access, access)
            if is_write:
                readers = last_read.get(byte)
                if readers is not None:
                    for reader in readers.values():
                        if races(reader, t, clock, atomic):
                            self._report(reader.access, access)
                    del last_read[byte]
                last_write[byte] = epoch
            else:
                readers = last_read.get(byte)
                if readers is None:
                    readers = last_read[byte] = {}
                readers[t] = epoch

        clock[t] += 1

    def on_sync(self, thread: int, op: SyncOp) -> None:
        """Process a synchronisation event from the executor."""
        clock = self._clock[thread]
        if op.kind == "acquire":
            held = self._lock_clock.get(op.obj)
            if held is not None:
                self._join_into(clock, held)
        elif op.kind == "release":
            self._lock_clock[op.obj] = self._joined(self._lock_clock.get(op.obj), clock)
            clock[thread] += 1
        elif op.kind == "rcu_read_unlock":
            self._join_into(self._rcu_clock, clock)
            clock[thread] += 1
        elif op.kind == "rcu_synchronize":
            self._join_into(clock, self._rcu_clock)
        # rcu_read_lock carries no edge.

    def reports(self) -> List[RaceReport]:
        """All deduplicated race reports so far."""
        return list(self._reports)

    def load_state(self, template: "RaceDetector") -> None:
        """Overwrite this detector's state with a copy of ``template``'s.

        Prefix-fork memoization replays a task's shared sequential prefix
        into one template detector, then each forked trial's fresh
        detector adopts that state here.  Vector clocks, the RCU clock
        and the per-byte reader maps are mutated in place by
        on_access/on_sync and must be copied per-container; lock/release
        clock lists are only ever replaced wholesale (``_joined`` builds
        new lists) and :class:`_Epoch` objects are immutable, so those
        are shared.
        """
        self.nthreads = template.nthreads
        self._clock = [list(row) for row in template._clock]
        self._lock_clock = dict(template._lock_clock)
        self._release_clock = dict(template._release_clock)
        self._rcu_clock = list(template._rcu_clock)
        self._last_write = dict(template._last_write)
        self._last_read = {
            byte: dict(readers) for byte, readers in template._last_read.items()
        }
        self._reports = list(template._reports)
        self._seen = set(template._seen)

    # -- internals -----------------------------------------------------------------

    def _races(self, prev: _Epoch, thread: int, clock: List[int], atomic: bool) -> bool:
        if prev.thread == thread:
            return False
        if prev.atomic and atomic:
            return False  # both marked: synchronised by definition
        return prev.clock > clock[prev.thread]

    def _report(self, a: MemoryAccess, b: MemoryAccess) -> None:
        report = RaceReport(
            ins_a=a.ins,
            ins_b=b.ins,
            type_a=a.type.value,
            type_b=b.type.value,
            addr=b.addr,
            size=b.size,
            value_a=a.value,
            value_b=b.value,
            thread_a=a.thread,
            thread_b=b.thread,
        )
        if report.key in self._seen:
            return
        self._seen.add(report.key)
        self._reports.append(report)
        if self._metrics is not None:
            self._metrics.count("detect.races", 1)

    def _joined(self, base: Optional[List[int]], other: List[int]) -> List[int]:
        if base is None:
            return list(other)
        return [max(x, y) for x, y in zip(base, other)]

    def _join_into(self, target: List[int], other: List[int]) -> None:
        for i, value in enumerate(other):
            if value > target[i]:
                target[i] = value
