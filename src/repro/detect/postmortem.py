"""Post-mortem analysis of detected races (section 4.4.1).

"To improve the diagnosis, we built post-mortem analysis tools that
verify that a data race is caused by an identified PMC and its kernel
source code information."  This module does exactly that: it matches a
race report back to the identified PMC set, and resolves instruction
addresses to kernel source locations with code snippets — the material a
developer needs to triage the report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.detect.datarace import RaceReport
from repro.pmc.identify import PmcSet
from repro.pmc.model import PMC


@dataclass(frozen=True)
class SourceLocation:
    """A decoded instruction address: file, function, line, code line."""

    file: str
    function: str
    line: int
    code: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f"  # {self.code}" if self.code else ""
        return f"{self.file}:{self.line} in {self.function}{suffix}"


@dataclass
class PostmortemReport:
    """A race report enriched with PMC provenance and source info."""

    race: RaceReport
    matching_pmcs: List[PMC] = field(default_factory=list)
    location_a: Optional[SourceLocation] = None
    location_b: Optional[SourceLocation] = None

    @property
    def pmc_confirmed(self) -> bool:
        """True when the race corresponds to an identified PMC."""
        return bool(self.matching_pmcs)

    def render(self) -> str:
        lines = [f"data race at {self.race.addr:#x} (+{self.race.size})"]
        lines.append(f"  {self.race.type_a}: {self.location_a or self.race.ins_a}")
        lines.append(f"  {self.race.type_b}: {self.location_b or self.race.ins_b}")
        if self.pmc_confirmed:
            lines.append(
                f"  predicted by {len(self.matching_pmcs)} identified PMC(s); e.g."
            )
            lines.append(f"    {self.matching_pmcs[0]}")
        else:
            lines.append("  not predicted by any identified PMC (incidental race)")
        return "\n".join(lines)


def decode_ins(ins: str, kernel_root: Optional[str] = None) -> SourceLocation:
    """Decode ``file.py:qualified.function:line`` and fetch the code line.

    ``kernel_root`` defaults to the installed ``repro`` package directory;
    files outside it simply yield no snippet.
    """
    parts = ins.rsplit(":", 2)
    if len(parts) != 3:
        return SourceLocation(file=ins, function="?", line=0)
    file_name, function, line_text = parts
    try:
        line = int(line_text)
    except ValueError:
        return SourceLocation(file=file_name, function=function, line=0)

    if kernel_root is None:
        import repro

        kernel_root = os.path.dirname(repro.__file__)
    code = ""
    for dirpath, _, filenames in os.walk(kernel_root):
        if file_name in filenames:
            path = os.path.join(dirpath, file_name)
            try:
                with open(path) as handle:
                    lines = handle.readlines()
                if 1 <= line <= len(lines):
                    code = lines[line - 1].strip()
            except OSError:  # pragma: no cover - unreadable source
                code = ""
            break
    return SourceLocation(file=file_name, function=function, line=line, code=code)


def _sides_match(pmc: PMC, race: RaceReport) -> bool:
    """Does this PMC name the racing instruction pair (in either role)?"""
    pair = {(race.ins_a, race.type_a), (race.ins_b, race.type_b)}
    pmc_pair = {(pmc.write.ins, "W"), (pmc.read.ins, "R")}
    if pair != pmc_pair:
        return False
    lo, hi = pmc.overlap
    return lo < race.addr + race.size and race.addr < hi


def analyze_race(
    race: RaceReport, pmcset: Optional[PmcSet] = None
) -> PostmortemReport:
    """Build the enriched post-mortem report for one race."""
    matching: List[PMC] = []
    if pmcset is not None:
        matching = [pmc for pmc in pmcset if _sides_match(pmc, race)]
    return PostmortemReport(
        race=race,
        matching_pmcs=matching,
        location_a=decode_ins(race.ins_a),
        location_b=decode_ins(race.ins_b),
    )


def analyze_all(
    races: List[RaceReport], pmcset: Optional[PmcSet] = None
) -> List[PostmortemReport]:
    """Post-mortem for every race, PMC-confirmed reports first."""
    reports = [analyze_race(race, pmcset) for race in races]
    reports.sort(key=lambda r: (not r.pmc_confirmed, r.race.addr))
    return reports
