"""Seeded random program generation and mutation.

A deliberately simple feedback-free generator (the corpus layer adds the
coverage feedback): programs are short call sequences over the syscall
specs, with typed fd arguments wired to earlier compatible fd-producing
calls — the resource discipline Syzkaller enforces.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.fuzz.prog import Call, Program, Res
from repro.fuzz.spec import (
    DOMAINS,
    FD_ANY,
    FD_KINDS,
    SYSCALL_SPECS,
    SyscallSpec,
    spec_of_call,
)

MAX_PROGRAM_LEN = 6


def _fd_resource(kind: str) -> Optional[str]:
    """The resource type an fd arg kind requires (None for fd:any)."""
    resource = kind.split(":", 1)[1]
    return None if resource == "any" else resource


class ProgramGenerator:
    """Generates and mutates sequential test programs deterministically."""

    def __init__(self, seed: int = 0, max_len: int = MAX_PROGRAM_LEN):
        self.rng = random.Random(seed)
        self.max_len = max_len
        self._weighted_specs: List[SyscallSpec] = []
        for spec in SYSCALL_SPECS:
            self._weighted_specs.extend([spec] * spec.weight)

    # -- generation ---------------------------------------------------------

    def generate(self, length: Optional[int] = None) -> Program:
        """Generate one fresh random program."""
        length = length or self.rng.randint(1, self.max_len)
        calls: List[Call] = []
        for _ in range(length):
            producers = self._producers(calls, len(calls))
            spec = self._pick_spec(producers)
            calls.append(self._make_call(spec, producers))
        return Program(tuple(calls))

    def mutate(self, program: Program) -> Program:
        """Apply one random mutation: insert, drop, or retune arguments."""
        choice = self.rng.random()
        if choice < 0.4 or len(program) == 0:
            return self._insert(program)
        if choice < 0.6 and len(program) > 1:
            return self._drop(program)
        return self._retune(program)

    # -- internals --------------------------------------------------------------

    def _producers(self, calls: List[Call], upto: int) -> Dict[str, List[int]]:
        """Resource type -> indices of producing calls before ``upto``."""
        producers: Dict[str, List[int]] = {}
        for i, call in enumerate(calls[:upto]):
            makes = spec_of_call(call).makes
            if makes:
                producers.setdefault(makes, []).append(i)
        return producers

    def _satisfiable(self, spec: SyscallSpec, producers: Dict[str, List[int]]) -> bool:
        for kind in spec.args:
            if isinstance(kind, str) and kind in FD_KINDS:
                resource = _fd_resource(kind)
                if resource is None:
                    if not any(producers.values()):
                        return False
                elif not producers.get(resource):
                    return False
        return True

    def _pick_spec(self, producers: Dict[str, List[int]]) -> SyscallSpec:
        while True:
            spec = self.rng.choice(self._weighted_specs)
            if self._satisfiable(spec, producers):
                return spec

    def _make_call(self, spec: SyscallSpec, producers: Dict[str, List[int]]) -> Call:
        args = []
        for kind in spec.args:
            if isinstance(kind, tuple):  # ("const", value)
                args.append(kind[1])
            elif kind in FD_KINDS:
                resource = _fd_resource(kind)
                if resource is None:
                    pool = [i for pool in producers.values() for i in pool]
                else:
                    pool = producers.get(resource, [])
                if pool:
                    args.append(Res(self.rng.choice(pool)))
                else:
                    # No producer in scope: a constant invalid fd, like
                    # real fuzzer corpora contain.
                    args.append(0)
            else:
                args.append(self.rng.choice(DOMAINS[kind]))
        return Call(spec.name, tuple(args))

    def _insert(self, program: Program) -> Program:
        calls = list(program.calls)
        if len(calls) >= self.max_len:
            return self._retune(program)
        pos = self.rng.randint(0, len(calls))
        producers = self._producers(calls, pos)
        spec = self._pick_spec(producers)
        call = self._make_call(spec, producers)
        calls.insert(pos, call)
        fixed = []
        for i, c in enumerate(calls):
            if i <= pos:
                fixed.append(c)
                continue
            fixed.append(self._shift_refs(c, pos))
        return Program(tuple(fixed))

    def _drop(self, program: Program) -> Program:
        calls = list(program.calls)
        pos = self.rng.randrange(len(calls))
        del calls[pos]
        fixed: List[Call] = []
        for call in calls:
            fixed.append(self._heal_refs(call, pos, fixed))
        return Program(tuple(fixed))

    def _retune(self, program: Program) -> Program:
        calls = list(program.calls)
        pos = self.rng.randrange(len(calls))
        spec = spec_of_call(calls[pos])
        producers = self._producers(calls, pos)
        calls[pos] = self._make_call(spec, producers)
        # A retuned call keeps its resource-producing status, so later
        # references stay valid.
        return Program(tuple(calls))

    def _shift_refs(self, call: Call, inserted_at: int) -> Call:
        args = tuple(
            Res(a.index + 1) if isinstance(a, Res) and a.index >= inserted_at else a
            for a in call.args
        )
        return Call(call.name, args)

    def _heal_refs(self, call: Call, dropped: int, earlier: List[Call]) -> Call:
        """Repair resource references after a call was removed."""
        spec = spec_of_call(call)
        producers = self._producers(earlier, len(earlier))
        args = []
        for position, arg in enumerate(call.args):
            if not isinstance(arg, Res):
                args.append(arg)
                continue
            kind = spec.args[position] if position < len(spec.args) else FD_ANY
            resource = _fd_resource(kind) if isinstance(kind, str) else None
            index = arg.index
            if index == dropped:
                index = -1
            elif index > dropped:
                index -= 1
            valid = (
                0 <= index < len(earlier)
                and spec_of_call(earlier[index]).makes is not None
                and (resource is None or spec_of_call(earlier[index]).makes == resource)
            )
            if not valid:
                if resource is None:
                    pool = [i for p in producers.values() for i in p]
                else:
                    pool = producers.get(resource, [])
                if pool:
                    index = self.rng.choice(pool)
                else:
                    args.append(0)
                    continue
            args.append(Res(index))
        return Call(call.name, tuple(args))
