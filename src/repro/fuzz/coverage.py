"""Edge coverage over instruction traces.

The Syzkaller stand-in exports edge coverage — consecutive pairs of
instruction addresses executed by the test's kernel thread — which the
corpus distiller uses to keep only tests that contribute new behaviour
(section 4.1: "Snowboard uses the edge coverage metric, exported by
Syzkaller, to select tests").
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.machine.accesses import MemoryAccess

Edge = Tuple[str, str]


def edge_coverage(accesses: Iterable[MemoryAccess], thread: int = 0) -> FrozenSet[Edge]:
    """Edges (consecutive instruction-address pairs) of one thread's trace.

    Stack accesses are included on purpose: coverage is a control-flow
    notion, unlike the shared-memory profile used for PMCs.
    """
    edges = set()
    prev = None
    for access in accesses:
        if access.thread != thread:
            continue
        if prev is not None and prev != access.ins:
            edges.add((prev, access.ins))
        prev = access.ins
    return frozenset(edges)
