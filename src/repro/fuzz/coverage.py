"""Edge coverage over instruction traces.

The Syzkaller stand-in exports edge coverage — consecutive pairs of
instruction addresses executed by the test's kernel thread — which the
corpus distiller uses to keep only tests that contribute new behaviour
(section 4.1: "Snowboard uses the edge coverage metric, exported by
Syzkaller, to select tests").
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.machine.accesses import MemoryAccess, iter_access_fields

Edge = Tuple[str, str]


def edge_coverage(accesses: Iterable[MemoryAccess], thread: int = 0) -> FrozenSet[Edge]:
    """Edges (consecutive instruction-address pairs) of one thread's trace.

    Stack accesses are included on purpose: coverage is a control-flow
    notion, unlike the shared-memory profile used for PMCs.  Consumes
    the trace columnar (only thread and instruction address are read).
    """
    edges = set()
    prev = None
    for _seq, t, _type, _addr, _size, _value, ins, _stack in iter_access_fields(
        accesses
    ):
        if t != thread:
            continue
        if prev is not None and prev != ins:
            edges.add((prev, ins))
        prev = ins
    return frozenset(edges)
