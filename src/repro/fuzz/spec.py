"""Syscall descriptions for the mini-kernel.

The Syzkaller-equivalent type system, shrunk to what the mini-kernel
understands:

* **Typed fd resources** — ``open`` produces a ``file`` fd, ``socket`` a
  ``sock`` fd, ``tty_open`` a ``tty`` fd; consumers declare which kind
  they need (``fd:file`` etc.), exactly like Syzkaller resource types.
* **ioctl variants** — one spec per command with the right fd type and a
  constant command argument, mirroring Syzkaller's ``ioctl$CMD`` forms.
* **Small constant domains** — keys, paths and tunnel ids are drawn from
  a few values so independent tests collide on the same kernel objects,
  the way a real distilled corpus does.
* **Seed programs** — canonical per-subsystem flows (the hand-written
  seeds every kernel fuzzer ships with) that guarantee each subsystem's
  deep paths are reachable from the initial corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.fuzz.prog import Call, Program, Res, prog

# Argument domain kinds.
FD_FILE = "fd:file"
FD_SOCK = "fd:sock"
FD_TTY = "fd:tty"
FD_FIFO = "fd:fifo"
FD_ANY = "fd:any"
FD_KINDS = (FD_FILE, FD_SOCK, FD_TTY, FD_FIFO, FD_ANY)

PATH = "path"
KEY = "key"
PROTO = "proto"
SMALL = "small"
VALUE = "value"
SOCKOPT = "sockopt"
NAME = "name"

# Const arguments are spelled ("const", value).
Const = Tuple[str, int]
ArgKind = Union[str, Const]


def const(value: int) -> Const:
    return ("const", value)


@dataclass(frozen=True)
class SyscallSpec:
    """Static description of one syscall (or ioctl variant)."""

    name: str
    args: Tuple[ArgKind, ...] = ()
    makes: Optional[str] = None  # resource type produced ("file"/"sock"/"tty")
    weight: int = 1
    variant: str = ""

    @property
    def label(self) -> str:
        return f"{self.name}${self.variant}" if self.variant else self.name


# Domains: kind -> candidate constant values.
DOMAINS = {
    PATH: tuple(range(6)) + (100, 101),
    KEY: tuple(range(4)),
    PROTO: (0, 1, 2, 3),
    SMALL: tuple(range(8)),
    VALUE: (0, 1, 7, 64, 255, 0x1234, 0xDEAD, 0xA1B2C3D4E5),
    SOCKOPT: (1, 2, 3),
    NAME: tuple(range(4)),
}

# ioctl command numbers (kept in sync with the subsystems).
IOCTL_SWAP_BOOT = 1
IOCTL_SET_BLOCKSIZE = 2
IOCTL_BLKRASET = 3
IOCTL_SET_MAC = 4
IOCTL_GET_MAC = 5
IOCTL_SET_MTU = 6
IOCTL_TTY_AUTOCONF = 7


SYSCALL_SPECS: Tuple[SyscallSpec, ...] = (
    # Filesystem.
    SyscallSpec("open", (PATH,), makes="file", weight=3),
    SyscallSpec("close", (FD_ANY,)),
    SyscallSpec("read", (FD_FILE, SMALL), weight=2),
    SyscallSpec("write", (FD_FILE, VALUE), weight=2),
    SyscallSpec("fsync", (FD_FILE,)),
    SyscallSpec("fadvise", (FD_FILE,)),
    SyscallSpec("mkdir", (NAME,)),
    SyscallSpec("lookup", (NAME,)),
    # Block device ioctls (on file fds).
    SyscallSpec("ioctl", (FD_FILE, const(IOCTL_SWAP_BOOT), VALUE), variant="swap_boot"),
    SyscallSpec("ioctl", (FD_FILE, const(IOCTL_SET_BLOCKSIZE), SMALL), variant="set_blocksize"),
    SyscallSpec("ioctl", (FD_FILE, const(IOCTL_BLKRASET), SMALL), variant="blkraset"),
    # IPC.
    SyscallSpec("msgget", (KEY,), weight=2),
    SyscallSpec("msgctl", (KEY, SMALL)),
    SyscallSpec("msgsnd", (KEY, VALUE)),
    SyscallSpec("msgrcv", (KEY,)),
    # Network.
    SyscallSpec("socket", (PROTO,), makes="sock", weight=3),
    SyscallSpec("connect", (FD_SOCK, SMALL), weight=2),
    SyscallSpec("sendmsg", (FD_SOCK, VALUE), weight=2),
    SyscallSpec("getsockname", (FD_SOCK,)),
    SyscallSpec("setsockopt", (FD_SOCK, SOCKOPT, VALUE)),
    SyscallSpec("route_update", (VALUE,)),
    SyscallSpec("ioctl", (FD_SOCK, const(IOCTL_SET_MAC), VALUE), variant="set_mac"),
    SyscallSpec("ioctl", (FD_SOCK, const(IOCTL_GET_MAC), const(0)), variant="get_mac"),
    SyscallSpec("ioctl", (FD_SOCK, const(IOCTL_SET_MTU), VALUE), variant="set_mtu"),
    # TTY.
    SyscallSpec("tty_open", (), makes="tty"),
    SyscallSpec("ioctl", (FD_TTY, const(IOCTL_TTY_AUTOCONF), const(0)), variant="tty_autoconf"),
    # Sound.
    SyscallSpec("snd_ctl_add", (VALUE,)),
    SyscallSpec("snd_ctl_info", ()),
    # Semaphores (a second rhashtable user).
    SyscallSpec("semget", (KEY,)),
    SyscallSpec("semctl", (KEY, SMALL)),
    SyscallSpec("semop", (KEY, SMALL)),
    # FIFOs (properly locked shared rings).
    SyscallSpec("fifo_open", (SMALL,), makes="fifo"),
    SyscallSpec("fifo_write", ("fd:fifo", VALUE)),
    SyscallSpec("fifo_read", ("fd:fifo",)),
    # /proc-like statistics.
    SyscallSpec("sysinfo", ()),
)


SPEC_BY_NAME = {}
for _spec in SYSCALL_SPECS:
    SPEC_BY_NAME.setdefault(_spec.name, _spec)


def specs_for(name: str) -> Tuple[SyscallSpec, ...]:
    """All variants of one syscall name."""
    return tuple(s for s in SYSCALL_SPECS if s.name == name)


def spec_of_call(call: Call) -> SyscallSpec:
    """The (variant) spec a concrete call was built from.

    Variants are distinguished by their constant arguments (the ioctl
    command); a call matching no variant's constants maps to the first
    variant, which is only reachable for hand-written programs.
    """
    candidates = specs_for(call.name)
    if not candidates:
        raise KeyError(f"unknown syscall {call.name!r}")
    if len(candidates) == 1:
        return candidates[0]
    for candidate in candidates:
        matches = True
        for i, kind in enumerate(candidate.args):
            if isinstance(kind, tuple):
                if i >= len(call.args) or call.args[i] != kind[1]:
                    matches = False
                    break
        if matches:
            return candidate
    return candidates[0]


# Canonical per-subsystem seed programs: the hand-written corpus seeds.
DEFAULT_SEEDS: Tuple[Program, ...] = (
    # ext4: write + checksum + swap-boot-loader.
    prog(
        Call("open", (1,)),
        Call("write", (Res(0), 0x1234)),
        Call("ioctl", (Res(0), IOCTL_SWAP_BOOT, 0)),
        Call("fsync", (Res(0),)),
    ),
    # Block device: blocksize + readahead + readers.
    prog(
        Call("open", (2,)),
        Call("ioctl", (Res(0), IOCTL_SET_BLOCKSIZE, 1)),
        Call("read", (Res(0), 2)),
        Call("fadvise", (Res(0),)),
    ),
    prog(Call("open", (3,)), Call("ioctl", (Res(0), IOCTL_BLKRASET, 4))),
    # configfs.
    prog(Call("mkdir", (1,)), Call("lookup", (1,))),
    # IPC over the rhashtable.
    prog(Call("msgget", (2,)), Call("msgsnd", (2, 7)), Call("msgctl", (2, 0))),
    # L2TP: the Figure 1 flow.
    prog(Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))),
    # MAC address ioctls.
    prog(
        Call("socket", (0,)),
        Call("ioctl", (Res(0), IOCTL_SET_MAC, 0xA1B2C3D4E5)),
        Call("ioctl", (Res(0), IOCTL_GET_MAC, 0)),
        Call("getsockname", (Res(0),)),
    ),
    # Raw IPv6 + routes.
    prog(
        Call("socket", (3,)),
        Call("ioctl", (Res(0), IOCTL_SET_MTU, 900)),
        Call("sendmsg", (Res(0), 4000)),
        Call("route_update", (7,)),
    ),
    # Packet fanout.
    prog(
        Call("socket", (1,)),
        Call("setsockopt", (Res(0), 3, 0)),
        Call("sendmsg", (Res(0), 1)),
        Call("close", (Res(0),)),
    ),
    # TTY autoconfig.
    prog(Call("tty_open", ()), Call("ioctl", (Res(0), IOCTL_TTY_AUTOCONF, 0))),
    # Sound controls.
    prog(Call("snd_ctl_add", (100,)), Call("snd_ctl_info", ())),
    # Semaphores over the second rhashtable.
    prog(Call("semget", (1,)), Call("semop", (1, 6)), Call("semctl", (1, 0))),
    # FIFO ring traffic.
    prog(
        Call("fifo_open", (0,)),
        Call("fifo_write", (Res(0), 11)),
        Call("fifo_write", (Res(0), 22)),
        Call("fifo_read", (Res(0),)),
    ),
    # Statistics reader.
    prog(Call("sysinfo", ()), Call("msgget", (0,)), Call("sysinfo", ())),
)
