"""Sequential test programs.

A program is a short sequence of syscalls with constant arguments and
resource references: ``Res(i)`` names the return value of the ``i``-th
call, mirroring Syzkaller's ``r0 = socket(...); connect(r0, ...)``
resource model.  Programs are immutable and hashable so they can serve
as corpus keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True, slots=True)
class Res:
    """A reference to the result of an earlier call in the same program."""

    index: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"r{self.index}"


Arg = Union[int, Res]


@dataclass(frozen=True, slots=True)
class Call:
    """One syscall invocation: a name and its arguments."""

    name: str
    args: Tuple[Arg, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({args})"


@dataclass(frozen=True, slots=True)
class Program:
    """An immutable sequential test: a tuple of calls."""

    calls: Tuple[Call, ...]

    def __post_init__(self) -> None:
        for i, call in enumerate(self.calls):
            for arg in call.args:
                if isinstance(arg, Res) and not 0 <= arg.index < i:
                    raise ValueError(
                        f"call {i} ({call.name}) references r{arg.index}, "
                        f"which is not an earlier call"
                    )

    def __len__(self) -> int:
        return len(self.calls)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = "; ".join(f"r{i}={call!r}" for i, call in enumerate(self.calls))
        return f"Program[{body}]"


def prog(*calls: Call) -> Program:
    """Convenience constructor: ``prog(Call("open", (1,)), ...)``."""
    return Program(tuple(calls))


def resolve_arg(arg: Arg, results: list) -> int:
    """Resolve an argument against the results of earlier calls.

    Failed syscalls return negative values; passing those through (like a
    real fuzzer would) simply makes the consuming call fail fd validation.
    """
    if isinstance(arg, Res):
        value = results[arg.index]
        return int(value)
    return int(arg)
