"""Sequential test generation — the Syzkaller stand-in.

Provides the syscall descriptions of the mini-kernel, a seeded random
program generator with mutation operators, and a coverage-guided corpus
that keeps only tests contributing new edge coverage (the test-selection
step of section 4.1).
"""

from repro.fuzz.corpus import Corpus, CorpusEntry, build_corpus
from repro.fuzz.coverage import edge_coverage
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.prog import Arg, Call, Program, Res, prog, resolve_arg
from repro.fuzz.spec import SYSCALL_SPECS, SyscallSpec
from repro.fuzz.text import ProgramParseError, format_program, parse_program

__all__ = [
    "Corpus",
    "CorpusEntry",
    "build_corpus",
    "edge_coverage",
    "ProgramGenerator",
    "Arg",
    "Call",
    "Program",
    "Res",
    "prog",
    "resolve_arg",
    "SYSCALL_SPECS",
    "SyscallSpec",
    "ProgramParseError",
    "format_program",
    "parse_program",
]
