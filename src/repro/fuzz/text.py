"""Textual program format — the syz-repro analogue.

Programs serialise to the same shape Syzkaller reproducers use::

    r0 = open(1)
    write(r0, 0x1234)
    r2 = socket(2)
    connect(r2, 1)

One call per line; ``rN =`` names the call's result, and ``rN`` as an
argument references it.  Hex and decimal integers are accepted.  The
format round-trips exactly and is what reproduction packages embed in
human-readable bug reports.
"""

from __future__ import annotations

import re
from typing import List

from repro.fuzz.prog import Call, Program, Res
from repro.fuzz.spec import SPEC_BY_NAME

_LINE = re.compile(
    r"^\s*(?:r(?P<result>\d+)\s*=\s*)?(?P<name>[a-z_][a-z0-9_]*)\s*"
    r"\((?P<args>[^)]*)\)\s*(?:#.*)?$"
)
_ARG = re.compile(r"^(?:r(?P<res>\d+)|(?P<hex>0x[0-9a-fA-F]+)|(?P<dec>-?\d+))$")


class ProgramParseError(ValueError):
    """A line of program text could not be parsed."""

    def __init__(self, line_number: int, line: str, reason: str):
        self.line_number = line_number
        self.line = line
        super().__init__(f"line {line_number}: {reason}: {line!r}")


def format_program(program: Program) -> str:
    """Render a program in the syz-repro-like text form."""
    lines = []
    for index, call in enumerate(program.calls):
        args = []
        for arg in call.args:
            if isinstance(arg, Res):
                args.append(f"r{arg.index}")
            elif isinstance(arg, int) and arg > 9:
                args.append(hex(arg))
            else:
                args.append(str(arg))
        lines.append(f"r{index} = {call.name}({', '.join(args)})")
    return "\n".join(lines)


def parse_program(text: str) -> Program:
    """Parse the text form back into a :class:`Program`.

    Validates syscall names against the spec registry and resource
    references against earlier lines, raising :class:`ProgramParseError`
    with the offending line on any problem.
    """
    calls: List[Call] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE.match(line)
        if match is None:
            raise ProgramParseError(line_number, raw, "not a call")
        name = match.group("name")
        if name not in SPEC_BY_NAME:
            raise ProgramParseError(line_number, raw, f"unknown syscall {name!r}")
        declared = match.group("result")
        if declared is not None and int(declared) != len(calls):
            raise ProgramParseError(
                line_number,
                raw,
                f"result must be r{len(calls)} (results are numbered in order)",
            )
        args = []
        arg_text = match.group("args").strip()
        if arg_text:
            for part in arg_text.split(","):
                part = part.strip()
                arg_match = _ARG.match(part)
                if arg_match is None:
                    raise ProgramParseError(line_number, raw, f"bad argument {part!r}")
                if arg_match.group("res") is not None:
                    index = int(arg_match.group("res"))
                    if index >= len(calls):
                        raise ProgramParseError(
                            line_number, raw, f"r{index} not defined yet"
                        )
                    args.append(Res(index))
                elif arg_match.group("hex") is not None:
                    args.append(int(arg_match.group("hex"), 16))
                else:
                    args.append(int(arg_match.group("dec")))
        calls.append(Call(name, tuple(args)))
    return Program(tuple(calls))
