"""Coverage-guided corpus construction.

Generates candidate programs, executes each sequentially from the boot
snapshot, and keeps only those contributing new edge coverage — the
distillation step that turns a noisy fuzzer stream into the compact
sequential-test corpus Snowboard profiles (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Set, Tuple

from repro.fuzz.coverage import Edge, edge_coverage
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.prog import Program

if TYPE_CHECKING:  # break the fuzz <-> sched import cycle
    from repro.sched.executor import ExecutionResult, Executor


@dataclass(frozen=True)
class CorpusEntry:
    """A kept sequential test with its coverage and execution profile."""

    test_id: int
    program: Program
    edges: FrozenSet[Edge]
    result: "ExecutionResult"


class Corpus:
    """The distilled sequential-test corpus."""

    def __init__(self):
        self.entries: List[CorpusEntry] = []
        self.total_edges: Set[Edge] = set()
        self.generated = 0

    def add(self, program: Program, result: "ExecutionResult") -> Optional[CorpusEntry]:
        """Keep ``program`` when it adds coverage; returns the entry kept."""
        edges = edge_coverage(result.accesses, thread=0)
        if edges <= self.total_edges:
            return None
        entry = CorpusEntry(len(self.entries), program, edges, result)
        self.entries.append(entry)
        self.total_edges |= edges
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def programs(self) -> List[Program]:
        return [entry.program for entry in self.entries]


def build_corpus(
    executor: "Executor",
    seed: int = 0,
    budget: int = 400,
    mutation_rate: float = 0.5,
    seeds: Tuple[Program, ...] = (),
) -> Corpus:
    """Run the fuzzing loop: generate/mutate, execute, keep what covers.

    ``budget`` counts generated candidates (the fuzzer's execution
    budget); mutation picks a random kept entry and perturbs it, which is
    how Syzkaller deepens coverage once generation plateaus.
    """
    generator = ProgramGenerator(seed)
    corpus = Corpus()

    for program in seeds:
        result = executor.run_sequential(program)
        if result.completed:
            corpus.add(program, result)
        corpus.generated += 1

    for _ in range(budget):
        if corpus.entries and generator.rng.random() < mutation_rate:
            base = generator.rng.choice(corpus.entries).program
            program = generator.mutate(base)
        else:
            program = generator.generate()
        corpus.generated += 1
        result = executor.run_sequential(program)
        if not result.completed:
            # Sequential tests that panic or hang the kernel are rejected
            # from the corpus (they are sequential bugs, not our target).
            continue
        corpus.add(program, result)
    return corpus
