"""Coverage-guided corpus construction.

Generates candidate programs, executes each sequentially from the boot
snapshot, and keeps only those contributing new edge coverage — the
distillation step that turns a noisy fuzzer stream into the compact
sequential-test corpus Snowboard profiles (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Set, Tuple

from repro.fuzz.coverage import Edge, edge_coverage
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.prog import Program

if TYPE_CHECKING:  # break the fuzz <-> sched import cycle
    from repro.sched.executor import ExecutionResult, Executor


@dataclass(frozen=True)
class CorpusEntry:
    """A kept sequential test with its coverage and execution profile."""

    test_id: int
    program: Program
    edges: FrozenSet[Edge]
    result: "ExecutionResult"


class Corpus:
    """The distilled sequential-test corpus."""

    def __init__(self):
        self.entries: List[CorpusEntry] = []
        self.total_edges: Set[Edge] = set()
        self.generated = 0

    def add(self, program: Program, result: "ExecutionResult") -> Optional[CorpusEntry]:
        """Keep ``program`` when it adds coverage; returns the entry kept."""
        edges = edge_coverage(result.accesses, thread=0)
        if edges <= self.total_edges:
            return None
        entry = CorpusEntry(len(self.entries), program, edges, result)
        self.entries.append(entry)
        self.total_edges |= edges
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def programs(self) -> List[Program]:
        return [entry.program for entry in self.entries]


def seed_corpus(
    corpus: Corpus, executor: "Executor", seeds: Tuple[Program, ...]
) -> int:
    """Execute the hand-written seed programs and keep the covering ones.

    Returns the number of entries kept.  Seeds consume no generator
    randomness, so seeding then growing is byte-equal to the historical
    one-shot :func:`build_corpus`.
    """
    kept = 0
    for program in seeds:
        result = executor.run_sequential(program)
        if result.completed and corpus.add(program, result) is not None:
            kept += 1
        corpus.generated += 1
    return kept


def grow_corpus(
    corpus: Corpus,
    executor: "Executor",
    generator: ProgramGenerator,
    budget: int,
    mutation_rate: float = 0.5,
) -> int:
    """Continue the fuzzing loop on an existing corpus; returns kept count.

    This is the round step of a continuous campaign (§4.3, §6): the
    generator's RNG state carries across calls, and mutation draws from
    *all* current survivors — including tests kept in earlier rounds —
    instead of rebuilding the corpus from scratch.
    """
    kept = 0
    for _ in range(budget):
        if corpus.entries and generator.rng.random() < mutation_rate:
            base = generator.rng.choice(corpus.entries).program
            program = generator.mutate(base)
        else:
            program = generator.generate()
        corpus.generated += 1
        result = executor.run_sequential(program)
        if not result.completed:
            # Sequential tests that panic or hang the kernel are rejected
            # from the corpus (they are sequential bugs, not our target).
            continue
        if corpus.add(program, result) is not None:
            kept += 1
    return kept


def build_corpus(
    executor: "Executor",
    seed: int = 0,
    budget: int = 400,
    mutation_rate: float = 0.5,
    seeds: Tuple[Program, ...] = (),
) -> Corpus:
    """Run the fuzzing loop: generate/mutate, execute, keep what covers.

    ``budget`` counts generated candidates (the fuzzer's execution
    budget); mutation picks a random kept entry and perturbs it, which is
    how Syzkaller deepens coverage once generation plateaus.  One seed
    pass plus one :func:`grow_corpus` round over a fresh corpus.
    """
    generator = ProgramGenerator(seed)
    corpus = Corpus()
    seed_corpus(corpus, executor, seeds)
    grow_corpus(corpus, executor, generator, budget, mutation_rate)
    return corpus
