"""Memory access records.

Every interpreted kernel instruction that touches memory produces one
traced access.  These records are what the Snowboard profiler collects
and what the PMC identification stage (Algorithm 1 in the paper)
consumes: address range, access type, value read/written, and the
instruction address that performed the access.

Two representations exist:

* :class:`MemoryAccess` — one frozen record object, handed to the
  scheduler and the race detector during concurrent trials;
* :class:`AccessTrace` — the columnar trace an execution accumulates:
  eight parallel arrays, appended field-by-field so the sequential
  profiling hot path (no scheduler, no detector) allocates zero
  per-access objects.  Iterating or indexing a trace materialises
  equal :class:`MemoryAccess` views lazily, so every consumer that
  wants record objects still gets bit-identical ones.

Columnar consumers (profiler, coverage, scheduler bookkeeping) use
:func:`iter_access_fields`, which yields plain field tuples from either
representation — an :class:`AccessTrace` streams its arrays directly,
while a list of :class:`MemoryAccess` (tests build those by hand) is
adapted on the fly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple, Union


class AccessType(enum.Enum):
    """Whether an access reads or writes memory."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """A single dynamic memory access by a kernel thread.

    Attributes:
        seq: global sequence number within one execution (total order,
            meaningful because the executor serialises all vCPUs).
        thread: index of the virtual CPU / kernel thread (0 or 1).
        type: read or write.
        addr: start address of the accessed range.
        size: length of the range in bytes.
        value: the value read or written, as an unsigned little-endian
            integer over ``size`` bytes.
        ins: instruction address — the stable source location of the
            kernel code performing the access (``file.py:line``), the
            analogue of a guest program counter.
        is_stack: True when the range lies within the accessing thread's
            kernel stack (such accesses are pruned from PMC analysis,
            mirroring the ESP-based filtering of the paper, section 4.1.1).
    """

    seq: int
    thread: int
    type: AccessType
    addr: int
    size: int
    value: int
    ins: str
    is_stack: bool = False

    @property
    def end(self) -> int:
        """One past the last byte of the accessed range."""
        return self.addr + self.size

    @property
    def is_read(self) -> bool:
        return self.type is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.type is AccessType.WRITE

    def overlaps(self, other: "MemoryAccess") -> bool:
        """True when the two byte ranges intersect."""
        return self.addr < other.end and other.addr < self.end

    def value_bytes(self) -> bytes:
        """The accessed value as little-endian bytes of length ``size``."""
        return self.value.to_bytes(self.size, "little")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryAccess(#{self.seq} t{self.thread} {self.type} "
            f"[{self.addr:#x}+{self.size}] = {self.value:#x} @ {self.ins})"
        )


# One access as a plain field tuple (the order of MemoryAccess fields).
AccessFields = Tuple[int, int, AccessType, int, int, int, str, bool]


class AccessTrace:
    """Columnar memory-access trace: eight parallel arrays.

    The executor appends one row per traced instruction.  Sequential
    profiling appends raw fields (:meth:`append_fields`) and never
    builds a :class:`MemoryAccess`; concurrent trials append the record
    object they already created for the scheduler/detector
    (:meth:`append`).  Either way the stored columns are identical, and
    iteration/indexing materialises :class:`MemoryAccess` views lazily.
    """

    __slots__ = ("seqs", "threads", "types", "addrs", "sizes", "values", "inss", "stacks")

    def __init__(self) -> None:
        self.seqs: list = []
        self.threads: list = []
        self.types: list = []
        self.addrs: list = []
        self.sizes: list = []
        self.values: list = []
        self.inss: list = []
        self.stacks: list = []

    # -- recording -----------------------------------------------------------

    def append_fields(
        self,
        seq: int,
        thread: int,
        type: AccessType,
        addr: int,
        size: int,
        value: int,
        ins: str,
        is_stack: bool,
    ) -> None:
        """Append one row without materialising a record object."""
        self.seqs.append(seq)
        self.threads.append(thread)
        self.types.append(type)
        self.addrs.append(addr)
        self.sizes.append(size)
        self.values.append(value)
        self.inss.append(ins)
        self.stacks.append(is_stack)

    def append(self, access: MemoryAccess) -> None:
        """Append one existing record (the concurrent-trial path)."""
        self.seqs.append(access.seq)
        self.threads.append(access.thread)
        self.types.append(access.type)
        self.addrs.append(access.addr)
        self.sizes.append(access.size)
        self.values.append(access.value)
        self.inss.append(access.ins)
        self.stacks.append(access.is_stack)

    def extend_prefix(self, other: "AccessTrace", count: int) -> None:
        """Bulk-append the first ``count`` rows of ``other``.

        Used when an execution resumes from a memoized prefix: the rows
        the prefix already produced are copied column-wise in one slice
        per array instead of row-by-row.
        """
        self.seqs.extend(other.seqs[:count])
        self.threads.extend(other.threads[:count])
        self.types.extend(other.types[:count])
        self.addrs.extend(other.addrs[:count])
        self.sizes.extend(other.sizes[:count])
        self.values.extend(other.values[:count])
        self.inss.extend(other.inss[:count])
        self.stacks.extend(other.stacks[:count])

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.seqs)

    def __bool__(self) -> bool:
        return bool(self.seqs)

    def _materialise(self, i: int) -> MemoryAccess:
        return MemoryAccess(
            seq=self.seqs[i],
            thread=self.threads[i],
            type=self.types[i],
            addr=self.addrs[i],
            size=self.sizes[i],
            value=self.values[i],
            ins=self.inss[i],
            is_stack=self.stacks[i],
        )

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self._materialise(i) for i in range(*index.indices(len(self.seqs)))]
        n = len(self.seqs)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("trace index out of range")
        return self._materialise(index)

    def __iter__(self) -> Iterator[MemoryAccess]:
        for i in range(len(self.seqs)):
            yield self._materialise(i)

    def iter_fields(self) -> Iterator[AccessFields]:
        """Stream rows as plain tuples — no record objects."""
        return zip(
            self.seqs,
            self.threads,
            self.types,
            self.addrs,
            self.sizes,
            self.values,
            self.inss,
            self.stacks,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessTrace({len(self.seqs)} accesses)"


def iter_access_fields(
    accesses: Union[AccessTrace, Iterable[MemoryAccess]],
) -> Iterator[AccessFields]:
    """Columnar iteration over either trace representation.

    Yields ``(seq, thread, type, addr, size, value, ins, is_stack)``
    tuples; an :class:`AccessTrace` streams its arrays directly, any
    other iterable of :class:`MemoryAccess` is adapted field-by-field.
    """
    if isinstance(accesses, AccessTrace):
        return accesses.iter_fields()
    return (
        (a.seq, a.thread, a.type, a.addr, a.size, a.value, a.ins, a.is_stack)
        for a in accesses
    )


def project_value(addr: int, size: int, value: int, lo: int, hi: int) -> int:
    """Project an access value onto the overlap window ``[lo, hi)``.

    This is the ``project_value`` helper of Algorithm 1: given an access
    covering ``[addr, addr+size)`` with little-endian ``value``, return the
    integer formed by the bytes that fall inside ``[lo, hi)``.

    Raises:
        ValueError: if ``[lo, hi)`` is not contained in the access range.
    """
    if lo < addr or hi > addr + size or lo >= hi:
        raise ValueError(
            f"window [{lo:#x},{hi:#x}) outside access [{addr:#x},{addr + size:#x})"
        )
    raw = value.to_bytes(size, "little")
    window = raw[lo - addr : hi - addr]
    return int.from_bytes(window, "little")
