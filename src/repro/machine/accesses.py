"""Memory access records.

Every interpreted kernel instruction that touches memory produces one
:class:`MemoryAccess`.  These records are what the Snowboard profiler
collects and what the PMC identification stage (Algorithm 1 in the paper)
consumes: address range, access type, value read/written, and the
instruction address that performed the access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessType(enum.Enum):
    """Whether an access reads or writes memory."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """A single dynamic memory access by a kernel thread.

    Attributes:
        seq: global sequence number within one execution (total order,
            meaningful because the executor serialises all vCPUs).
        thread: index of the virtual CPU / kernel thread (0 or 1).
        type: read or write.
        addr: start address of the accessed range.
        size: length of the range in bytes.
        value: the value read or written, as an unsigned little-endian
            integer over ``size`` bytes.
        ins: instruction address — the stable source location of the
            kernel code performing the access (``file.py:line``), the
            analogue of a guest program counter.
        is_stack: True when the range lies within the accessing thread's
            kernel stack (such accesses are pruned from PMC analysis,
            mirroring the ESP-based filtering of the paper, section 4.1.1).
    """

    seq: int
    thread: int
    type: AccessType
    addr: int
    size: int
    value: int
    ins: str
    is_stack: bool = False

    @property
    def end(self) -> int:
        """One past the last byte of the accessed range."""
        return self.addr + self.size

    @property
    def is_read(self) -> bool:
        return self.type is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.type is AccessType.WRITE

    def overlaps(self, other: "MemoryAccess") -> bool:
        """True when the two byte ranges intersect."""
        return self.addr < other.end and other.addr < self.end

    def value_bytes(self) -> bytes:
        """The accessed value as little-endian bytes of length ``size``."""
        return self.value.to_bytes(self.size, "little")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryAccess(#{self.seq} t{self.thread} {self.type} "
            f"[{self.addr:#x}+{self.size}] = {self.value:#x} @ {self.ins})"
        )


def project_value(addr: int, size: int, value: int, lo: int, hi: int) -> int:
    """Project an access value onto the overlap window ``[lo, hi)``.

    This is the ``project_value`` helper of Algorithm 1: given an access
    covering ``[addr, addr+size)`` with little-endian ``value``, return the
    integer formed by the bytes that fall inside ``[lo, hi)``.

    Raises:
        ValueError: if ``[lo, hi)`` is not contained in the access range.
    """
    if lo < addr or hi > addr + size or lo >= hi:
        raise ValueError(
            f"window [{lo:#x},{hi:#x}) outside access [{addr:#x},{addr + size:#x})"
        )
    raw = value.to_bytes(size, "little")
    window = raw[lo - addr : hi - addr]
    return int.from_bytes(window, "little")
