"""Simulated guest machine.

This package is the stand-in for the modified QEMU/SKI hypervisor used by
the original Snowboard: a byte-addressable sparse memory with fault
semantics, a machine object holding memory, console and per-thread kernel
stack ranges, and whole-machine snapshots used to restart every test from
one fixed kernel state.
"""

from repro.machine.accesses import (
    AccessTrace,
    AccessType,
    MemoryAccess,
    iter_access_fields,
)
from repro.machine.layout import Struct, field
from repro.machine.machine import (
    KERNEL_STACK_SIZE,
    Machine,
    MachineRegions,
)
from repro.machine.memory import Memory, PageFault
from repro.machine.snapshot import Snapshot

__all__ = [
    "AccessTrace",
    "AccessType",
    "MemoryAccess",
    "iter_access_fields",
    "Struct",
    "field",
    "KERNEL_STACK_SIZE",
    "Machine",
    "MachineRegions",
    "Memory",
    "PageFault",
    "Snapshot",
]
