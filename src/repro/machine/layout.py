"""Kernel struct layout DSL.

The mini-kernel stores all of its state in simulated guest memory so that
the PMC analysis observes real byte-level accesses (making torn reads and
partial-initialisation windows natural).  This module gives kernel code a
small, explicit way to describe C-like structs: named fields at fixed
offsets with fixed sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, slots=True)
class Field:
    """One struct member: a name, a byte offset and a byte size."""

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


def field(name: str, size: int) -> Tuple[str, int]:
    """Declare a struct member (offset is assigned by :class:`Struct`)."""
    if size <= 0:
        raise ValueError(f"field {name!r} must have positive size")
    return (name, size)


class Struct:
    """A C-like struct layout: sequentially packed named fields.

    Example::

        TUNNEL = Struct(
            "l2tp_tunnel",
            field("tunnel_id", 4),
            field("sock", 8),
            field("next", 8),
        )
        TUNNEL.size            # total bytes
        TUNNEL.addr(base, "sock")   # base + offset of 'sock'
        TUNNEL["sock"].size    # 8
    """

    def __init__(self, name: str, *members: Tuple[str, int], align: int = 1):
        self.name = name
        self._fields: Dict[str, Field] = {}
        offset = 0
        for member_name, size in members:
            if member_name in self._fields:
                raise ValueError(f"duplicate field {member_name!r} in {name}")
            self._fields[member_name] = Field(member_name, offset, size)
            offset += size
        if align > 1:
            offset = (offset + align - 1) & ~(align - 1)
        self.size = offset

    def __getitem__(self, name: str) -> Field:
        return self._fields[name]

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def addr(self, base: int, name: str) -> int:
        """Address of field ``name`` in an instance rooted at ``base``."""
        return base + self._fields[name].offset

    def fields(self) -> Tuple[Field, ...]:
        return tuple(self._fields.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Struct({self.name}, size={self.size})"
