"""Sparse paged byte-addressable guest memory.

The memory is organised in fixed-size pages allocated on demand when a
region is explicitly mapped.  Accessing an unmapped address raises
:class:`PageFault`, which the executor turns into the guest-kernel panic
message ``BUG: unable to handle page fault for address ...`` — the same
oracle string the paper's console checker matches (bug #1 in Table 2).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1


class PageFault(Exception):
    """Raised on access to an unmapped guest address."""

    def __init__(self, addr: int, size: int, write: bool):
        self.addr = addr
        self.size = size
        self.write = write
        kind = "write to" if write else "read from"
        super().__init__(f"page fault: {kind} unmapped address {addr:#x} (+{size})")


class Memory:
    """Sparse paged memory with explicit mapping.

    Pages are ``bytearray`` objects keyed by page number.  The zero page is
    never mappable, so NULL (and near-NULL) dereferences always fault.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    # -- mapping -----------------------------------------------------------

    def map_region(self, addr: int, size: int) -> None:
        """Map (zero-filled) all pages covering ``[addr, addr+size)``."""
        if addr <= 0:
            raise ValueError("cannot map the NULL page or negative addresses")
        first = addr // PAGE_SIZE
        last = (addr + size - 1) // PAGE_SIZE
        for page in range(first, last + 1):
            if page == 0:
                raise ValueError("cannot map the NULL page")
            self._pages.setdefault(page, bytearray(PAGE_SIZE))

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        """True when every byte of ``[addr, addr+size)`` is mapped."""
        if addr < 0 or size <= 0:
            return False
        first = addr // PAGE_SIZE
        last = (addr + size - 1) // PAGE_SIZE
        return all(page in self._pages for page in range(first, last + 1))

    # -- raw byte access ---------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes, possibly spanning pages."""
        self._check(addr, size, write=False)
        out = bytearray()
        pos = addr
        remaining = size
        while remaining:
            page, off = divmod(pos, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - off)
            out += self._pages[page][off : off + chunk]
            pos += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write ``data``, possibly spanning pages."""
        self._check(addr, len(data), write=True)
        pos = addr
        offset = 0
        while offset < len(data):
            page, off = divmod(pos, PAGE_SIZE)
            chunk = min(len(data) - offset, PAGE_SIZE - off)
            self._pages[page][off : off + chunk] = data[offset : offset + chunk]
            pos += chunk
            offset += chunk

    def read_int(self, addr: int, size: int) -> int:
        """Read a little-endian unsigned integer of ``size`` bytes."""
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        """Write a little-endian unsigned integer of ``size`` bytes."""
        self.write_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    # -- snapshot support --------------------------------------------------

    def clone_pages(self) -> Dict[int, bytes]:
        """Immutable copy of all mapped pages (for snapshots)."""
        return {page: bytes(data) for page, data in self._pages.items()}

    def restore_pages(self, pages: Dict[int, bytes]) -> None:
        """Replace the full memory contents from a snapshot."""
        self._pages = {page: bytearray(data) for page, data in pages.items()}

    def iter_pages(self) -> Iterator[Tuple[int, bytearray]]:
        return iter(self._pages.items())

    @property
    def mapped_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    # -- internal ----------------------------------------------------------

    def _check(self, addr: int, size: int, write: bool) -> None:
        if size <= 0:
            raise ValueError(f"invalid access size {size}")
        if not self.is_mapped(addr, size):
            raise PageFault(addr, size, write)
