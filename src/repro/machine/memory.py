"""Sparse paged byte-addressable guest memory.

The memory is organised in fixed-size pages allocated on demand when a
region is explicitly mapped.  Accessing an unmapped address raises
:class:`PageFault`, which the executor turns into the guest-kernel panic
message ``BUG: unable to handle page fault for address ...`` — the same
oracle string the paper's console checker matches (bug #1 in Table 2).

Dirty-page tracking makes snapshot restore O(dirty pages): every write
records the touched page numbers, and :meth:`restore_pages_incremental`
copies back only those pages.  The executor restores the boot snapshot
before *every* trial, so this is the per-execution reset cost the paper's
throughput numbers (section 5.4) hinge on.

Reads and writes are the interpreter's innermost operation — every
traced kernel instruction funnels through :meth:`read_int` or
:meth:`write_int` — so both carry a single-page fast path: one dict
probe plus one slice when the range sits inside one mapped page (the
overwhelmingly common case for word-sized accesses), falling back to the
page-walking slow path only for page-straddling or unmapped ranges.
The fast path is taken *only* when the access is fully mapped, so
:class:`PageFault` behaviour (and its message) is byte-for-byte that of
the slow path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Set, Tuple

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1
PAGE_SHIFT = 12  # PAGE_SIZE == 1 << PAGE_SHIFT

# Precomputed value masks for the fast integer-write path (index = size).
# Kernel-context accesses are at most one word (8 bytes); larger writes
# compute their mask inline.
_INT_MASKS = tuple((1 << (8 * size)) - 1 for size in range(9))


class PageFault(Exception):
    """Raised on access to an unmapped guest address."""

    def __init__(self, addr: int, size: int, write: bool):
        self.addr = addr
        self.size = size
        self.write = write
        kind = "write to" if write else "read from"
        super().__init__(f"page fault: {kind} unmapped address {addr:#x} (+{size})")


class Memory:
    """Sparse paged memory with explicit mapping.

    Pages are ``bytearray`` objects keyed by page number.  The zero page is
    never mappable, so NULL (and near-NULL) dereferences always fault.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        # Pages written (or newly mapped) since the last restore/clear.
        self._dirty: Set[int] = set()
        # Bumped on every wholesale page replacement (full restore): an
        # incremental restore is only sound while the epoch is unchanged.
        self._epoch = 0

    # -- mapping -----------------------------------------------------------

    def map_region(self, addr: int, size: int) -> None:
        """Map (zero-filled) all pages covering ``[addr, addr+size)``."""
        if addr <= 0:
            raise ValueError("cannot map the NULL page or negative addresses")
        if size <= 0:
            raise ValueError(f"cannot map a region of size {size}")
        first = addr // PAGE_SIZE
        last = (addr + size - 1) // PAGE_SIZE
        for page in range(first, last + 1):
            if page == 0:
                raise ValueError("cannot map the NULL page")
            if page not in self._pages:
                self._pages[page] = bytearray(PAGE_SIZE)
                self._dirty.add(page)

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        """True when every byte of ``[addr, addr+size)`` is mapped."""
        if addr < 0 or size <= 0:
            return False
        first = addr // PAGE_SIZE
        last = (addr + size - 1) // PAGE_SIZE
        return all(page in self._pages for page in range(first, last + 1))

    # -- raw byte access ---------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes, possibly spanning pages."""
        if 0 < size:
            off = addr & PAGE_MASK
            if off + size <= PAGE_SIZE:
                page = self._pages.get(addr >> PAGE_SHIFT)
                if page is not None:
                    return bytes(page[off : off + size])
        return self._read_bytes_slow(addr, size)

    def _read_bytes_slow(self, addr: int, size: int) -> bytes:
        """Page-walking read: straddling ranges and fault detection."""
        self._check(addr, size, write=False)
        out = bytearray()
        pos = addr
        remaining = size
        while remaining:
            page, off = divmod(pos, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - off)
            out += self._pages[page][off : off + chunk]
            pos += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write ``data``, possibly spanning pages."""
        size = len(data)
        if 0 < size:
            off = addr & PAGE_MASK
            if off + size <= PAGE_SIZE:
                number = addr >> PAGE_SHIFT
                page = self._pages.get(number)
                if page is not None:
                    page[off : off + size] = data
                    self._dirty.add(number)
                    return
        self._write_bytes_slow(addr, data)

    def _write_bytes_slow(self, addr: int, data: bytes) -> None:
        """Page-walking write: straddling ranges and fault detection."""
        self._check(addr, len(data), write=True)
        pos = addr
        offset = 0
        while offset < len(data):
            page, off = divmod(pos, PAGE_SIZE)
            chunk = min(len(data) - offset, PAGE_SIZE - off)
            self._pages[page][off : off + chunk] = data[offset : offset + chunk]
            self._dirty.add(page)
            pos += chunk
            offset += chunk

    def read_int(self, addr: int, size: int) -> int:
        """Read a little-endian unsigned integer of ``size`` bytes."""
        if 0 < size:
            off = addr & PAGE_MASK
            if off + size <= PAGE_SIZE:
                page = self._pages.get(addr >> PAGE_SHIFT)
                if page is not None:
                    return int.from_bytes(page[off : off + size], "little")
        return int.from_bytes(self._read_bytes_slow(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        """Write a little-endian unsigned integer of ``size`` bytes."""
        if 0 < size:
            off = addr & PAGE_MASK
            if off + size <= PAGE_SIZE:
                number = addr >> PAGE_SHIFT
                page = self._pages.get(number)
                if page is not None:
                    mask = _INT_MASKS[size] if size <= 8 else (1 << (8 * size)) - 1
                    page[off : off + size] = (value & mask).to_bytes(size, "little")
                    self._dirty.add(number)
                    return
        self.write_bytes(
            addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

    # -- snapshot support --------------------------------------------------

    def clone_pages(self) -> Dict[int, bytes]:
        """Immutable copy of all mapped pages (for snapshots)."""
        return {page: bytes(data) for page, data in self._pages.items()}

    def clone_dirty_pages(self) -> Dict[int, bytes]:
        """Immutable copy of only the pages dirtied since the last
        restore/:meth:`clear_dirty` (for delta snapshots)."""
        return {page: bytes(self._pages[page]) for page in self._dirty}

    def restore_pages(self, pages: Dict[int, bytes]) -> None:
        """Replace the full memory contents from a snapshot."""
        self._pages = {page: bytearray(data) for page, data in pages.items()}
        self._dirty.clear()
        self._epoch += 1

    def restore_pages_incremental(self, pages: Dict[int, bytes]) -> int:
        """Copy back only the pages dirtied since the last restore.

        ``pages`` must be the *full* page dict of the snapshot being
        restored, and the caller is responsible for ensuring every
        divergence since that snapshot went through the tracked write
        paths (``write_bytes``/``map_region``) — :class:`~repro.machine.
        snapshot.Snapshot` enforces this with the machine restore token.
        Dirty pages absent from the snapshot were mapped afterwards and
        are unmapped again.  Returns the number of pages restored.
        """
        restored = 0
        for page in self._dirty:
            data = pages.get(page)
            if data is None:
                del self._pages[page]
            else:
                self._pages[page][:] = data
            restored += 1
        self._dirty.clear()
        return restored

    # -- dirty tracking ----------------------------------------------------

    def dirty_pages(self) -> FrozenSet[int]:
        """Page numbers written (or mapped) since the last restore."""
        return frozenset(self._dirty)

    def clear_dirty(self) -> None:
        """Forget dirty tracking (start a new tracking window)."""
        self._dirty.clear()

    @property
    def epoch(self) -> int:
        """Generation counter, bumped on every full page replacement."""
        return self._epoch

    def iter_pages(self) -> Iterator[Tuple[int, bytearray]]:
        return iter(self._pages.items())

    @property
    def mapped_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    # -- internal ----------------------------------------------------------

    def _check(self, addr: int, size: int, write: bool) -> None:
        if size <= 0:
            raise ValueError(f"invalid access size {size}")
        if not self.is_mapped(addr, size):
            raise PageFault(addr, size, write)
