"""The simulated guest machine.

A :class:`Machine` bundles guest memory, the kernel console (the bug
oracle's input), and the per-thread kernel stack ranges used for the
ESP-style stack filtering described in section 4.1.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.machine.memory import Memory

# Region bases.  The layout is fixed so that every boot produces identical
# addresses — the premise of PMC analysis is that sequential profiling and
# concurrent execution share one memory layout.
GLOBALS_BASE = 0x0100_0000
GLOBALS_SIZE = 0x0010_0000
HEAP_BASE = 0x0200_0000
HEAP_SIZE = 0x0100_0000
STACKS_BASE = 0x0700_0000

# Linux x86 kernel threads get an 8 KiB, 8 KiB-aligned stack; we mirror that
# so the stack-range computation is the same masking trick the paper uses.
KERNEL_STACK_SIZE = 8 * 1024
MAX_THREADS = 4


@dataclass(frozen=True, slots=True)
class MachineRegions:
    """Address-space layout constants of the guest machine."""

    globals_base: int = GLOBALS_BASE
    globals_size: int = GLOBALS_SIZE
    heap_base: int = HEAP_BASE
    heap_size: int = HEAP_SIZE
    stacks_base: int = STACKS_BASE
    stack_size: int = KERNEL_STACK_SIZE
    max_threads: int = MAX_THREADS


class Machine:
    """Guest machine: memory + console + kernel stacks.

    The console is an append-only list of strings; bug detectors scan it
    for panic and filesystem-error patterns, exactly like the paper's
    kernel-console checker.
    """

    def __init__(self, regions: MachineRegions | None = None):
        self.regions = regions or MachineRegions()
        self.memory = Memory()
        self.console: List[str] = []
        # (snapshot, memory epoch) of the last Snapshot.restore; while it
        # stays valid, restoring the same snapshot copies only dirty pages.
        self.restore_token: Optional[Tuple[object, int]] = None
        r = self.regions
        self.memory.map_region(r.globals_base, r.globals_size)
        self.memory.map_region(r.heap_base, r.heap_size)
        self.memory.map_region(r.stacks_base, r.stack_size * r.max_threads)
        # Precomputed per-thread stack bases: in_stack() runs once per
        # interpreted instruction, so it must not re-derive the range.
        self._stack_bases = tuple(
            r.stacks_base + thread * r.stack_size for thread in range(r.max_threads)
        )
        self._stack_size = r.stack_size

    def invalidate_restore_tracking(self) -> None:
        """Force the next snapshot restore to be a full copy.

        Escape hatch for code that mutates pages outside the tracked
        write paths (and for full-vs-incremental restore benchmarks).
        """
        self.restore_token = None

    # -- stacks ------------------------------------------------------------

    def stack_base(self, thread: int) -> int:
        """Base address of thread ``thread``'s kernel stack."""
        self._check_thread(thread)
        return self.regions.stacks_base + thread * self.regions.stack_size

    def stack_range(self, thread: int) -> range:
        """The thread's kernel stack range, computed by ESP-style masking.

        Mirrors ``[ESP & ~(STACK_SIZE-1), (ESP & ~(STACK_SIZE-1)) +
        STACK_SIZE)`` from the paper: any stack pointer inside the region
        masks down to the aligned base.
        """
        esp = self.stack_base(thread) + self.regions.stack_size // 2
        base = esp & ~(self.regions.stack_size - 1)
        return range(base, base + self.regions.stack_size)

    def in_stack(self, thread: int, addr: int, size: int = 1) -> bool:
        """True when ``[addr, addr+size)`` lies in the thread's stack.

        O(1): one bounds check against the precomputed stack base — this
        runs for every traced instruction, so it neither re-validates the
        layout nor allocates a range like :meth:`stack_range` does.
        """
        if not 0 <= thread < len(self._stack_bases):
            raise ValueError(f"thread index {thread} out of range")
        base = self._stack_bases[thread]
        return base <= addr and addr + size <= base + self._stack_size

    # -- console -----------------------------------------------------------

    def printk(self, message: str) -> None:
        """Append a line to the kernel console."""
        self.console.append(message)

    # -- internal ----------------------------------------------------------

    def _check_thread(self, thread: int) -> None:
        if not 0 <= thread < self.regions.max_threads:
            raise ValueError(f"thread index {thread} out of range")
