"""Whole-machine snapshots.

Snowboard profiles every sequential test — and starts every concurrent
trial — from one fixed post-boot VM snapshot, so that memory layouts
coincide across executions.  Because the mini-kernel keeps *all* mutable
state in guest memory (heap objects, allocator metadata, lock words,
global tables), a snapshot is simply a copy of the mapped pages plus the
console transcript.

Restore is O(dirty pages): the machine remembers which snapshot it was
last restored from (and at which memory epoch), and while that token is
valid only the pages dirtied since then are copied back.  Anything that
invalidates the tracked history — restoring a *different* snapshot, a
wholesale ``restore_pages`` call, or an explicit
``Machine.invalidate_restore_tracking()`` — falls back to a full-copy
restore, so correctness never depends on callers resetting tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machine.machine import Machine
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE


@dataclass(frozen=True)
class Snapshot:
    """An immutable capture of machine state."""

    pages: Dict[int, bytes]
    console: tuple
    label: str = "boot"

    @classmethod
    def capture(cls, machine: Machine, label: str = "boot") -> "Snapshot":
        return cls(
            pages=machine.memory.clone_pages(),
            console=tuple(machine.console),
            label=label,
        )

    def restore(self, machine: Machine) -> int:
        """Overwrite ``machine`` with this snapshot's state.

        Returns the number of memory pages copied back.  When the machine
        was last restored from this very snapshot and the page set has not
        been wholesale-replaced since, only the dirtied pages are copied
        (the common per-trial case); otherwise every page is.
        """
        memory = machine.memory
        token = machine.restore_token
        if token is not None and token[0] is self and token[1] == memory.epoch:
            restored = memory.restore_pages_incremental(self.pages)
        else:
            memory.restore_pages(self.pages)
            restored = len(self.pages)
        machine.restore_token = (self, memory.epoch)
        machine.console[:] = self.console
        return restored


class ForkSnapshotError(Exception):
    """Raised when a delta capture would record an unsound page set."""


@dataclass(frozen=True)
class ForkSnapshot:
    """A delta snapshot: a base :class:`Snapshot` plus override pages.

    Mid-trial snapshots must not pay the full ``clone_pages`` cost (the
    boot image is thousands of pages; a trial prefix dirties a handful).
    A :class:`ForkSnapshot` therefore stores only the pages dirtied since
    the base snapshot was restored, which is sound *only* while the
    machine's restore token still names the base at the current memory
    epoch — otherwise the dirty set does not describe the divergence from
    ``base`` and :meth:`capture` refuses with :class:`ForkSnapshotError`
    rather than silently aliasing another snapshot's tracking window.

    Labels are required to be distinct from the base's so two snapshots
    can never be confused in traces or error messages.
    """

    base: Snapshot
    overrides: Dict[int, bytes]
    console: tuple
    label: str

    @classmethod
    def capture(cls, machine: Machine, base: Snapshot, label: str) -> "ForkSnapshot":
        token = machine.restore_token
        memory = machine.memory
        if token is None or token[0] is not base or token[1] != memory.epoch:
            raise ForkSnapshotError(
                f"cannot delta-capture {label!r}: machine was not "
                f"incrementally tracked against base {base.label!r} "
                f"(token={token!r}, epoch={memory.epoch})"
            )
        if label == base.label:
            raise ForkSnapshotError(
                f"fork snapshot label {label!r} collides with its base"
            )
        return cls(
            base=base,
            overrides=memory.clone_dirty_pages(),
            console=tuple(machine.console),
            label=label,
        )

    def restore(self, machine: Machine) -> int:
        """Restore the machine to this fork point.

        Restores the base snapshot first (incremental when the token
        allows), then re-applies the override pages through the tracked
        write paths so they are dirty again — the *next* base restore
        must copy them back.  Returns the number of pages copied.
        """
        restored = self.base.restore(machine)
        memory = machine.memory
        for page, data in self.overrides.items():
            addr = page << PAGE_SHIFT
            if not memory.is_mapped(addr, PAGE_SIZE):
                memory.map_region(addr, PAGE_SIZE)
            memory.write_bytes(addr, data)
        machine.console[:] = self.console
        return restored + len(self.overrides)
