"""Whole-machine snapshots.

Snowboard profiles every sequential test — and starts every concurrent
trial — from one fixed post-boot VM snapshot, so that memory layouts
coincide across executions.  Because the mini-kernel keeps *all* mutable
state in guest memory (heap objects, allocator metadata, lock words,
global tables), a snapshot is simply a copy of the mapped pages plus the
console transcript.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.machine.machine import Machine


@dataclass(frozen=True)
class Snapshot:
    """An immutable capture of machine state."""

    pages: Dict[int, bytes]
    console: tuple
    label: str = "boot"

    @classmethod
    def capture(cls, machine: Machine, label: str = "boot") -> "Snapshot":
        return cls(
            pages=machine.memory.clone_pages(),
            console=tuple(machine.console),
            label=label,
        )

    def restore(self, machine: Machine) -> None:
        """Overwrite ``machine`` with this snapshot's state."""
        machine.memory.restore_pages(self.pages)
        machine.console[:] = list(self.console)
