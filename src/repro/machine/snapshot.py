"""Whole-machine snapshots.

Snowboard profiles every sequential test — and starts every concurrent
trial — from one fixed post-boot VM snapshot, so that memory layouts
coincide across executions.  Because the mini-kernel keeps *all* mutable
state in guest memory (heap objects, allocator metadata, lock words,
global tables), a snapshot is simply a copy of the mapped pages plus the
console transcript.

Restore is O(dirty pages): the machine remembers which snapshot it was
last restored from (and at which memory epoch), and while that token is
valid only the pages dirtied since then are copied back.  Anything that
invalidates the tracked history — restoring a *different* snapshot, a
wholesale ``restore_pages`` call, or an explicit
``Machine.invalidate_restore_tracking()`` — falls back to a full-copy
restore, so correctness never depends on callers resetting tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machine.machine import Machine


@dataclass(frozen=True)
class Snapshot:
    """An immutable capture of machine state."""

    pages: Dict[int, bytes]
    console: tuple
    label: str = "boot"

    @classmethod
    def capture(cls, machine: Machine, label: str = "boot") -> "Snapshot":
        return cls(
            pages=machine.memory.clone_pages(),
            console=tuple(machine.console),
            label=label,
        )

    def restore(self, machine: Machine) -> int:
        """Overwrite ``machine`` with this snapshot's state.

        Returns the number of memory pages copied back.  When the machine
        was last restored from this very snapshot and the page set has not
        been wholesale-replaced since, only the dirtied pages are copied
        (the common per-trial case); otherwise every page is.
        """
        memory = machine.memory
        token = machine.restore_token
        if token is not None and token[0] is self and token[1] == memory.epoch:
            restored = memory.restore_pages_incremental(self.pages)
        else:
            memory.restore_pages(self.pages)
            restored = len(self.pages)
        machine.restore_token = (self, memory.epoch)
        machine.console[:] = self.console
        return restored
