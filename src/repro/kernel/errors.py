"""Kernel and executor error types."""

from __future__ import annotations


class KernelBug(Exception):
    """Base class for guest-kernel failures observed during execution."""


class KernelPanicError(KernelBug):
    """The guest kernel panicked (BUG(), NULL dereference, page fault).

    Thrown *into* the faulting kernel coroutine by the executor, and
    recorded on the console where the bug oracle picks it up.
    """

    def __init__(self, message: str):
        self.message = message
        super().__init__(message)


class SyscallError(Exception):
    """A syscall returned an error to user space (this is NOT a bug).

    Carries a negative errno-style code, mirroring the kernel ABI.
    """

    def __init__(self, errno: int, reason: str = ""):
        self.errno = errno
        self.reason = reason
        super().__init__(f"syscall error {errno}: {reason}")


# errno values used by the mini-kernel ABI.
EINVAL = -22
ENOENT = -2
ENOMEM = -12
EEXIST = -17
EBADF = -9
EBUSY = -16
EIO = -5
ENOSPC = -28
ENOTCONN = -107
EISCONN = -106
EADDRINUSE = -98
EAGAIN_E = -11
