"""Kernel boot, syscall table and process plumbing.

`boot_kernel()` builds a machine, lays out all global kernel state,
boots every subsystem and returns the kernel together with its boot
snapshot — the fixed initial VM state from which Snowboard profiles all
sequential tests and replays all concurrent trials (section 4.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Tuple

from repro.kernel.alloc import ALLOC_STATE, Allocator
from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import EBADF, EINVAL, SyscallError
from repro.kernel.ops import CasOp, MemOp, PanicOp, PauseOp, PrintkOp, SyncOp
from repro.machine.accesses import AccessType
from repro.machine.layout import Struct, field
from repro.machine.machine import Machine
from repro.machine.snapshot import Snapshot

MAX_FDS = 16
# Three test-executor processes: two for ordinary concurrent tests, a
# third for the multi-thread extension discussed in section 6.
MAX_PROCS = 3

# Per-process descriptor table: MAX_FDS file-pointer words.
PROC_FDTABLE = Struct("proc_fdtable", *[field(f"fd_{i}", WORD) for i in range(MAX_FDS)])

# A generic open file: a type tag and an object pointer.
FILE = Struct(
    "file",
    field("ftype", 4),
    field("flags", 4),
    field("obj", WORD),
    field("pos", WORD),
)

# File type tags.
F_REG = 1
F_SOCK = 2
F_TTY = 3
F_SND = 4
F_BLK = 5
F_DIR = 6

SyscallHandler = Callable[..., Generator]


class Process:
    """A user process under test: an index and its kernel-side fd table."""

    def __init__(self, pid: int, fdtable_addr: int):
        self.pid = pid
        self.fdtable = fdtable_addr


class Kernel:
    """The booted mini-kernel.

    Holds only *immutable* Python-side state after boot (global addresses,
    the syscall table, subsystem handles); every mutable kernel object
    lives in guest memory so snapshots capture complete state.
    """

    def __init__(self, machine: Machine, fixed: bool = False):
        self.machine = machine
        # True boots the "patched" kernel: every planted bug repaired
        # (correct lock scope, publish ordering, single fetches, marked
        # accesses).  Used to demonstrate the no-false-positives property:
        # the same campaigns find nothing on a fixed kernel.
        self.fixed = fixed
        self._static_cursor = machine.regions.globals_base
        self.syscalls: Dict[str, SyscallHandler] = {}
        self.globals: Dict[str, int] = {}
        self.allocator: Allocator | None = None
        self.procs: List[Process] = []
        self.subsystems: Dict[str, object] = {}
        self.ioctls: Dict[int, SyscallHandler] = {}
        self.close_hooks: Dict[int, SyscallHandler] = {}

    # -- boot-time layout ----------------------------------------------------

    def static_alloc(self, name: str, size: int, align: int = WORD) -> int:
        """Reserve ``size`` bytes of the globals region (boot only)."""
        addr = (self._static_cursor + align - 1) & ~(align - 1)
        end = self.machine.regions.globals_base + self.machine.regions.globals_size
        if addr + size > end:
            raise MemoryError("globals region exhausted at boot")
        self._static_cursor = addr + size
        if name:
            if name in self.globals:
                raise ValueError(f"duplicate global {name!r}")
            self.globals[name] = addr
        return addr

    def register_syscall(self, name: str, handler: SyscallHandler) -> None:
        if name in self.syscalls:
            raise ValueError(f"duplicate syscall {name!r}")
        self.syscalls[name] = handler

    def register_ioctl(self, cmd: int, handler: SyscallHandler) -> None:
        if cmd in self.ioctls:
            raise ValueError(f"duplicate ioctl command {cmd}")
        self.ioctls[cmd] = handler

    def register_close_hook(self, ftype: int, handler: SyscallHandler) -> None:
        """Run ``handler(ctx, file_addr)`` when a file of ``ftype`` closes."""
        self.close_hooks[ftype] = handler

    def sys_ioctl(self, ctx: KernelContext, fd: int, cmd: int, arg: int) -> Generator:
        """The ioctl multiplexer: route by command to the owning subsystem."""
        handler = self.ioctls.get(cmd)
        if handler is None:
            raise SyscallError(EINVAL, f"unknown ioctl command {cmd}")
        ret = yield from handler(ctx, fd, arg)
        return ret

    def boot_run(self, gen: Generator) -> object:
        """Execute kernel code at boot: ops applied directly, untraced."""
        memory = self.machine.memory
        try:
            op = next(gen)
            while True:
                result = None
                if isinstance(op, MemOp):
                    if op.type is AccessType.READ:
                        result = memory.read_int(op.addr, op.size)
                    else:
                        memory.write_int(op.addr, op.size, op.value)
                elif isinstance(op, CasOp):
                    result = memory.read_int(op.addr, op.size)
                    if result == op.expected:
                        memory.write_int(op.addr, op.size, op.new)
                elif isinstance(op, PrintkOp):
                    self.machine.printk(op.message)
                elif isinstance(op, PanicOp):
                    raise RuntimeError(f"panic during boot: {op.message}")
                elif isinstance(op, (SyncOp, PauseOp)):
                    pass
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown boot op {op!r}")
                op = gen.send(result)
        except StopIteration as stop:
            return stop.value

    # -- syscall dispatch ------------------------------------------------------

    def run_syscall(self, ctx: KernelContext, name: str, args: Tuple) -> Generator:
        """Dispatch one syscall; errors become negative return values."""
        handler = self.syscalls.get(name)
        if handler is None:
            raise KeyError(f"unknown syscall {name!r}")
        try:
            ret = yield from handler(ctx, *args)
        except SyscallError as err:
            return err.errno
        return 0 if ret is None else ret

    # -- fd helpers (kernel code: traced accesses) -------------------------------

    def fd_install(self, ctx: KernelContext, ftype: int, obj: int) -> Generator:
        """Allocate a file struct and the first free fd slot; returns the fd."""
        file_addr = yield from self.allocator.kzalloc(ctx, FILE.size)
        yield from ctx.store_field(FILE, file_addr, "ftype", ftype)
        yield from ctx.store_field(FILE, file_addr, "obj", obj)
        table = ctx.proc.fdtable
        for fd in range(MAX_FDS):
            slot = table + fd * WORD
            current = yield from ctx.load_word(slot)
            if current == 0:
                yield from ctx.store_word(slot, file_addr)
                return fd
        yield from self.allocator.kfree(ctx, file_addr, FILE.size)
        raise SyscallError(EBADF, "fd table full")

    def fd_file(self, ctx: KernelContext, fd: int, expect_type: int = 0) -> Generator:
        """Resolve an fd to its file struct address (checked)."""
        if not 0 <= fd < MAX_FDS:
            raise SyscallError(EBADF, f"fd {fd} out of range")
        file_addr = yield from ctx.load_word(ctx.proc.fdtable + fd * WORD)
        if file_addr == 0:
            raise SyscallError(EBADF, f"fd {fd} not open")
        if expect_type:
            ftype = yield from ctx.load_field(FILE, file_addr, "ftype")
            if ftype != expect_type:
                raise SyscallError(EBADF, f"fd {fd} has type {ftype}, want {expect_type}")
        return file_addr

    def fd_object(self, ctx: KernelContext, fd: int, expect_type: int = 0) -> Generator:
        """Resolve an fd straight to the underlying object pointer."""
        file_addr = yield from self.fd_file(ctx, fd, expect_type)
        obj = yield from ctx.load_field(FILE, file_addr, "obj")
        return obj

    def make_context(self, thread: int, proc_index: int | None = None) -> KernelContext:
        """Create an execution context for a kernel thread."""
        proc = self.procs[proc_index if proc_index is not None else thread]
        return KernelContext(self, thread, proc)


def boot_kernel(fixed: bool = False) -> Tuple[Kernel, Snapshot]:
    """Boot the mini-kernel and capture the fixed initial snapshot.

    Boot is deterministic: every run produces bit-identical machine state,
    which is the property PMC analysis relies on (same memory layout for
    profiling and concurrent execution).

    ``fixed=True`` boots the patched-kernel variant with every planted
    concurrency bug repaired — the regression target.
    """
    # Imported here to avoid a cycle: subsystems import kernel helpers.
    from repro.kernel.subsystems import ALL_SUBSYSTEMS

    machine = Machine()
    kernel = Kernel(machine, fixed=fixed)

    # Allocator state, heap bounds.
    state = kernel.static_alloc("kmalloc_state", ALLOC_STATE.size)
    heap = machine.regions
    machine.memory.write_int(ALLOC_STATE.addr(state, "heap_next"), WORD, heap.heap_base)
    machine.memory.write_int(
        ALLOC_STATE.addr(state, "heap_end"), WORD, heap.heap_base + heap.heap_size
    )
    kernel.allocator = Allocator(state, fixed=fixed)

    # Per-process fd tables.
    for pid in range(MAX_PROCS):
        table = kernel.static_alloc(f"proc{pid}_fdtable", PROC_FDTABLE.size)
        kernel.procs.append(Process(pid, table))

    # The ioctl multiplexer (subsystems register individual commands).
    kernel.register_syscall("ioctl", kernel.sys_ioctl)

    # Boot every subsystem (deterministic order).
    for subsystem_cls in ALL_SUBSYSTEMS:
        subsystem = subsystem_cls()
        subsystem.boot(kernel)
        kernel.subsystems[subsystem_cls.name] = subsystem

    machine.printk("mini-kernel booted")
    snapshot = Snapshot.capture(machine, label="post-boot")
    return kernel, snapshot
