"""Slab-style kernel memory allocator.

All allocator state — the bump pointer, per-size-class freelist heads and
the statistics counters — lives in guest memory, so allocator metadata
participates in PMC analysis exactly like Linux's slab internals do.

Planted bug (analogue of Table 2 issue #13, the benign mm/ data race
between ``cache_alloc_refill()`` and ``free_block()``): the statistics
counters are updated with plain read-modify-write sequences *outside* the
freelist lock.  Because nearly every syscall allocates memory, this race
is reachable from almost any pair of tests — which is why, in the paper,
issue #13 was found by every strategy including the naive baselines.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import SyscallError, ENOMEM
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

# Size classes, like kmalloc caches.
SIZE_CLASSES = (16, 32, 64, 128, 256, 512, 1024)

# Allocator global state block (lives in the globals region).
ALLOC_STATE = Struct(
    "kmalloc_state",
    field("lock", 4),
    field("pad", 4),
    field("heap_next", WORD),
    field("heap_end", WORD),
    # One freelist head per size class.
    *[field(f"free_{size}", WORD) for size in SIZE_CLASSES],
    # Racy statistics counters (bug #13 analogue).
    field("total_allocs", WORD),
    field("total_frees", WORD),
    field("bytes_in_use", WORD),
)


def size_class(size: int) -> int:
    """Smallest size class that fits ``size`` bytes."""
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    raise ValueError(f"allocation of {size} bytes exceeds the largest slab class")


class Allocator:
    """Handle to the in-memory allocator state.

    Created at boot with the address of its state block; stateless on the
    Python side (snapshots capture everything).  With ``fixed=True`` the
    statistics updates move inside the freelist lock (the upstream fix
    for the #13-style race).
    """

    def __init__(self, state_addr: int, fixed: bool = False):
        self.state = state_addr
        self.fixed = fixed

    def _field(self, name: str) -> int:
        return ALLOC_STATE.addr(self.state, name)

    # -- boot-time (non-traced) initialisation is done by Kernel ------------

    def kmalloc(self, ctx: KernelContext, size: int) -> Generator:
        """Allocate ``size`` bytes; returns the chunk address.

        Freelist manipulation is properly locked; the statistics update
        afterwards deliberately is not.
        """
        cls = size_class(size)
        head_addr = self._field(f"free_{cls}")
        lock = self._field("lock")

        yield from spin_lock(ctx, lock)
        chunk = yield from ctx.load_word(head_addr)
        if chunk != 0:
            # Pop: the freelist next pointer lives in the chunk's first word.
            next_free = yield from ctx.load_word(chunk)
            yield from ctx.store_word(head_addr, next_free)
        else:
            chunk = yield from self._bump(ctx, cls)
        if self.fixed and chunk != 0:
            # Patched kernel: account under the lock.
            yield from self._account(ctx, +1, +cls, "total_allocs")
        yield from spin_unlock(ctx, lock)

        if chunk == 0:
            raise SyscallError(ENOMEM, "kmalloc: out of heap")

        if not self.fixed:
            # Racy statistics (no lock): plain load-add-store (#13).
            allocs = yield from ctx.load_word(self._field("total_allocs"))
            yield from ctx.store_word(self._field("total_allocs"), allocs + 1)
            in_use = yield from ctx.load_word(self._field("bytes_in_use"))
            yield from ctx.store_word(self._field("bytes_in_use"), in_use + cls)
        return chunk

    def kzalloc(self, ctx: KernelContext, size: int) -> Generator:
        """Allocate and zero-fill ``size`` bytes."""
        chunk = yield from self.kmalloc(ctx, size)
        yield from ctx.memset(chunk, 0, size_class(size))
        return chunk

    def kfree(self, ctx: KernelContext, addr: int, size: int) -> Generator:
        """Return a chunk to its size-class freelist."""
        if addr == 0:
            return
        cls = size_class(size)
        head_addr = self._field(f"free_{cls}")
        lock = self._field("lock")

        yield from spin_lock(ctx, lock)
        head = yield from ctx.load_word(head_addr)
        yield from ctx.store_word(addr, head)
        yield from ctx.store_word(head_addr, addr)
        if self.fixed:
            yield from self._account(ctx, +1, -cls, "total_frees")
        yield from spin_unlock(ctx, lock)

        if not self.fixed:
            # Racy statistics again (the other side of the #13 analogue).
            frees = yield from ctx.load_word(self._field("total_frees"))
            yield from ctx.store_word(self._field("total_frees"), frees + 1)
            in_use = yield from ctx.load_word(self._field("bytes_in_use"))
            yield from ctx.store_word(self._field("bytes_in_use"), in_use - cls)

    def _account(self, ctx: KernelContext, count: int, bytes_delta: int, counter: str) -> Generator:
        """Locked statistics update (the patched-kernel path).

        Stores are marked (WRITE_ONCE) so lockless statistics readers
        like ``sysinfo()`` can pair with READ_ONCE — the standard kernel
        pattern for counters with unlocked readers.
        """
        value = yield from ctx.load_word(self._field(counter))
        yield from ctx.store_word(self._field(counter), value + count, atomic=True)
        in_use = yield from ctx.load_word(self._field("bytes_in_use"))
        yield from ctx.store_word(self._field("bytes_in_use"), in_use + bytes_delta, atomic=True)

    def _bump(self, ctx: KernelContext, cls: int) -> Generator:
        """Carve a fresh chunk off the top of the heap (lock held)."""
        next_addr = yield from ctx.load_word(self._field("heap_next"))
        end = yield from ctx.load_word(self._field("heap_end"))
        if next_addr + cls > end:
            return 0
        yield from ctx.store_word(self._field("heap_next"), next_addr + cls)
        return next_addr
