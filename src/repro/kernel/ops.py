"""The instruction protocol between kernel code and the executor.

Kernel code is written as Python generators that *yield* operation
objects; the executor (the hypervisor stand-in) performs each operation
against the machine, traces it, lets the scheduler decide whether to
switch vCPUs, and sends the result back into the generator.  One yielded
op is one interpreted instruction — the granularity at which Snowboard
and SKI control interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.accesses import AccessType


@dataclass(frozen=True, slots=True)
class MemOp:
    """A load or store of ``size`` bytes at ``addr``.

    ``value`` is the store value (None for loads).  ``atomic`` marks
    acquire/release accesses (``rcu_dereference`` / ``rcu_assign_pointer``
    and friends); the race detector treats atomic accesses as synchronised
    and derives happens-before edges from release→acquire on the same
    address, mirroring why RCU-protected publication is not a data race.
    """

    type: AccessType
    addr: int
    size: int
    value: Optional[int]
    ins: str
    atomic: bool = False


@dataclass(frozen=True, slots=True)
class CasOp:
    """An atomic compare-and-swap: one instruction, no preemption inside.

    The executor reads ``size`` bytes at ``addr``; if they equal
    ``expected`` it writes ``new``.  The old value is sent back.  Both the
    read and (on success) the write are traced under the same instruction.
    """

    addr: int
    size: int
    expected: int
    new: int
    ins: str


@dataclass(frozen=True, slots=True)
class SyncOp:
    """A synchronisation event (no memory side effect of its own).

    Kinds: ``acquire`` / ``release`` (lock identified by its lock-word
    address), ``rcu_read_lock`` / ``rcu_read_unlock`` /
    ``rcu_synchronize``.  These feed the happens-before race detector.
    """

    kind: str
    obj: int
    ins: str


@dataclass(frozen=True, slots=True)
class PrintkOp:
    """Append a line to the kernel console."""

    message: str


@dataclass(frozen=True, slots=True)
class PanicOp:
    """An explicit kernel BUG()/panic with a console message."""

    message: str


@dataclass(frozen=True, slots=True)
class PauseOp:
    """A HALT/PAUSE-style instruction: the thread has nothing to do.

    The liveness heuristic (section 4.4.1) treats repeated pauses as a
    low-liveness signal and forces a switch to the other vCPU.
    """

    reason: str = "pause"


KernelOp = (MemOp, CasOp, SyncOp, PrintkOp, PanicOp, PauseOp)
