"""The miniature guest kernel.

This package is the reproduction's stand-in for the Linux guest: a small
operating-system kernel (syscall table, slab allocator, synchronisation
primitives, rhashtable, filesystem, block layer, network stack, L2TP, IPC
message queues, TTY and sound subsystems) whose every memory access is an
interpreted instruction visible to the hypervisor-side tracer.

The subsystems contain planted concurrency bugs that are structural
analogues of the 17 issues Snowboard found in Linux (Table 2 of the
paper): the same bug classes (data races, atomicity violations, an order
violation, a double fetch), the same synchronisation idioms (RCU publish,
mismatched locks, seqlock-free counters), and the same triggering shapes.
"""

from repro.kernel.context import KernelContext
from repro.kernel.errors import KernelBug, KernelPanicError, SyscallError
from repro.kernel.kernel import Kernel, boot_kernel
from repro.kernel.ops import CasOp, MemOp, PanicOp, PrintkOp, SyncOp

__all__ = [
    "KernelContext",
    "KernelBug",
    "KernelPanicError",
    "SyscallError",
    "Kernel",
    "boot_kernel",
    "CasOp",
    "MemOp",
    "PanicOp",
    "PrintkOp",
    "SyncOp",
]
