"""Kernel execution context: the instruction-level memory access API.

All kernel code runs as generators and performs every memory access
through a :class:`KernelContext`, which yields one op per interpreted
instruction to the executor.  The context also captures the *instruction
address* of each access — the source location of the kernel code line
performing it — deterministically via the call frame, which is the
analogue of the guest program counter that the real Snowboard reads from
QEMU.
"""

from __future__ import annotations

import os
import sys
from typing import Generator

from repro.kernel.ops import CasOp, MemOp, PanicOp, PauseOp, PrintkOp
from repro.machine.accesses import AccessType
from repro.machine.layout import Struct

WORD = 8  # native pointer/word size of the mini-kernel, in bytes

# Hot-path constants: _ins() runs once per interpreted instruction, so
# the enum members, the frame accessor, and the per-code-object address
# prefix are all resolved once instead of per access.
_READ = AccessType.READ
_WRITE = AccessType.WRITE
_getframe = sys._getframe

# code object -> "file.py:qualified_function:" prefix.  Code objects are
# immutable and live for the process, so the basename + qualname half of
# the instruction address never changes; only the line number does.
_INS_PREFIX: dict = {}


def _ins(depth: int) -> str:
    """Instruction address of the kernel code frame ``depth`` levels up.

    Returns ``file.py:qualified_function:line`` of the caller — stable
    across executions because kernel source locations do not move at
    runtime, and qualified so bug matchers can key on function names the
    way kernel oops reports name symbols.
    """
    frame = _getframe(depth)
    code = frame.f_code
    prefix = _INS_PREFIX.get(code)
    if prefix is None:
        prefix = _INS_PREFIX[code] = (
            f"{os.path.basename(code.co_filename)}:{code.co_qualname}:"
        )
    return prefix + str(frame.f_lineno)


class KernelContext:
    """Per-thread kernel execution context.

    One context exists per kernel thread under test.  It carries the
    thread index, the per-thread kernel stack allocator, and the handle to
    the booted :class:`~repro.kernel.kernel.Kernel` (for global addresses
    and the syscall table — never for direct memory access).
    """

    def __init__(self, kernel, thread: int, proc=None):
        self.kernel = kernel
        self.thread = thread
        self.proc = proc
        machine = kernel.machine
        self._stack_base = machine.stack_base(thread)
        self._stack_size = machine.regions.stack_size
        self._stack_ptr = self._stack_base

    # -- loads and stores ----------------------------------------------------

    def load(
        self, addr: int, size: int, *, atomic: bool = False, _depth: int = 0
    ) -> Generator:
        """Load ``size`` bytes at ``addr``; returns the unsigned value."""
        value = yield MemOp(_READ, addr, size, None, _ins(2 + _depth), atomic)
        return value

    def store(
        self, addr: int, size: int, value: int, *, atomic: bool = False, _depth: int = 0
    ) -> Generator:
        """Store ``value`` as ``size`` little-endian bytes at ``addr``."""
        yield MemOp(_WRITE, addr, size, value, _ins(2 + _depth), atomic)

    def load_word(self, addr: int, *, atomic: bool = False, _depth: int = 0) -> Generator:
        """Load one native word (pointer-sized)."""
        value = yield MemOp(_READ, addr, WORD, None, _ins(2 + _depth), atomic)
        return value

    def store_word(
        self, addr: int, value: int, *, atomic: bool = False, _depth: int = 0
    ) -> Generator:
        """Store one native word (pointer-sized)."""
        yield MemOp(_WRITE, addr, WORD, value, _ins(2 + _depth), atomic)

    def cas(
        self, addr: int, size: int, expected: int, new: int, *, _depth: int = 0
    ) -> Generator:
        """Atomic compare-and-swap; returns the old value (one instruction)."""
        old = yield CasOp(addr, size, expected, new, _ins(2 + _depth))
        return old

    # -- struct field access ---------------------------------------------------

    def load_field(
        self, struct: Struct, base: int, name: str, *, atomic: bool = False, _depth: int = 0
    ) -> Generator:
        """Load struct field ``name`` of the instance at ``base``."""
        f = struct[name]
        value = yield MemOp(
            _READ, base + f.offset, f.size, None, _ins(2 + _depth), atomic
        )
        return value

    def store_field(
        self,
        struct: Struct,
        base: int,
        name: str,
        value: int,
        *,
        atomic: bool = False,
        _depth: int = 0,
    ) -> Generator:
        """Store struct field ``name`` of the instance at ``base``."""
        f = struct[name]
        yield MemOp(
            _WRITE, base + f.offset, f.size, value, _ins(2 + _depth), atomic
        )

    # -- bulk copies (chunked, so torn reads/writes are possible) -------------

    def memcpy(self, dst: int, src: int, n: int, *, _depth: int = 0) -> Generator:
        """Copy ``n`` bytes in word-sized chunks (8/4/2/1).

        Like an inlined kernel ``memcpy``, every chunk is a separate
        instruction attributed to the call site, and a concurrent writer
        can interleave between chunks — this is how the MAC-address torn
        read (bug #9) manifests.
        """
        ins = _ins(2 + _depth)
        copied = 0
        while copied < n:
            chunk = _chunk_size(n - copied)
            value = yield MemOp(_READ, src + copied, chunk, None, ins, False)
            yield MemOp(_WRITE, dst + copied, chunk, value, ins, False)
            copied += chunk

    def memread(self, src: int, n: int, *, _depth: int = 0) -> Generator:
        """Read ``n`` bytes chunk-wise; returns the combined integer."""
        ins = _ins(2 + _depth)
        out = 0
        copied = 0
        while copied < n:
            chunk = _chunk_size(n - copied)
            value = yield MemOp(_READ, src + copied, chunk, None, ins, False)
            out |= value << (8 * copied)
            copied += chunk
        return out

    def memwrite(self, dst: int, n: int, value: int, *, _depth: int = 0) -> Generator:
        """Write ``n`` bytes of ``value`` chunk-wise (little-endian)."""
        ins = _ins(2 + _depth)
        copied = 0
        while copied < n:
            chunk = _chunk_size(n - copied)
            part = (value >> (8 * copied)) & ((1 << (8 * chunk)) - 1)
            yield MemOp(_WRITE, dst + copied, chunk, part, ins, False)
            copied += chunk

    def memset(self, dst: int, byte: int, n: int, *, _depth: int = 0) -> Generator:
        """Fill ``n`` bytes with ``byte``, chunk-wise."""
        ins = _ins(2 + _depth)
        copied = 0
        while copied < n:
            chunk = _chunk_size(n - copied)
            value = int.from_bytes(bytes([byte & 0xFF]) * chunk, "little")
            yield MemOp(_WRITE, dst + copied, chunk, value, ins, False)
            copied += chunk

    # -- kernel stack ----------------------------------------------------------

    def stack_alloc(self, size: int) -> int:
        """Reserve ``size`` bytes of this thread's kernel stack.

        Stack variables accessed through the returned address produce
        traced accesses inside the thread's stack range, which the
        profiler prunes (the ESP-filtering analogue).
        """
        aligned = (size + WORD - 1) & ~(WORD - 1)
        addr = self._stack_ptr
        if addr + aligned > self._stack_base + self._stack_size:
            raise MemoryError("kernel stack overflow")
        self._stack_ptr += aligned
        return addr

    def reset_stack(self) -> None:
        """Release all stack allocations (called between syscalls)."""
        self._stack_ptr = self._stack_base

    # -- console / failure ------------------------------------------------------

    def printk(self, message: str) -> Generator:
        """Write a line to the kernel console."""
        yield PrintkOp(message)

    def panic(self, message: str) -> Generator:
        """BUG(): panic the kernel with a console message."""
        yield PanicOp(message)

    def bug_on(self, condition: bool, message: str) -> Generator:
        """Panic when ``condition`` holds (kernel ``BUG_ON``)."""
        if condition:
            yield PanicOp(message)

    def cpu_relax(self) -> Generator:
        """PAUSE-style no-op issued inside spin loops."""
        yield PauseOp()


def _chunk_size(remaining: int) -> int:
    """Largest power-of-two chunk (<= 8) not exceeding ``remaining``."""
    for chunk in (8, 4, 2, 1):
        if remaining >= chunk:
            return chunk
    raise ValueError("remaining must be positive")
