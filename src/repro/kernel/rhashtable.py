"""Resizable-hash-table library with the planted double-fetch bug.

Analogue of Table 2 issue #1 ("BUG: unable to handle page fault for
address", the rhashtable ``rht_ptr`` bug, Figure 4 of the paper).  In the
real kernel, a GCC extension ternary ``(*bkt & ~BIT(0)) ?: bkt`` caused
the compiler to *read the bucket head twice*: once for the NULL check and
once for the returned value.  A concurrent writer zeroing the bucket
between the two fetches makes the caller dereference NULL.

We reproduce the same shape: :func:`rht_ptr` performs two separate load
instructions on the bucket head; callers trust the first fetch's NULL
check but consume the second fetch's value.  During sequential profiling
the two reads return equal values with no intervening write, so the PMC
stage marks the first read as a ``df_leader`` — which is what the
S-CH-DOUBLE clustering strategy keys on.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

NBUCKETS = 4

# Table header: a writer lock followed by the bucket-head array.
RHT_TABLE = Struct(
    "rhashtable",
    field("lock", 4),
    field("pad", 4),
    *[field(f"bucket_{i}", WORD) for i in range(NBUCKETS)],
)

# Every entry starts with a next pointer and a key; payload follows.
RHT_ENTRY = Struct(
    "rht_entry",
    field("next", WORD),
    field("key", WORD),
)


def _hash(key: int) -> int:
    return key % NBUCKETS


def bucket_addr(table: int, key: int) -> int:
    """Address of the bucket head word for ``key``."""
    return RHT_TABLE.addr(table, f"bucket_{_hash(key)}")


def rht_ptr(ctx: KernelContext, bkt_addr: int) -> Generator:
    """Read a bucket head — with the double fetch.

    Returns None when the bucket is empty (per the *first* fetch), else
    the head pointer per the *second* fetch.  Callers treat a non-None
    result as a valid pointer, exactly like the buggy kernel code; if a
    concurrent writer nulls the bucket between the fetches, the returned
    "valid" pointer is 0 and the caller faults.
    """
    # Patched kernel: a single rcu_dereference-style marked load, and the
    # checked value is the value used (the upstream __rht_ptr fix).
    head = yield from ctx.load_word(bkt_addr, atomic=ctx.kernel.fixed)  # fetch 1
    if head == 0:
        return None
    if ctx.kernel.fixed:
        return head
    head2 = yield from ctx.load_word(bkt_addr)  # fetch 2: the value used
    return head2


def rht_lookup(ctx: KernelContext, table: int, key: int) -> Generator:
    """Lockless lookup; returns the entry address or 0 when absent.

    The bucket-head read is unsynchronised with writers (the data race of
    issue #1) and the double fetch makes a NULL dereference reachable.
    """
    fixed = ctx.kernel.fixed
    bkt = bucket_addr(table, key)
    node = yield from rht_ptr(ctx, bkt)
    if node is None:
        return 0
    # 'node' is trusted to be a valid pointer from here on.  In the
    # patched kernel the traversal uses rcu_dereference-style marked
    # loads, pairing with the writer's release publishes.
    while True:
        node_key = yield from ctx.load_field(RHT_ENTRY, node, "key", atomic=fixed)
        if node_key == key:
            return node
        node = yield from ctx.load_field(RHT_ENTRY, node, "next", atomic=fixed)
        if node == 0:
            return 0


def rht_insert(ctx: KernelContext, table: int, entry: int, key: int) -> Generator:
    """Insert ``entry`` (headed by RHT_ENTRY) at the front of its bucket."""
    fixed = ctx.kernel.fixed
    lock = RHT_TABLE.addr(table, "lock")
    bkt = bucket_addr(table, key)
    yield from ctx.store_field(RHT_ENTRY, entry, "key", key)
    yield from spin_lock(ctx, lock)
    head = yield from ctx.load_word(bkt)
    yield from ctx.store_field(RHT_ENTRY, entry, "next", head, atomic=fixed)
    # The rht_assign_unlock analogue: publish the new head (a release
    # store in the patched kernel, ordering the key/next initialisation).
    yield from ctx.store_word(bkt, entry, atomic=fixed)
    yield from spin_unlock(ctx, lock)


def rht_remove(ctx: KernelContext, table: int, key: int) -> Generator:
    """Unlink and return the entry with ``key`` (0 when absent)."""
    fixed = ctx.kernel.fixed
    lock = RHT_TABLE.addr(table, "lock")
    bkt = bucket_addr(table, key)
    yield from spin_lock(ctx, lock)
    prev = 0
    node = yield from ctx.load_word(bkt)
    while node != 0:
        node_key = yield from ctx.load_field(RHT_ENTRY, node, "key")
        if node_key == key:
            nxt = yield from ctx.load_field(RHT_ENTRY, node, "next")
            if prev == 0:
                # Removing the head: this write zeroes the bucket when the
                # chain is a singleton — the nullifying store of issue #1.
                yield from ctx.store_word(bkt, nxt, atomic=fixed)
            else:
                yield from ctx.store_field(RHT_ENTRY, prev, "next", nxt, atomic=fixed)
            yield from spin_unlock(ctx, lock)
            return node
        prev = node
        node = yield from ctx.load_field(RHT_ENTRY, node, "next")
    yield from spin_unlock(ctx, lock)
    return 0
