"""Kernel synchronisation primitives.

All primitives operate on real lock words in guest memory, so lock
acquisitions are visible to the tracer (lock words participate in PMCs,
as in the real kernel).  Besides the memory traffic, the primitives emit
:class:`~repro.kernel.ops.SyncOp` events that give the happens-before race
detector its acquire/release edges.

RCU is modelled faithfully for our purposes: readers take no lock
(``rcu_read_lock`` only marks a read-side critical section), writers
publish with ``rcu_assign_pointer`` (store-release) and readers traverse
with ``rcu_dereference`` (load-acquire).  Such accesses are synchronised —
*not* data races — yet provide no atomicity across the critical section,
which is exactly the gap the paper's l2tp order-violation bug (#12) slips
through.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, _ins
from repro.kernel.ops import SyncOp

LOCK_WORD_SIZE = 4


def spin_lock(ctx: KernelContext, lock_addr: int) -> Generator:
    """Acquire a spinlock by atomic compare-and-swap on its lock word."""
    while True:
        old = yield from ctx.cas(lock_addr, LOCK_WORD_SIZE, 0, 1 + ctx.thread, _depth=1)
        if old == 0:
            yield SyncOp("acquire", lock_addr, _ins(1))
            return
        yield from ctx.cpu_relax()


def spin_trylock(ctx: KernelContext, lock_addr: int) -> Generator:
    """Try to acquire; returns True on success."""
    old = yield from ctx.cas(lock_addr, LOCK_WORD_SIZE, 0, 1 + ctx.thread, _depth=1)
    if old == 0:
        yield SyncOp("acquire", lock_addr, _ins(1))
        return True
    return False


def spin_unlock(ctx: KernelContext, lock_addr: int) -> Generator:
    """Release a spinlock."""
    yield SyncOp("release", lock_addr, _ins(1))
    yield from ctx.store(lock_addr, LOCK_WORD_SIZE, 0, atomic=True, _depth=1)


# Sleeping locks: under the serialised two-thread executor a sleeping lock
# behaves like a spinlock whose waiter is descheduled by the liveness
# heuristic, so mutexes delegate to the spin implementation.
mutex_lock = spin_lock
mutex_trylock = spin_trylock
mutex_unlock = spin_unlock


def rcu_read_lock(ctx: KernelContext) -> Generator:
    """Enter an RCU read-side critical section (no exclusion)."""
    yield SyncOp("rcu_read_lock", 0, _ins(1))


def rcu_read_unlock(ctx: KernelContext) -> Generator:
    """Leave an RCU read-side critical section."""
    yield SyncOp("rcu_read_unlock", 0, _ins(1))


def rcu_assign_pointer(ctx: KernelContext, addr: int, value: int) -> Generator:
    """Publish a pointer with release semantics (``rcu_assign_pointer``)."""
    yield from ctx.store_word(addr, value, atomic=True, _depth=1)


def rcu_dereference(ctx: KernelContext, addr: int) -> Generator:
    """Read a published pointer with acquire semantics."""
    value = yield from ctx.load_word(addr, atomic=True, _depth=1)
    return value


def synchronize_rcu(ctx: KernelContext) -> Generator:
    """Wait until all current RCU readers have left their sections.

    The executor answers the ``rcu_synchronize`` query with True once no
    other thread is inside a read-side critical section.
    """
    while True:
        quiescent = yield SyncOp("rcu_synchronize", 0, _ins(1))
        if quiescent:
            return
        yield from ctx.cpu_relax()


# -- seqlock -----------------------------------------------------------------


def write_seqlock(ctx: KernelContext, seq_addr: int, lock_addr: int) -> Generator:
    """Writer side of a seqlock: take the lock, bump the sequence (odd)."""
    yield from spin_lock(ctx, lock_addr)
    seq = yield from ctx.load(seq_addr, LOCK_WORD_SIZE, atomic=True, _depth=1)
    yield from ctx.store(seq_addr, LOCK_WORD_SIZE, seq + 1, atomic=True, _depth=1)


def write_sequnlock(ctx: KernelContext, seq_addr: int, lock_addr: int) -> Generator:
    """Writer side: bump the sequence back to even, drop the lock."""
    seq = yield from ctx.load(seq_addr, LOCK_WORD_SIZE, atomic=True, _depth=1)
    yield from ctx.store(seq_addr, LOCK_WORD_SIZE, seq + 1, atomic=True, _depth=1)
    yield from spin_unlock(ctx, lock_addr)


def read_seqbegin(ctx: KernelContext, seq_addr: int) -> Generator:
    """Reader side: wait for an even (stable) sequence and return it."""
    while True:
        seq = yield from ctx.load(seq_addr, LOCK_WORD_SIZE, atomic=True, _depth=1)
        if seq % 2 == 0:
            return seq
        yield from ctx.cpu_relax()


def read_seqretry(ctx: KernelContext, seq_addr: int, start: int) -> Generator:
    """Reader side: True when the critical section must be retried."""
    seq = yield from ctx.load(seq_addr, LOCK_WORD_SIZE, atomic=True, _depth=1)
    return seq != start
