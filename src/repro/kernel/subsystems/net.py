"""Network stack: devices, sockets, fanout groups, and the FIB.

Planted bugs (Table 2 analogues):

* **#9 — data race ``dev_ifsioc_locked()`` / ``eth_commit_mac_addr_change()``
  (harmful, Figure 3).**  The writer copies the 6-byte MAC address into
  ``dev->dev_addr`` in two chunks while holding the RTNL lock; the reader
  copies it out under ``rcu_read_lock`` only.  Different locks, no mutual
  exclusion: the reader can return a *torn* MAC (half old, half new) to
  user space.

* **#8 — data race ``packet_getname()`` / ``e1000_set_mac()``:** a second,
  completely lockless reader of the same MAC bytes.

* **#7 — data race ``rawv6_send_hdrinc()`` / ``__dev_set_mtu()``:** raw
  IPv6 send reads ``dev->mtu`` with no lock while the ioctl writer updates
  it under RTNL.

* **#16 — benign data race on the default congestion control:**
  ``tcp_set_default_congestion_control()`` writes the global word plainly;
  ``tcp_set_congestion_control()`` reads it plainly.  Single aligned word,
  any observed value is valid — benign.

* **#17 — data race ``fanout_demux_rollover()`` / ``__fanout_unlink()``:**
  the demux path reads ``num_members`` and the member array with no lock
  while socket close compacts the array under the fanout lock.

* **#10 — benign data race ``fib6_get_cookie_safe()`` / ``fib6_clean_node()``:**
  the route cookie is written under a seqlock writer section with plain
  stores and read in a seqlock retry loop with plain loads; the detector
  flags the race but the retry makes it harmless.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import EINVAL, SyscallError
from repro.kernel.kernel import F_SOCK, Kernel
from repro.kernel.sync import (
    mutex_lock,
    mutex_unlock,
    rcu_read_lock,
    rcu_read_unlock,
    read_seqbegin,
    read_seqretry,
    spin_lock,
    spin_unlock,
    write_seqlock,
    write_sequnlock,
)
from repro.machine.layout import Struct, field

NDEVS = 2
MAC_LEN = 6
FANOUT_SLOTS = 4

# Socket protocol families understood by the mini-kernel.
AF_INET = 0
AF_PACKET = 1
PX_PROTO_OL2TP = 2
AF_INET6 = 3

NETDEV = Struct(
    "net_device",
    field("lock", 4),
    field("ifindex", 4),
    field("dev_addr", 8),  # 6 MAC bytes + 2 padding
    field("mtu", WORD),
    field("flags", WORD),
)

SOCK = Struct(
    "sock",
    field("lock", 4),
    field("proto", 4),
    field("dev", WORD),
    field("tunnel", WORD),
    field("cc", WORD),
    field("bound", WORD),
    field("fanout_on", WORD),
)

FANOUT = Struct(
    "packet_fanout",
    field("lock", 4),
    field("pad", 4),
    field("num_members", WORD),
    *[field(f"arr_{i}", WORD) for i in range(FANOUT_SLOTS)],
)

FIB6 = Struct(
    "fib6_table",
    field("seq", 4),
    field("seqlock", 4),
    field("cookie", WORD),
)

IOCTL_SIOCSIFHWADDR = 4
IOCTL_SIOCGIFHWADDR = 5
IOCTL_SIOCSIFMTU = 6

SO_CONGESTION = 1
SO_DEFAULT_CONGESTION = 2
SO_PACKET_FANOUT = 3

ConnectHandler = Callable[..., Generator]


class NetSubsystem:
    """Network devices + the socket layer."""

    name = "net"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        memory = kernel.machine.memory

        self.devs = kernel.static_alloc("netdev_table", NETDEV.size * NDEVS)
        for i in range(NDEVS):
            base = self.devs + i * NETDEV.size
            memory.write_int(NETDEV.addr(base, "ifindex"), 4, i)
            mac = 0x0250_5600_0000 + i  # 02:50:56:00:00:0i, little-endian int
            memory.write_int(NETDEV.addr(base, "dev_addr"), 8, mac)
            memory.write_int(NETDEV.addr(base, "mtu"), WORD, 1500)

        self.rtnl_lock = kernel.static_alloc("rtnl_lock", 4)
        self.default_cc = kernel.static_alloc("tcp_default_cc", WORD)
        memory.write_int(self.default_cc, WORD, 1)  # "cubic"
        self.fanout = kernel.static_alloc("packet_fanout_group", FANOUT.size)
        self.fib6 = kernel.static_alloc("fib6_main_table", FIB6.size)
        memory.write_int(FIB6.addr(self.fib6, "cookie"), WORD, 0xABCD)

        # Protocol registries; other subsystems (l2tp) add entries.
        self.create_ops: Dict[int, ConnectHandler] = {}
        self.connect_ops: Dict[int, ConnectHandler] = {}
        self.sendmsg_ops: Dict[int, ConnectHandler] = {}

        kernel.register_syscall("socket", self.sys_socket)
        kernel.register_syscall("connect", self.sys_connect)
        kernel.register_syscall("sendmsg", self.sys_sendmsg)
        kernel.register_syscall("getsockname", self.sys_getsockname)
        kernel.register_syscall("setsockopt", self.sys_setsockopt)
        kernel.register_syscall("route_update", self.sys_route_update)
        kernel.register_ioctl(IOCTL_SIOCSIFHWADDR, self.ioctl_set_mac)
        kernel.register_ioctl(IOCTL_SIOCGIFHWADDR, self.ioctl_get_mac)
        kernel.register_ioctl(IOCTL_SIOCSIFMTU, self.ioctl_set_mtu)
        kernel.register_close_hook(F_SOCK, self.sock_close)

    # -- helpers -----------------------------------------------------------------

    def dev_addr_of(self, ifindex: int) -> int:
        return self.devs + (ifindex % NDEVS) * NETDEV.size

    def alloc_sock(self, ctx: KernelContext, proto: int) -> Generator:
        sock = yield from self.kernel.allocator.kzalloc(ctx, SOCK.size)
        yield from ctx.store_field(SOCK, sock, "proto", proto)
        yield from ctx.store_field(SOCK, sock, "dev", self.dev_addr_of(0))
        return sock

    def sock_of_fd(self, ctx: KernelContext, fd: int) -> Generator:
        sock = yield from self.kernel.fd_object(ctx, fd, F_SOCK)
        return sock

    # -- socket lifecycle ----------------------------------------------------------

    def sys_socket(self, ctx: KernelContext, proto: int) -> Generator:
        """Create a socket of the given protocol family."""
        proto = int(proto) % 4
        creator = self.create_ops.get(proto)
        if creator is not None:
            sock = yield from creator(ctx, proto)
        else:
            sock = yield from self.alloc_sock(ctx, proto)
        fd = yield from self.kernel.fd_install(ctx, F_SOCK, sock)
        return fd

    def sock_close(self, ctx: KernelContext, file_addr: int) -> Generator:
        """Close hook: unlink packet sockets from their fanout group."""
        from repro.kernel.kernel import FILE

        sock = yield from ctx.load_field(FILE, file_addr, "obj")
        if sock == 0:
            return
        proto = yield from ctx.load_field(SOCK, sock, "proto")
        if proto == AF_PACKET:
            fanout_on = yield from ctx.load_field(SOCK, sock, "fanout_on")
            if fanout_on:
                yield from self.fanout_unlink(ctx, sock)
        yield from self.kernel.allocator.kfree(ctx, sock, SOCK.size)

    def sys_connect(self, ctx: KernelContext, fd: int, arg: int) -> Generator:
        """Connect: per-family behaviour."""
        sock = yield from self.sock_of_fd(ctx, fd)
        proto = yield from ctx.load_field(SOCK, sock, "proto")
        handler = self.connect_ops.get(proto)
        if handler is not None:
            ret = yield from handler(ctx, sock, arg)
            return ret
        # Default: bind to a device and adopt the default congestion
        # control — tcp_set_congestion_control()'s unlocked global read
        # (bug #16 reader side; READ_ONCE when patched).
        cc = yield from ctx.load_word(self.default_cc, atomic=self.kernel.fixed)
        yield from ctx.store_field(SOCK, sock, "cc", cc)
        yield from ctx.store_field(SOCK, sock, "dev", self.dev_addr_of(int(arg)))
        yield from ctx.store_field(SOCK, sock, "bound", 1)
        return 0

    # -- transmit paths -----------------------------------------------------------

    def sys_sendmsg(self, ctx: KernelContext, fd: int, value: int) -> Generator:
        """sendmsg: per-family transmit."""
        sock = yield from self.sock_of_fd(ctx, fd)
        proto = yield from ctx.load_field(SOCK, sock, "proto")
        handler = self.sendmsg_ops.get(proto)
        if handler is not None:
            ret = yield from handler(ctx, sock, value)
            return ret
        if proto == AF_PACKET:
            ret = yield from self.fanout_demux_rollover(ctx, sock, int(value))
            return ret
        if proto == AF_INET6:
            ret = yield from self.rawv6_send_hdrinc(ctx, sock, int(value))
            return ret
        # Plain AF_INET send: read the device MAC under the device lock
        # (a properly synchronised reader, for contrast with #8/#9).
        dev = yield from ctx.load_field(SOCK, sock, "dev")
        lock = NETDEV.addr(dev, "lock")
        yield from spin_lock(ctx, lock)
        mac = yield from ctx.memread(NETDEV.addr(dev, "dev_addr"), MAC_LEN)
        yield from spin_unlock(ctx, lock)
        return mac & 0x7FFF

    def rawv6_send_hdrinc(self, ctx: KernelContext, sock: int, value: int) -> Generator:
        """Raw IPv6 send: unlocked MTU read (#7) + FIB cookie read (#10)."""
        dev = yield from ctx.load_field(SOCK, sock, "dev")
        # Buggy kernel: plain unlocked load (bug #7).  Patched kernel:
        # READ_ONCE pairing with the writer's WRITE_ONCE.
        mtu = yield from ctx.load_field(NETDEV, dev, "mtu", atomic=self.kernel.fixed)
        fragments = 1 + (int(value) % 4096) // max(int(mtu), 1) if mtu else 0

        # fib6_get_cookie_safe(): seqlock read side with plain cookie loads.
        seq_addr = FIB6.addr(self.fib6, "seq")
        while True:
            start = yield from read_seqbegin(ctx, seq_addr)
            # Plain in the buggy kernel (benign race #10); READ_ONCE when
            # patched, silencing the detector without changing behaviour.
            cookie = yield from ctx.load_field(
                FIB6, self.fib6, "cookie", atomic=self.kernel.fixed
            )
            retry = yield from read_seqretry(ctx, seq_addr, start)
            if not retry:
                break
        return (fragments + (cookie & 0xFF)) & 0x7FFF

    # -- MAC address paths (#8 / #9) ------------------------------------------------

    def ioctl_set_mac(self, ctx: KernelContext, fd: int, arg: int) -> Generator:
        """eth_commit_mac_addr_change(): chunked MAC write under RTNL."""
        sock = yield from self.sock_of_fd(ctx, fd)
        dev = yield from ctx.load_field(SOCK, sock, "dev")
        new_mac = int(arg) & ((1 << (8 * MAC_LEN)) - 1)
        yield from mutex_lock(ctx, self.rtnl_lock)
        if self.kernel.fixed:
            # Patched kernel: also take the device lock, synchronising
            # with the dev-lock readers (the plain AF_INET send path).
            yield from spin_lock(ctx, NETDEV.addr(dev, "lock"))
        # Two store instructions (4 + 2 bytes): the torn-write window.
        yield from ctx.memwrite(NETDEV.addr(dev, "dev_addr"), MAC_LEN, new_mac)
        if self.kernel.fixed:
            yield from spin_unlock(ctx, NETDEV.addr(dev, "lock"))
        yield from mutex_unlock(ctx, self.rtnl_lock)
        return 0

    def ioctl_get_mac(self, ctx: KernelContext, fd: int, arg: int) -> Generator:
        """dev_ifsioc(): chunked MAC read.

        Buggy kernel: under rcu_read_lock only (#9) — no exclusion with
        the RTNL-holding writer.  Patched kernel (the upstream fix
        changed the reader's locking scheme): read under RTNL.
        """
        sock = yield from self.sock_of_fd(ctx, fd)
        dev = yield from ctx.load_field(SOCK, sock, "dev")
        if self.kernel.fixed:
            yield from mutex_lock(ctx, self.rtnl_lock)
            mac = yield from ctx.memread(NETDEV.addr(dev, "dev_addr"), MAC_LEN)
            yield from mutex_unlock(ctx, self.rtnl_lock)
            return mac & 0xFFFF_FFFF_FFFF
        yield from rcu_read_lock(ctx)
        mac = yield from ctx.memread(NETDEV.addr(dev, "dev_addr"), MAC_LEN)
        yield from rcu_read_unlock(ctx)
        return mac & 0xFFFF_FFFF_FFFF  # the full 6 MAC bytes (always non-negative)

    def sys_getsockname(self, ctx: KernelContext, fd: int) -> Generator:
        """packet_getname(): lockless MAC read (#8); locked when fixed."""
        sock = yield from self.sock_of_fd(ctx, fd)
        dev = yield from ctx.load_field(SOCK, sock, "dev")
        if self.kernel.fixed:
            yield from mutex_lock(ctx, self.rtnl_lock)
            mac = yield from ctx.memread(NETDEV.addr(dev, "dev_addr"), MAC_LEN)
            yield from mutex_unlock(ctx, self.rtnl_lock)
            return mac & 0xFFFF_FFFF_FFFF
        mac = yield from ctx.memread(NETDEV.addr(dev, "dev_addr"), MAC_LEN)
        return mac & 0xFFFF_FFFF_FFFF

    def ioctl_set_mtu(self, ctx: KernelContext, fd: int, arg: int) -> Generator:
        """__dev_set_mtu(): plain store under RTNL (#7 writer)."""
        sock = yield from self.sock_of_fd(ctx, fd)
        dev = yield from ctx.load_field(SOCK, sock, "dev")
        mtu = int(arg)
        if mtu <= 0 or mtu > 65535:
            raise SyscallError(EINVAL, f"bad mtu {mtu}")
        yield from mutex_lock(ctx, self.rtnl_lock)
        yield from ctx.store_field(NETDEV, dev, "mtu", mtu, atomic=self.kernel.fixed)
        yield from mutex_unlock(ctx, self.rtnl_lock)
        return 0

    # -- congestion control (#16) ------------------------------------------------

    def sys_setsockopt(self, ctx: KernelContext, fd: int, opt: int, value: int) -> Generator:
        sock = yield from self.sock_of_fd(ctx, fd)
        opt = int(opt)
        if opt == SO_CONGESTION:
            # tcp_set_congestion_control(): plain global read (#16 reader);
            # READ_ONCE in the patched kernel.
            cc = yield from ctx.load_word(self.default_cc, atomic=self.kernel.fixed)
            yield from ctx.store_field(SOCK, sock, "cc", cc if value == 0 else value)
            return 0
        if opt == SO_DEFAULT_CONGESTION:
            # tcp_set_default_congestion_control(): plain global write;
            # WRITE_ONCE in the patched kernel.
            yield from ctx.store_word(
                self.default_cc, int(value) & 0xFF, atomic=self.kernel.fixed
            )
            return 0
        if opt == SO_PACKET_FANOUT:
            ret = yield from self.fanout_add(ctx, sock)
            return ret
        raise SyscallError(EINVAL, f"unknown sockopt {opt}")

    # -- packet fanout (#17) -------------------------------------------------------

    def fanout_add(self, ctx: KernelContext, sock: int) -> Generator:
        """Join the fanout group (locked)."""
        proto = yield from ctx.load_field(SOCK, sock, "proto")
        if proto != AF_PACKET:
            raise SyscallError(EINVAL, "fanout needs a packet socket")
        lock = FANOUT.addr(self.fanout, "lock")
        yield from spin_lock(ctx, lock)
        num = yield from ctx.load_field(FANOUT, self.fanout, "num_members")
        if num >= FANOUT_SLOTS:
            yield from spin_unlock(ctx, lock)
            raise SyscallError(EINVAL, "fanout group full")
        yield from ctx.store_word(
            FANOUT.addr(self.fanout, f"arr_{num}"), sock
        )
        yield from ctx.store_field(FANOUT, self.fanout, "num_members", num + 1)
        yield from spin_unlock(ctx, lock)
        yield from ctx.store_field(SOCK, sock, "fanout_on", 1)
        return 0

    def fanout_unlink(self, ctx: KernelContext, sock: int) -> Generator:
        """__fanout_unlink(): locked compaction of the member array."""
        lock = FANOUT.addr(self.fanout, "lock")
        yield from spin_lock(ctx, lock)
        num = yield from ctx.load_field(FANOUT, self.fanout, "num_members")
        position = -1
        for i in range(FANOUT_SLOTS):
            member = yield from ctx.load_word(FANOUT.addr(self.fanout, f"arr_{i}"))
            if member == sock and position < 0:
                position = i
        if position >= 0:
            for i in range(position, FANOUT_SLOTS - 1):
                nxt = yield from ctx.load_word(FANOUT.addr(self.fanout, f"arr_{i + 1}"))
                yield from ctx.store_word(FANOUT.addr(self.fanout, f"arr_{i}"), nxt)
            yield from ctx.store_word(FANOUT.addr(self.fanout, f"arr_{FANOUT_SLOTS - 1}"), 0)
            yield from ctx.store_field(FANOUT, self.fanout, "num_members", num - 1)
        yield from spin_unlock(ctx, lock)

    def fanout_demux_rollover(self, ctx: KernelContext, sock: int, value: int) -> Generator:
        """fanout_demux_rollover(): lockless group reads (#17).

        The patched kernel takes the fanout lock around the demux, the
        shape of the upstream fix (which made the accesses consistent).
        """
        fixed = self.kernel.fixed
        lock = FANOUT.addr(self.fanout, "lock")
        if fixed:
            yield from spin_lock(ctx, lock)
        num = yield from ctx.load_field(FANOUT, self.fanout, "num_members")
        if num == 0:
            if fixed:
                yield from spin_unlock(ctx, lock)
            return 0
        idx = value % num if num > 0 else 0
        idx = min(idx, FANOUT_SLOTS - 1)
        member = yield from ctx.load_word(FANOUT.addr(self.fanout, f"arr_{idx}"))
        if fixed:
            # Patched kernel: the member is only dereferenced while the
            # fanout lock pins it (close() unlinks under the same lock
            # before freeing), closing the use-after-free window too.
            proto = 0
            if member != 0:
                proto = yield from ctx.load_field(SOCK, member, "proto")
            yield from spin_unlock(ctx, lock)
            return int(proto) & 0x7FFF
        if member == 0:
            return 0
        proto = yield from ctx.load_field(SOCK, member, "proto")
        return int(proto) & 0x7FFF

    # -- FIB cookie writer (#10) -----------------------------------------------------

    def sys_route_update(self, ctx: KernelContext, value: int) -> Generator:
        """fib6_clean_node(): seqlock writer section with plain stores."""
        seq_addr = FIB6.addr(self.fib6, "seq")
        lock_addr = FIB6.addr(self.fib6, "seqlock")
        yield from write_seqlock(ctx, seq_addr, lock_addr)
        yield from ctx.store_field(
            FIB6, self.fib6, "cookie", int(value) & 0xFFFF, atomic=self.kernel.fixed
        )
        yield from write_sequnlock(ctx, seq_addr, lock_addr)
        return 0
