"""System V message queues, keyed through the rhashtable library.

This is the syscall surface that detonates the rhashtable double-fetch
bug (#1, Figure 4): ``msgget()`` looks the key up locklessly through
``rht_lookup`` while ``msgctl(IPC_RMID)`` zeroes the bucket head under
the writer lock — the exact ``msgget()``/``msgctl()`` pair the paper
names as a trigger.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import EINVAL, ENOENT, SyscallError
from repro.kernel.kernel import Kernel
from repro.kernel.rhashtable import (
    RHT_TABLE,
    rht_insert,
    rht_lookup,
    rht_remove,
)
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

IPC_RMID = 0
IPC_STAT = 1

# A message queue: rhashtable entry header + payload fields.
MSQ = Struct(
    "msg_queue",
    field("next", WORD),
    field("key", WORD),
    field("lock", 4),
    field("pad", 4),
    field("qbytes", WORD),
    field("message", WORD),
    field("msg_count", WORD),
)


class IpcSubsystem:
    """msgget / msgctl / msgsnd / msgrcv over the shared rhashtable."""

    name = "ipc"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.table = kernel.static_alloc("ipc_ids_rhashtable", RHT_TABLE.size)
        kernel.register_syscall("msgget", self.sys_msgget)
        kernel.register_syscall("msgctl", self.sys_msgctl)
        kernel.register_syscall("msgsnd", self.sys_msgsnd)
        kernel.register_syscall("msgrcv", self.sys_msgrcv)

    def _lookup(self, ctx: KernelContext, key: int) -> Generator:
        entry = yield from rht_lookup(ctx, self.table, key)
        return entry

    def sys_msgget(self, ctx: KernelContext, key: int) -> Generator:
        """Get-or-create the queue with ``key``; returns the queue id.

        The initial lookup (ipcget → find_key) walks the bucket with the
        double-fetch ``rht_ptr`` — the reader side of bug #1.
        """
        key = int(key) % 8
        entry = yield from self._lookup(ctx, key)
        if entry != 0:
            return key
        msq = yield from self.kernel.allocator.kzalloc(ctx, MSQ.size)
        yield from ctx.store_field(MSQ, msq, "qbytes", 16384)
        yield from rht_insert(ctx, self.table, msq, key)
        return key

    def sys_msgctl(self, ctx: KernelContext, key: int, cmd: int) -> Generator:
        """IPC_RMID removes the queue (the bucket-nulling writer of #1)."""
        key = int(key) % 8
        cmd = int(cmd) % 2
        if cmd == IPC_RMID:
            entry = yield from rht_remove(ctx, self.table, key)
            if entry == 0:
                raise SyscallError(ENOENT, f"no queue with key {key}")
            yield from self.kernel.allocator.kfree(ctx, entry, MSQ.size)
            return 0
        if cmd == IPC_STAT:
            entry = yield from self._lookup(ctx, key)
            if entry == 0:
                raise SyscallError(ENOENT, f"no queue with key {key}")
            lock = MSQ.addr(entry, "lock")
            yield from spin_lock(ctx, lock)
            qbytes = yield from ctx.load_field(MSQ, entry, "qbytes")
            yield from spin_unlock(ctx, lock)
            return int(qbytes) & 0x7FFF_FFFF
        raise SyscallError(EINVAL, f"unknown msgctl cmd {cmd}")

    def sys_msgsnd(self, ctx: KernelContext, key: int, value: int) -> Generator:
        """Store a message on the queue (lockless lookup, then write)."""
        key = int(key) % 8
        entry = yield from self._lookup(ctx, key)
        if entry == 0:
            raise SyscallError(ENOENT, f"no queue with key {key}")
        lock = MSQ.addr(entry, "lock")
        yield from spin_lock(ctx, lock)
        yield from ctx.store_field(MSQ, entry, "message", int(value) & 0xFFFF_FFFF)
        count = yield from ctx.load_field(MSQ, entry, "msg_count")
        yield from ctx.store_field(MSQ, entry, "msg_count", count + 1)
        yield from spin_unlock(ctx, lock)
        return 0

    def sys_msgrcv(self, ctx: KernelContext, key: int) -> Generator:
        """Fetch the last message from the queue."""
        key = int(key) % 8
        entry = yield from self._lookup(ctx, key)
        if entry == 0:
            raise SyscallError(ENOENT, f"no queue with key {key}")
        lock = MSQ.addr(entry, "lock")
        yield from spin_lock(ctx, lock)
        message = yield from ctx.load_field(MSQ, entry, "message")
        yield from spin_unlock(ctx, lock)
        return int(message) & 0x7FFF_FFFF
