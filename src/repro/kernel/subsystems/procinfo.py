"""A /proc-like statistics reader.

``sysinfo()`` reads the allocator's statistics counters without taking
any lock — the same pattern as Linux's lockless ``/proc`` counter reads
that DataCollider famously flagged and developers declared benign
("developers chose performance over strong semantics", section 4.3).
It adds more reader instructions on the #13 memory ranges, which enlarges
exactly the clusters the S-MEM strategy keys on.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.alloc import ALLOC_STATE
from repro.kernel.context import KernelContext
from repro.kernel.kernel import Kernel


class ProcInfoSubsystem:
    """Lockless kernel statistics, /proc style."""

    name = "procinfo"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        kernel.register_syscall("sysinfo", self.sys_sysinfo)

    def sys_sysinfo(self, ctx: KernelContext) -> Generator:
        """Read the allocator counters with plain loads (benign race)."""
        state = self.kernel.allocator.state
        fixed = self.kernel.fixed
        allocs = yield from ctx.load_word(
            ALLOC_STATE.addr(state, "total_allocs"), atomic=fixed
        )
        frees = yield from ctx.load_word(
            ALLOC_STATE.addr(state, "total_frees"), atomic=fixed
        )
        in_use = yield from ctx.load_word(
            ALLOC_STATE.addr(state, "bytes_in_use"), atomic=fixed
        )
        return int(allocs + frees + (in_use & 0xFFFF)) & 0x7FFF_FFFF
