"""System V semaphores — a *second* user of the buggy rhashtable.

Section 5.2, Case 3: "Since this is a bug in the rhashtable library, any
system-call pair that uses it to communicate is affected."  The
semaphore namespace keys through its own rhashtable instance, so the
same double-fetch NULL dereference (#1) is reachable from a completely
different syscall family (``semget`` ‖ ``semctl(IPC_RMID)``), exactly as
the paper observes for msgctl/msgget and socket/sendmsg.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import EINVAL, ENOENT, SyscallError
from repro.kernel.kernel import Kernel
from repro.kernel.rhashtable import RHT_TABLE, rht_insert, rht_lookup, rht_remove
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

SEM_RMID = 0
SEM_GETVAL = 1

# A semaphore set: rhashtable entry header + its value and lock.
SEM = Struct(
    "sem_array",
    field("next", WORD),
    field("key", WORD),
    field("lock", 4),
    field("pad", 4),
    field("value", WORD),
    field("ops_done", WORD),
)


class SemSubsystem:
    """semget / semctl / semop over a private rhashtable instance."""

    name = "sem"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.table = kernel.static_alloc("sem_ids_rhashtable", RHT_TABLE.size)
        kernel.register_syscall("semget", self.sys_semget)
        kernel.register_syscall("semctl", self.sys_semctl)
        kernel.register_syscall("semop", self.sys_semop)

    def sys_semget(self, ctx: KernelContext, key: int) -> Generator:
        """Get-or-create; the lookup walks the bucket with the double
        fetch, the reader side of bug #1 in a second syscall family."""
        key = int(key) % 8
        entry = yield from rht_lookup(ctx, self.table, key)
        if entry != 0:
            return key
        sem = yield from self.kernel.allocator.kzalloc(ctx, SEM.size)
        yield from ctx.store_field(SEM, sem, "value", 1)
        yield from rht_insert(ctx, self.table, sem, key)
        return key

    def sys_semctl(self, ctx: KernelContext, key: int, cmd: int) -> Generator:
        key = int(key) % 8
        cmd = int(cmd) % 2
        if cmd == SEM_RMID:
            entry = yield from rht_remove(ctx, self.table, key)
            if entry == 0:
                raise SyscallError(ENOENT, f"no semaphore with key {key}")
            yield from self.kernel.allocator.kfree(ctx, entry, SEM.size)
            return 0
        if cmd == SEM_GETVAL:
            entry = yield from rht_lookup(ctx, self.table, key)
            if entry == 0:
                raise SyscallError(ENOENT, f"no semaphore with key {key}")
            lock = SEM.addr(entry, "lock")
            yield from spin_lock(ctx, lock)
            value = yield from ctx.load_field(SEM, entry, "value")
            yield from spin_unlock(ctx, lock)
            return int(value) & 0x7FFF_FFFF
        raise SyscallError(EINVAL, f"unknown semctl cmd {cmd}")

    def sys_semop(self, ctx: KernelContext, key: int, delta: int) -> Generator:
        """Adjust the semaphore value (locked read-modify-write)."""
        key = int(key) % 8
        entry = yield from rht_lookup(ctx, self.table, key)
        if entry == 0:
            raise SyscallError(ENOENT, f"no semaphore with key {key}")
        lock = SEM.addr(entry, "lock")
        delta = int(delta) % 8 - 4
        yield from spin_lock(ctx, lock)
        value = yield from ctx.load_field(SEM, entry, "value")
        new = max(0, value + delta)
        yield from ctx.store_field(SEM, entry, "value", new)
        done = yield from ctx.load_field(SEM, entry, "ops_done")
        yield from ctx.store_field(SEM, entry, "ops_done", done + 1)
        yield from spin_unlock(ctx, lock)
        return int(new) & 0x7FFF
