"""TTY / serial layer.

Planted bug (**#14 — data race ``tty_port_open()`` / ``uart_do_autoconfig()``,
harmful**): autoconfiguration rewrites the port type under the *port*
lock, transiently storing the "unknown" type while probing; ``tty_open``
reads the port type under the *tty* lock.  Two different locks — no
mutual exclusion — so an opener can observe the transient unknown type
and fail the open (or worse, bind the wrong driver).
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import EBUSY, SyscallError
from repro.kernel.kernel import F_TTY, Kernel
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

PORT_UNKNOWN = 0
PORT_8250 = 2

UART_PORT = Struct(
    "uart_port",
    field("port_lock", 4),
    field("tty_lock", 4),
    field("type", WORD),
    field("line", WORD),
    field("open_count", WORD),
)

IOCTL_TIOCAUTOCONF = 7


class TtySubsystem:
    """One serial port, ttyS0."""

    name = "tty"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.port = kernel.static_alloc("uart_ttyS0", UART_PORT.size)
        kernel.machine.memory.write_int(
            UART_PORT.addr(self.port, "type"), WORD, PORT_8250
        )
        kernel.register_syscall("tty_open", self.sys_tty_open)
        kernel.register_ioctl(IOCTL_TIOCAUTOCONF, self.ioctl_autoconfig)

    def sys_tty_open(self, ctx: KernelContext) -> Generator:
        """tty_port_open(): reads the port type under the tty lock only.

        The patched kernel takes the *port* lock — the same lock
        autoconfig holds — restoring mutual exclusion.
        """
        lock_field = "port_lock" if self.kernel.fixed else "tty_lock"
        tty_lock = UART_PORT.addr(self.port, lock_field)
        yield from spin_lock(ctx, tty_lock)
        port_type = yield from ctx.load_field(UART_PORT, self.port, "type")
        if port_type == PORT_UNKNOWN:
            yield from ctx.printk("ttyS0: tty_port_open: port type unknown")
            yield from spin_unlock(ctx, tty_lock)
            raise SyscallError(EBUSY, "port has no type")
        count = yield from ctx.load_field(UART_PORT, self.port, "open_count")
        yield from ctx.store_field(UART_PORT, self.port, "open_count", count + 1)
        yield from spin_unlock(ctx, tty_lock)
        fd = yield from self.kernel.fd_install(ctx, F_TTY, self.port)
        return fd

    def ioctl_autoconfig(self, ctx: KernelContext, fd: int, arg: int) -> Generator:
        """uart_do_autoconfig(): rewrites the type under the *port* lock."""
        yield from self.kernel.fd_file(ctx, fd)
        port_lock = UART_PORT.addr(self.port, "port_lock")
        yield from spin_lock(ctx, port_lock)
        yield from ctx.store_field(UART_PORT, self.port, "type", PORT_UNKNOWN)
        # Probe the hardware (a couple of register-ish accesses).
        line = yield from ctx.load_field(UART_PORT, self.port, "line")
        yield from ctx.store_field(UART_PORT, self.port, "line", line)
        yield from ctx.store_field(UART_PORT, self.port, "type", PORT_8250)
        yield from spin_unlock(ctx, port_lock)
        return 0
