"""ALSA-like sound control layer.

Planted bug (**#15 — data race in ``snd_ctl_elem_add()``, harmful**):
the accounting of user-control memory (``card->user_ctl_alloc_size``) is
a plain load-add-store sequence with no lock, so two concurrent element
additions can lose an update and bypass the allocation quota — the exact
shape of the race Takashi Iwai fixed after the paper's report.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import ENOMEM, SyscallError
from repro.kernel.kernel import Kernel
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

MAX_USER_CTL_BYTES = 4096

SND_CARD = Struct(
    "snd_card",
    field("lock", 4),
    field("pad", 4),
    field("user_ctl_count", WORD),
    field("user_ctl_bytes", WORD),
)


class SoundSubsystem:
    """One sound card with user-defined control elements."""

    name = "sound"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.card = kernel.static_alloc("snd_card0", SND_CARD.size)
        kernel.register_syscall("snd_ctl_add", self.sys_snd_ctl_add)
        kernel.register_syscall("snd_ctl_info", self.sys_snd_ctl_info)

    def sys_snd_ctl_add(self, ctx: KernelContext, size: int) -> Generator:
        """snd_ctl_elem_add(): unsynchronised quota read-modify-write.

        The patched kernel (Takashi Iwai's fix) moves the accounting
        under the card lock.
        """
        size = max(1, int(size) % 1024)
        fixed = self.kernel.fixed
        lock = SND_CARD.addr(self.card, "lock")
        if fixed:
            yield from spin_lock(ctx, lock)
        used = yield from ctx.load_field(SND_CARD, self.card, "user_ctl_bytes")
        if used + size > MAX_USER_CTL_BYTES:
            if fixed:
                yield from spin_unlock(ctx, lock)
            raise SyscallError(ENOMEM, "user control quota exhausted")
        yield from ctx.store_field(SND_CARD, self.card, "user_ctl_bytes", used + size)
        count = yield from ctx.load_field(SND_CARD, self.card, "user_ctl_count")
        yield from ctx.store_field(SND_CARD, self.card, "user_ctl_count", count + 1)
        if fixed:
            yield from spin_unlock(ctx, lock)
        return int(used + size) & 0x7FFF_FFFF

    def sys_snd_ctl_info(self, ctx: KernelContext) -> Generator:
        """Report the current accounting."""
        fixed = self.kernel.fixed
        lock = SND_CARD.addr(self.card, "lock")
        if fixed:
            yield from spin_lock(ctx, lock)
        bytes_used = yield from ctx.load_field(SND_CARD, self.card, "user_ctl_bytes")
        if fixed:
            yield from spin_unlock(ctx, lock)
        return int(bytes_used) & 0x7FFF_FFFF
