"""Miniature ext4-like filesystem plus a configfs-like tree.

Planted bugs (Table 2 analogues):

* **#2 — "EXT4-fs error: swap_inode_boot_loader: checksum invalid"
  (atomicity violation, duplicate input).**  The ``SWAP_BOOT_LOADER``
  ioctl swaps an inode's data with the boot-loader inode in one locked
  section, then recomputes the checksums *from the stale values it read*
  in a second locked section.  Two concurrent swaps interleave between
  the sections and leave a checksum that does not match the data.  Every
  access is lock-protected, so no data race is involved — exactly the
  non-data-race AV class the paper highlights.

* **#3 — "EXT4-fs error: ext4_ext_check_inode: invalid magic"
  (atomicity violation, duplicate input).**  ``write()`` invalidates the
  extent-header magic in one locked section and restores it in a second;
  a concurrent ``write()`` on the same inode observes the zero magic in
  between and reports header corruption.

* **#4 — "Blk_update_request: I/O error" (atomicity violation).**
  ``read()`` samples the block device's blocksize once per block without
  holding the block-device lock; ``set_blocksize`` transiently zeroes it
  (see :mod:`repro.kernel.subsystems.blockdev`), so a concurrent reader
  sees 0 or two different sizes mid-read and fails the I/O.

* **#6 — data race ``do_mpage_readpage()`` / ``set_blocksize()``:** the
  same unlocked blocksize reads race with the locked writer.

* **#5 — data race ``blkdev_ioctl()`` / ``generic_fadvise()``:**
  ``fadvise()`` reads the device's readahead setting without the lock
  the ``BLKRASET`` ioctl writer holds.

* **#11 — "BUG: kernel NULL pointer dereference" in configfs (data
  race).**  ``mkdir`` links a new dentry into its parent's list *before*
  initialising the dentry's inode pointer, with plain (unsynchronised)
  stores; a concurrent ``lookup`` traversing the list dereferences the
  not-yet-initialised inode pointer and faults.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import EINVAL, EIO, ENOENT, SyscallError
from repro.kernel.kernel import F_DIR, F_REG, FILE, Kernel
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

NINODES = 6
BOOT_INO = 0
EXT_MAGIC = 0xF30A
CONFIGFS_PATH_BASE = 100  # path ids >= this live in the configfs tree

INODE = Struct(
    "inode",
    field("lock", 4),
    field("ino", 4),
    field("data", WORD),
    field("gen", 4),
    field("csum", 4),
    field("eh_magic", 4),
    field("eh_entries", 4),
    field("size", WORD),
)

# configfs dentry: linked into its parent directory's list.
DENTRY = Struct(
    "dentry",
    field("next", WORD),
    field("name", WORD),
    field("inode", WORD),
)

CONFIGFS_DIR = Struct(
    "configfs_dir",
    field("lock", 4),
    field("pad", 4),
    field("children", WORD),
)

CONFIGFS_INODE = Struct(
    "configfs_inode",
    field("mode", WORD),
    field("nlink", WORD),
)


def ext4_csum(data: int, gen: int) -> int:
    """Toy inode checksum: mixes the data word and the generation."""
    return (data * 2654435761 + gen * 40503) & 0xFFFFFFFF


class FsSubsystem:
    """The filesystem: regular inodes + the configfs tree."""

    name = "fs"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        memory = kernel.machine.memory
        self.inodes = kernel.static_alloc("inode_table", INODE.size * NINODES)
        for ino in range(NINODES):
            base = self.inodes + ino * INODE.size
            memory.write_int(INODE.addr(base, "ino"), 4, ino)
            data = 0x1000 + ino
            gen = ino + 1
            memory.write_int(INODE.addr(base, "data"), WORD, data)
            memory.write_int(INODE.addr(base, "gen"), 4, gen)
            memory.write_int(INODE.addr(base, "csum"), 4, ext4_csum(data, gen))
            memory.write_int(INODE.addr(base, "eh_magic"), 4, EXT_MAGIC)

        self.configfs_root = kernel.static_alloc("configfs_root", CONFIGFS_DIR.size)

        kernel.register_syscall("open", self.sys_open)
        kernel.register_syscall("close", self.sys_close)
        kernel.register_syscall("read", self.sys_read)
        kernel.register_syscall("write", self.sys_write)
        kernel.register_syscall("fsync", self.sys_fsync)
        kernel.register_syscall("fadvise", self.sys_fadvise)
        kernel.register_syscall("mkdir", self.sys_mkdir)
        kernel.register_syscall("lookup", self.sys_lookup)
        kernel.register_ioctl(IOCTL_SWAP_BOOT_LOADER, self.ioctl_swap_boot_loader)

    # -- helpers ---------------------------------------------------------------

    def inode_addr(self, ino: int) -> int:
        if not 0 <= ino < NINODES:
            raise SyscallError(ENOENT, f"no inode {ino}")
        return self.inodes + ino * INODE.size

    # -- syscalls ----------------------------------------------------------------

    def sys_open(self, ctx: KernelContext, path: int) -> Generator:
        """Open path ``path``.  Small integers name regular inodes."""
        if path >= CONFIGFS_PATH_BASE:
            return (yield from self.sys_lookup(ctx, path - CONFIGFS_PATH_BASE))
        inode = self.inode_addr(path % NINODES)
        fd = yield from self.kernel.fd_install(ctx, F_REG, inode)
        return fd

    def sys_close(self, ctx: KernelContext, fd: int) -> Generator:
        """Close an fd of any type, releasing the file struct."""
        file_addr = yield from self.kernel.fd_file(ctx, fd)
        ftype = yield from ctx.load_field(FILE, file_addr, "ftype")
        # Give type-specific close hooks a chance (e.g. packet fanout unlink).
        hook = self.kernel.close_hooks.get(ftype)
        if hook is not None:
            yield from hook(ctx, file_addr)
        yield from ctx.store_word(ctx.proc.fdtable + fd * WORD, 0)
        yield from self.kernel.allocator.kfree(ctx, file_addr, FILE.size)
        return 0

    def sys_read(self, ctx: KernelContext, fd: int, nblocks: int) -> Generator:
        """Read ``nblocks`` blocks of the file.

        Samples the device blocksize once per block, without the device
        lock — the reader side of bugs #4 and #6.
        """
        inode = yield from self.kernel.fd_object(ctx, fd, F_REG)
        blockdev = self.kernel.subsystems["blockdev"]
        nblocks = max(1, min(int(nblocks), 4))
        first_bs = None
        for _ in range(nblocks):
            bs = yield from blockdev.sample_blocksize(ctx)  # unlocked read
            if bs == 0 or (first_bs is not None and bs != first_bs):
                yield from ctx.printk(
                    "Blk_update_request: I/O error, dev sda, sector 0"
                )
                raise SyscallError(EIO, "blocksize changed under read")
            first_bs = bs
        lock = INODE.addr(inode, "lock")
        yield from spin_lock(ctx, lock)
        value = yield from ctx.load_field(INODE, inode, "data")
        yield from spin_unlock(ctx, lock)
        return value & 0x7FFF_FFFF

    def sys_write(self, ctx: KernelContext, fd: int, value: int) -> Generator:
        """Write to a file, updating the extent header non-atomically (#3)."""
        inode = yield from self.kernel.fd_object(ctx, fd, F_REG)
        lock = INODE.addr(inode, "lock")

        # Section 1: check the header, then invalidate it while updating.
        yield from spin_lock(ctx, lock)
        magic = yield from ctx.load_field(INODE, inode, "eh_magic")
        if magic != EXT_MAGIC:
            ino = yield from ctx.load_field(INODE, inode, "ino")
            yield from ctx.printk(
                f"EXT4-fs error (device sda): ext4_ext_check_inode: "
                f"inode #{ino}: comm test: pblk 0 bad header/extent: invalid magic"
            )
            yield from spin_unlock(ctx, lock)
            raise SyscallError(EIO, "bad extent header")
        yield from ctx.store_field(INODE, inode, "eh_magic", 0)
        entries = yield from ctx.load_field(INODE, inode, "eh_entries")
        yield from ctx.store_field(INODE, inode, "eh_entries", entries + 1)
        yield from ctx.store_field(INODE, inode, "data", value & 0xFFFF_FFFF)
        gen = yield from ctx.load_field(INODE, inode, "gen")
        yield from ctx.store_field(INODE, inode, "csum", ext4_csum(value & 0xFFFF_FFFF, gen))
        if self.kernel.fixed:
            # Patched kernel: the magic is restored before the lock drops.
            yield from ctx.store_field(INODE, inode, "eh_magic", EXT_MAGIC)
            yield from spin_unlock(ctx, lock)
            return 0
        yield from spin_unlock(ctx, lock)

        # Section 2 (atomicity hole between the sections): restore the magic.
        yield from spin_lock(ctx, lock)
        yield from ctx.store_field(INODE, inode, "eh_magic", EXT_MAGIC)
        yield from spin_unlock(ctx, lock)
        return 0

    def sys_fsync(self, ctx: KernelContext, fd: int) -> Generator:
        """Verify the inode checksum (the detector side of bug #2)."""
        inode = yield from self.kernel.fd_object(ctx, fd, F_REG)
        lock = INODE.addr(inode, "lock")
        yield from spin_lock(ctx, lock)
        ok = yield from self._verify_csum(ctx, inode)
        yield from spin_unlock(ctx, lock)
        return 0 if ok else EIO

    def sys_fadvise(self, ctx: KernelContext, fd: int) -> Generator:
        """generic_fadvise(): unlocked read of the device readahead (#5)."""
        yield from self.kernel.fd_object(ctx, fd, F_REG)
        blockdev = self.kernel.subsystems["blockdev"]
        ra_pages = yield from blockdev.sample_ra_pages(ctx)  # unlocked read
        return min(int(ra_pages), 0x7FFF_FFFF)

    # -- the SWAP_BOOT_LOADER atomicity violation (#2) ------------------------

    def ioctl_swap_boot_loader(self, ctx: KernelContext, fd: int, arg: int) -> Generator:
        """Swap an inode's data with the boot-loader inode.

        Faithful to the ext4 bug shape: the swap and the checksum update
        are two separate critical sections, and the checksums are computed
        from values read in the first section.
        """
        inode = yield from self.kernel.fd_object(ctx, fd, F_REG)
        boot = self.inode_addr(BOOT_INO)
        if inode == boot:
            raise SyscallError(EINVAL, "cannot swap the boot inode with itself")
        lock = INODE.addr(boot, "lock")  # buggy kernel: one lock, the boot inode's
        if self.kernel.fixed:
            # Patched kernel: both inode locks, in address order (the
            # upstream ext4 fix locks both inodes for the whole swap).
            first, second = sorted((boot, inode))
            yield from spin_lock(ctx, INODE.addr(first, "lock"))
            yield from spin_lock(ctx, INODE.addr(second, "lock"))
            data_i = yield from ctx.load_field(INODE, inode, "data")
            data_b = yield from ctx.load_field(INODE, boot, "data")
            gen_i = yield from ctx.load_field(INODE, inode, "gen")
            gen_b = yield from ctx.load_field(INODE, boot, "gen")
            yield from ctx.store_field(INODE, inode, "data", data_b)
            yield from ctx.store_field(INODE, boot, "data", data_i)
            yield from ctx.store_field(INODE, inode, "csum", ext4_csum(data_b, gen_i))
            yield from ctx.store_field(INODE, boot, "csum", ext4_csum(data_i, gen_b))
            ok_i = yield from self._verify_csum(ctx, inode)
            ok_b = yield from self._verify_csum(ctx, boot)
            yield from spin_unlock(ctx, INODE.addr(second, "lock"))
            yield from spin_unlock(ctx, INODE.addr(first, "lock"))
            return 0 if (ok_i and ok_b) else EIO

        # Section 1: swap the data words.
        yield from spin_lock(ctx, lock)
        data_i = yield from ctx.load_field(INODE, inode, "data")
        data_b = yield from ctx.load_field(INODE, boot, "data")
        gen_i = yield from ctx.load_field(INODE, inode, "gen")
        gen_b = yield from ctx.load_field(INODE, boot, "gen")
        yield from ctx.store_field(INODE, inode, "data", data_b)
        yield from ctx.store_field(INODE, boot, "data", data_i)
        if self.kernel.fixed:
            # Patched kernel: checksums updated in the same critical
            # section as the swap — no atomicity hole.
            yield from ctx.store_field(INODE, inode, "csum", ext4_csum(data_b, gen_i))
            yield from ctx.store_field(INODE, boot, "csum", ext4_csum(data_i, gen_b))
            yield from spin_unlock(ctx, lock)
        else:
            yield from spin_unlock(ctx, lock)

            # Section 2: checksums computed from the (now possibly stale)
            # values of section 1 — the atomicity hole.
            yield from spin_lock(ctx, lock)
            yield from ctx.store_field(INODE, inode, "csum", ext4_csum(data_b, gen_i))
            yield from ctx.store_field(INODE, boot, "csum", ext4_csum(data_i, gen_b))
            yield from spin_unlock(ctx, lock)

        # Section 3: ext4 re-verifies the inodes it touched.
        yield from spin_lock(ctx, lock)
        ok_i = yield from self._verify_csum(ctx, inode)
        ok_b = yield from self._verify_csum(ctx, boot)
        yield from spin_unlock(ctx, lock)
        return 0 if (ok_i and ok_b) else EIO

    def _verify_csum(self, ctx: KernelContext, inode: int) -> Generator:
        """Recompute and compare the inode checksum (caller holds the lock)."""
        data = yield from ctx.load_field(INODE, inode, "data")
        gen = yield from ctx.load_field(INODE, inode, "gen")
        csum = yield from ctx.load_field(INODE, inode, "csum")
        if csum != ext4_csum(data, gen):
            ino = yield from ctx.load_field(INODE, inode, "ino")
            yield from ctx.printk(
                f"EXT4-fs error (device sda): swap_inode_boot_loader:{ino}: "
                f"comm test: checksum invalid"
            )
            return False
        return True

    # -- configfs (#11) ----------------------------------------------------------

    def sys_mkdir(self, ctx: KernelContext, name: int) -> Generator:
        """Create a configfs directory entry.

        The dentry is linked into the parent's list *before* its inode
        pointer is initialised, with plain stores — the data race + NULL
        dereference of issue #11.
        """
        allocator = self.kernel.allocator
        dentry = yield from allocator.kzalloc(ctx, DENTRY.size)
        yield from ctx.store_field(DENTRY, dentry, "name", name & 0xFF)

        if self.kernel.fixed:
            # Patched kernel (the configfs fix): fully initialise the
            # dentry — inode included — before it becomes reachable, and
            # publish with release semantics.
            inode = yield from allocator.kzalloc(ctx, CONFIGFS_INODE.size)
            yield from ctx.store_field(CONFIGFS_INODE, inode, "mode", 0o755)
            yield from ctx.store_field(CONFIGFS_INODE, inode, "nlink", 1)
            yield from ctx.store_field(DENTRY, dentry, "inode", inode)

        root = self.configfs_root
        lock = CONFIGFS_DIR.addr(root, "lock")
        yield from spin_lock(ctx, lock)
        head = yield from ctx.load_field(CONFIGFS_DIR, root, "children")
        yield from ctx.store_field(DENTRY, dentry, "next", head, atomic=self.kernel.fixed)
        # Publish; in the buggy kernel this is a plain store with the
        # inode still unset.
        yield from ctx.store_field(
            CONFIGFS_DIR, root, "children", dentry, atomic=self.kernel.fixed
        )
        yield from spin_unlock(ctx, lock)

        if not self.kernel.fixed:
            # Too late: the dentry is already visible without an inode.
            inode = yield from allocator.kzalloc(ctx, CONFIGFS_INODE.size)
            yield from ctx.store_field(CONFIGFS_INODE, inode, "mode", 0o755)
            yield from ctx.store_field(CONFIGFS_INODE, inode, "nlink", 1)
            yield from ctx.store_field(DENTRY, dentry, "inode", inode)
        return 0

    def sys_lookup(self, ctx: KernelContext, name: int) -> Generator:
        """configfs_lookup(): lockless list walk, dereferences d->inode."""
        root = self.configfs_root
        fixed = self.kernel.fixed
        node = yield from ctx.load_field(CONFIGFS_DIR, root, "children", atomic=fixed)
        while node != 0:
            node_name = yield from ctx.load_field(DENTRY, node, "name")
            if node_name == (name & 0xFF):
                inode = yield from ctx.load_field(DENTRY, node, "inode")
                # Trusts the inode pointer: faults when mkdir has published
                # the dentry but not yet set d->inode.
                mode = yield from ctx.load_field(CONFIGFS_INODE, inode, "mode")
                fd = yield from self.kernel.fd_install(ctx, F_DIR, node)
                return fd if mode else fd
            node = yield from ctx.load_field(DENTRY, node, "next", atomic=fixed)
        raise SyscallError(ENOENT, f"configfs entry {name} not found")


IOCTL_SWAP_BOOT_LOADER = 1
