"""L2TP tunnel management — the Figure 1 order-violation bug (#12).

``connect()`` on a PX_PROTO_OL2TP socket registers a tunnel when none
with the requested id exists: it allocates the tunnel, publishes it on
the RCU-protected global tunnel list (`l2tp_tunnel_register()`), and only
*afterwards* initialises ``tunnel->sock``.  A concurrent ``connect()``
from another process can retrieve the freshly published tunnel
(`pppol2tp_connect()` → `l2tp_tunnel_get()`) while ``sock`` is still
NULL; its subsequent ``sendmsg()`` (`l2tp_xmit_core()`) then dereferences
the NULL socket and panics.

Crucially — as in the real bug — every access involved is *synchronised*:
the list is published with ``rcu_assign_pointer`` and traversed with
``rcu_dereference``, and the ``sock`` field uses WRITE_ONCE/READ_ONCE
(atomic marked accesses).  There is **no data race**; the bug is a pure
ordering violation, the class that race-detector-based tools miss.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import ENOTCONN, SyscallError
from repro.kernel.kernel import Kernel
from repro.kernel.subsystems.net import PX_PROTO_OL2TP, SOCK, NetSubsystem
from repro.kernel.sync import (
    rcu_assign_pointer,
    rcu_dereference,
    rcu_read_lock,
    rcu_read_unlock,
    spin_lock,
    spin_unlock,
)
from repro.machine.layout import Struct, field

TUNNEL = Struct(
    "l2tp_tunnel",
    field("next", WORD),
    field("tunnel_id", WORD),
    field("sock", WORD),
    field("refcount", WORD),
)

# The tunnel's kernel socket: first word is its bh lock, so locking a NULL
# tunnel->sock touches address 0 — the page-fault panic of Figure 1.
LSOCK = Struct(
    "l2tp_sock",
    field("bh_lock", 4),
    field("pad", 4),
    field("queued", WORD),
)


class L2tpSubsystem:
    """The L2TP tunnel registry, layered on the net subsystem."""

    name = "l2tp"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.list_lock = kernel.static_alloc("l2tp_tunnel_list_lock", 4)
        self.list_head = kernel.static_alloc("l2tp_tunnel_list", WORD)
        net: NetSubsystem = kernel.subsystems["net"]
        net.connect_ops[PX_PROTO_OL2TP] = self.pppol2tp_connect
        net.sendmsg_ops[PX_PROTO_OL2TP] = self.pppol2tp_sendmsg

    # -- lookup (reader side) ------------------------------------------------

    def l2tp_tunnel_get(self, ctx: KernelContext, tunnel_id: int) -> Generator:
        """Find a tunnel by id on the RCU list; returns address or 0."""
        yield from rcu_read_lock(ctx)
        node = yield from rcu_dereference(ctx, self.list_head)
        found = 0
        while node != 0:
            node_id = yield from ctx.load_field(TUNNEL, node, "tunnel_id")
            if node_id == tunnel_id:
                found = node
                break
            node = yield from ctx.load_field(TUNNEL, node, "next")
        yield from rcu_read_unlock(ctx)
        return found

    # -- registration (writer side, with the ordering bug) ---------------------

    def l2tp_tunnel_register(self, ctx: KernelContext, tunnel_id: int) -> Generator:
        """Create and publish a tunnel; ``sock`` is initialised too late."""
        allocator = self.kernel.allocator
        tunnel = yield from allocator.kzalloc(ctx, TUNNEL.size)
        yield from ctx.store_field(TUNNEL, tunnel, "tunnel_id", tunnel_id)
        yield from ctx.store_field(TUNNEL, tunnel, "refcount", 1)

        if self.kernel.fixed:
            # Patched kernel (the upstream fix, commit 69e16d01d1de):
            # the socket is created and attached *before* the tunnel
            # becomes reachable on the list.
            sk = yield from allocator.kzalloc(ctx, LSOCK.size)
            yield from ctx.store_field(TUNNEL, tunnel, "sock", sk, atomic=True)

        # list_add_rcu under the list lock: the tunnel becomes visible NOW.
        yield from spin_lock(ctx, self.list_lock)
        head = yield from ctx.load_word(self.list_head)
        yield from ctx.store_field(TUNNEL, tunnel, "next", head)
        yield from rcu_assign_pointer(ctx, self.list_head, tunnel)
        yield from spin_unlock(ctx, self.list_lock)

        if not self.kernel.fixed:
            # BUG (order violation): the socket is created and attached
            # only after publication.  WRITE_ONCE keeps it race-free, not
            # safe.
            sk = yield from allocator.kzalloc(ctx, LSOCK.size)
            yield from ctx.store_field(TUNNEL, tunnel, "sock", sk, atomic=True)
        return tunnel

    # -- socket operations -------------------------------------------------------

    def pppol2tp_connect(self, ctx: KernelContext, sock: int, arg: int) -> Generator:
        """connect(): get-or-register the tunnel, attach it to the socket."""
        tunnel_id = int(arg) % 4
        tunnel = yield from self.l2tp_tunnel_get(ctx, tunnel_id)
        if tunnel == 0:
            tunnel = yield from self.l2tp_tunnel_register(ctx, tunnel_id)
        yield from ctx.store_field(SOCK, sock, "tunnel", tunnel)
        yield from ctx.store_field(SOCK, sock, "bound", 1)
        return 0

    def pppol2tp_sendmsg(self, ctx: KernelContext, sock: int, value: int) -> Generator:
        """sendmsg() → l2tp_xmit_core(): dereferences tunnel->sock."""
        tunnel = yield from ctx.load_field(SOCK, sock, "tunnel")
        if tunnel == 0:
            raise SyscallError(ENOTCONN, "socket has no tunnel")
        # READ_ONCE(tunnel->sock): synchronised, but possibly still NULL.
        sk = yield from ctx.load_field(TUNNEL, tunnel, "sock", atomic=True)
        # bh_lock_sock(sk): first touch of the socket.  When sk == 0 this
        # accesses address 0 — "BUG: kernel NULL pointer dereference".
        yield from spin_lock(ctx, LSOCK.addr(sk, "bh_lock"))
        queued = yield from ctx.load_field(LSOCK, sk, "queued")
        yield from ctx.store_field(LSOCK, sk, "queued", queued + 1)
        yield from spin_unlock(ctx, LSOCK.addr(sk, "bh_lock"))
        return int(value) & 0x7FFF
