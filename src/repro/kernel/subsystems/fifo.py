"""Named FIFOs: a correctly synchronised concurrency surface.

Not every kernel path is buggy; PMC analysis must cope with heavily
shared but *properly locked* state (which produces plenty of PMCs that
can never manifest as bugs — part of why the paper's precision is 36 %,
not 100 %).  The FIFO layer provides exactly that: global ring buffers
shared across processes, every access under the FIFO lock, with
head/tail counters whose values differ between any two tests that touch
them.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import EAGAIN_E, SyscallError
from repro.kernel.kernel import Kernel
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

NFIFOS = 2
RING_SLOTS = 4

FIFO = Struct(
    "fifo",
    field("lock", 4),
    field("pad", 4),
    field("head", WORD),  # next write position (monotonic)
    field("tail", WORD),  # next read position (monotonic)
    *[field(f"slot_{i}", WORD) for i in range(RING_SLOTS)],
)

F_FIFO = 7


class FifoSubsystem:
    """Two global named FIFOs with locked ring buffers."""

    name = "fifo"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.fifos = kernel.static_alloc("fifo_table", FIFO.size * NFIFOS)
        kernel.register_syscall("fifo_open", self.sys_fifo_open)
        kernel.register_syscall("fifo_write", self.sys_fifo_write)
        kernel.register_syscall("fifo_read", self.sys_fifo_read)

    def _fifo_addr(self, index: int) -> int:
        return self.fifos + (index % NFIFOS) * FIFO.size

    def sys_fifo_open(self, ctx: KernelContext, index: int) -> Generator:
        """Open the global FIFO ``index``; returns an fd."""
        fifo = self._fifo_addr(int(index))
        fd = yield from self.kernel.fd_install(ctx, F_FIFO, fifo)
        return fd

    def sys_fifo_write(self, ctx: KernelContext, fd: int, value: int) -> Generator:
        """Append one word to the ring (locked); EAGAIN when full."""
        fifo = yield from self.kernel.fd_object(ctx, fd, F_FIFO)
        lock = FIFO.addr(fifo, "lock")
        yield from spin_lock(ctx, lock)
        head = yield from ctx.load_field(FIFO, fifo, "head")
        tail = yield from ctx.load_field(FIFO, fifo, "tail")
        if head - tail >= RING_SLOTS:
            yield from spin_unlock(ctx, lock)
            raise SyscallError(EAGAIN_E, "fifo full")
        slot = FIFO.addr(fifo, f"slot_{head % RING_SLOTS}")
        yield from ctx.store_word(slot, int(value) & 0xFFFF_FFFF)
        yield from ctx.store_field(FIFO, fifo, "head", head + 1)
        yield from spin_unlock(ctx, lock)
        return int(head) & 0x7FFF

    def sys_fifo_read(self, ctx: KernelContext, fd: int) -> Generator:
        """Pop one word from the ring (locked); EAGAIN when empty."""
        fifo = yield from self.kernel.fd_object(ctx, fd, F_FIFO)
        lock = FIFO.addr(fifo, "lock")
        yield from spin_lock(ctx, lock)
        head = yield from ctx.load_field(FIFO, fifo, "head")
        tail = yield from ctx.load_field(FIFO, fifo, "tail")
        if tail >= head:
            yield from spin_unlock(ctx, lock)
            raise SyscallError(EAGAIN_E, "fifo empty")
        slot = FIFO.addr(fifo, f"slot_{tail % RING_SLOTS}")
        value = yield from ctx.load_word(slot)
        yield from ctx.store_field(FIFO, fifo, "tail", tail + 1)
        yield from spin_unlock(ctx, lock)
        return int(value) & 0x7FFF_FFFF
