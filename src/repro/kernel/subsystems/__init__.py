"""Kernel subsystems.

``ALL_SUBSYSTEMS`` lists every subsystem class in deterministic boot
order.  Order matters twice: static allocation addresses depend on it
(and must be identical across boots for PMC analysis to work), and l2tp
registers protocol handlers with the already-booted net subsystem.
"""

from repro.kernel.subsystems.blockdev import BlockdevSubsystem
from repro.kernel.subsystems.fifo import FifoSubsystem
from repro.kernel.subsystems.fs import FsSubsystem
from repro.kernel.subsystems.ipc import IpcSubsystem
from repro.kernel.subsystems.l2tp import L2tpSubsystem
from repro.kernel.subsystems.net import NetSubsystem
from repro.kernel.subsystems.procinfo import ProcInfoSubsystem
from repro.kernel.subsystems.sem import SemSubsystem
from repro.kernel.subsystems.sound import SoundSubsystem
from repro.kernel.subsystems.tty import TtySubsystem

ALL_SUBSYSTEMS = (
    BlockdevSubsystem,
    FsSubsystem,
    NetSubsystem,
    L2tpSubsystem,
    IpcSubsystem,
    SemSubsystem,
    FifoSubsystem,
    TtySubsystem,
    SoundSubsystem,
    ProcInfoSubsystem,
)

__all__ = [
    "ALL_SUBSYSTEMS",
    "BlockdevSubsystem",
    "FifoSubsystem",
    "FsSubsystem",
    "IpcSubsystem",
    "L2tpSubsystem",
    "NetSubsystem",
    "ProcInfoSubsystem",
    "SemSubsystem",
    "SoundSubsystem",
    "TtySubsystem",
]
