"""Block device layer.

Planted bugs (writer sides; the reader sides live in
:mod:`repro.kernel.subsystems.fs`):

* **#6 — data race ``do_mpage_readpage()`` / ``set_blocksize()``:** the
  ``SET_BLOCKSIZE`` ioctl rewrites the device blocksize under the device
  lock, transiently storing 0 while the page cache is invalidated.
  Readers sample the blocksize without the lock.

* **#4 — "Blk_update_request: I/O error":** a reader that observes the
  transient 0 (or two different sizes across one request) fails the I/O —
  the console-visible atomicity violation.

* **#5 — data race ``blkdev_ioctl()`` / ``generic_fadvise()``:** the
  ``BLKRASET`` ioctl writes the readahead setting under the device lock
  while ``fadvise()`` reads it with no lock at all.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.context import KernelContext, WORD
from repro.kernel.errors import EINVAL, SyscallError
from repro.kernel.kernel import Kernel
from repro.kernel.sync import spin_lock, spin_unlock
from repro.machine.layout import Struct, field

BDEV = Struct(
    "block_device",
    field("lock", 4),
    field("pad", 4),
    field("blocksize", WORD),
    field("ra_pages", WORD),
    field("nr_sectors", WORD),
)

IOCTL_SET_BLOCKSIZE = 2
IOCTL_BLKRASET = 3

VALID_BLOCKSIZES = (512, 1024, 2048, 4096)


class BlockdevSubsystem:
    """One system block device ("sda")."""

    name = "blockdev"

    def boot(self, kernel: Kernel) -> None:
        self.kernel = kernel
        memory = kernel.machine.memory
        self.bdev = kernel.static_alloc("bdev_sda", BDEV.size)
        memory.write_int(BDEV.addr(self.bdev, "blocksize"), WORD, 4096)
        memory.write_int(BDEV.addr(self.bdev, "ra_pages"), WORD, 32)
        memory.write_int(BDEV.addr(self.bdev, "nr_sectors"), WORD, 1 << 20)
        kernel.register_ioctl(IOCTL_SET_BLOCKSIZE, self.ioctl_set_blocksize)
        kernel.register_ioctl(IOCTL_BLKRASET, self.ioctl_blkraset)

    # -- unlocked reader-side samplers used by the fs layer --------------------

    def sample_blocksize(self, ctx: KernelContext) -> Generator:
        """do_mpage_readpage()-style blocksize read.

        Buggy kernel: plain unlocked load (bug #6, and the transient-zero
        window of bug #4).  Patched kernel: read under the device lock.
        """
        if self.kernel.fixed:
            lock = BDEV.addr(self.bdev, "lock")
            yield from spin_lock(ctx, lock)
            bs = yield from ctx.load_field(BDEV, self.bdev, "blocksize")
            yield from spin_unlock(ctx, lock)
            return bs
        bs = yield from ctx.load_field(BDEV, self.bdev, "blocksize")
        return bs

    def sample_ra_pages(self, ctx: KernelContext) -> Generator:
        """generic_fadvise()-style readahead read (bug #5 when unlocked)."""
        if self.kernel.fixed:
            lock = BDEV.addr(self.bdev, "lock")
            yield from spin_lock(ctx, lock)
            ra = yield from ctx.load_field(BDEV, self.bdev, "ra_pages")
            yield from spin_unlock(ctx, lock)
            return ra
        ra = yield from ctx.load_field(BDEV, self.bdev, "ra_pages")
        return ra

    # -- ioctls -----------------------------------------------------------------

    def ioctl_set_blocksize(self, ctx: KernelContext, fd: int, arg: int) -> Generator:
        """set_blocksize(): locked, but with a transient invalid window."""
        yield from self.kernel.fd_file(ctx, fd)
        size = VALID_BLOCKSIZES[int(arg) % len(VALID_BLOCKSIZES)]
        lock = BDEV.addr(self.bdev, "lock")
        yield from spin_lock(ctx, lock)
        # Invalidate while the (simulated) page cache is being dropped:
        # the window a racing unlocked reader can observe.
        yield from ctx.store_field(BDEV, self.bdev, "blocksize", 0)
        sectors = yield from ctx.load_field(BDEV, self.bdev, "nr_sectors")
        yield from ctx.store_field(BDEV, self.bdev, "nr_sectors", sectors)
        yield from ctx.store_field(BDEV, self.bdev, "blocksize", size)
        yield from spin_unlock(ctx, lock)
        return 0

    def ioctl_blkraset(self, ctx: KernelContext, fd: int, arg: int) -> Generator:
        """blkdev_ioctl(BLKRASET): locked write of the readahead setting."""
        yield from self.kernel.fd_file(ctx, fd)
        if arg < 0:
            raise SyscallError(EINVAL, "negative readahead")
        lock = BDEV.addr(self.bdev, "lock")
        yield from spin_lock(ctx, lock)
        yield from ctx.store_field(BDEV, self.bdev, "ra_pages", int(arg) & 0xFFFF)
        yield from spin_unlock(ctx, lock)
        return 0
