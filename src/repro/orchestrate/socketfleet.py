"""Socket fleet: the wire format over TCP, workers on any machine.

The ROADMAP's remaining fleet extension: the envelopes of
:mod:`repro.orchestrate.fleet` framed as length-prefixed JSON over a TCP
connection, so Stage-4 workers no longer have to be children of the
coordinator process.  ``--fleet sockets`` starts a
:class:`SocketTransport` under the ordinary
:class:`~repro.orchestrate.fleet.FleetCoordinator`; workers either
auto-spawn locally (the default, a drop-in for ``--fleet processes``) or
connect from anywhere with ``repro fleet-worker --connect HOST:PORT``.

Framing: every frame is a 4-byte big-endian length followed by that many
bytes of UTF-8 JSON with a ``"kind"`` discriminator.

Worker → coordinator: ``hello`` (token + wire version, the handshake),
``heartbeat``, ``result`` (a ResultEnvelope), ``boot_failed``.
Coordinator → worker: ``welcome`` (assigned worker id + generation +
the full :class:`~repro.orchestrate.fleet.WorkerSpec`), ``reject``,
``task`` (a TaskEnvelope), ``shutdown``.

Handshake: a connecting worker sends ``hello``; the coordinator verifies
the shared token and the wire version (a mismatched build is *rejected*,
and the worker surfaces :class:`~repro.orchestrate.fleet.WireFormatError`
— never a mis-decoded envelope), then assigns the connection to the
oldest worker slot awaiting one and answers ``welcome``.  Everything a
worker needs — campaign config, setup program, fault injection,
heartbeat pacing — travels in the welcome frame, so a bare
``repro fleet-worker`` invocation needs only the endpoint and the token.

Reconnect-as-fresh-worker: connections carry no durable identity.  A
worker that loses its link (or is killed and restarted by an operator)
simply handshakes again and claims whatever slot is waiting — typically
the slot its own death vacated, respawned at a higher generation.  Stale
results from the old incarnation are discarded by the coordinator's
generation check.  Worker death is detected purely by missed heartbeats;
an EOF on the connection is *not* treated as a death report (a dead link
and a dead worker are indistinguishable here, and the heartbeat deadline
already covers both).
"""

from __future__ import annotations

import dataclasses
import json
import os
import secrets
import signal
import socket
import struct
import threading
import time
import traceback
from collections import deque
from typing import Any, Dict, Optional, Tuple

import multiprocessing as mp
import queue as stdqueue

from repro.orchestrate.fleet import (
    WIRE_VERSION,
    FleetFault,
    HeartbeatEnvelope,
    ResultEnvelope,
    TaskEnvelope,
    WireFormatError,
    WorkerSpec,
    _BootFailed,
    _boot_worker,
    _check_version,
    _execute_envelope,
    start_heartbeat,
)
from repro.orchestrate.persistence import program_from_obj, program_to_obj

# -- framing -----------------------------------------------------------------------

_LEN = struct.Struct(">I")

#: Upper bound on one frame's payload; a length prefix beyond this is a
#: corrupt or hostile stream, not a big result.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_frame(sock: socket.socket, obj: Dict, lock: Optional[threading.Lock] = None) -> None:
    """Write one length-prefixed JSON frame (atomically under ``lock``)."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    payload = _LEN.pack(len(data)) + data
    if lock is not None:
        with lock:
            sock.sendall(payload)
    else:
        sock.sendall(payload)


def _recv_exact(sock: socket.socket, nbytes: int) -> Optional[bytes]:
    buf = bytearray()
    while len(buf) < nbytes:
        chunk = sock.recv(nbytes - len(buf))
        if not chunk:
            return None
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """Read one frame; ``None`` on a clean EOF mid-boundary."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES} bytes"
        )
    data = _recv_exact(sock, length)
    if data is None:
        return None
    return json.loads(data.decode("utf-8"))


# -- JSON codecs for the envelopes -------------------------------------------------


def _from_fields(cls, obj: Dict, what: str):
    known = set(cls.__dataclass_fields__)
    unknown = set(obj) - known
    if unknown:
        raise WireFormatError(f"{what} carries unknown fields {sorted(unknown)}")
    return cls(**obj)


def task_envelope_to_obj(envelope: TaskEnvelope) -> Dict:
    return dataclasses.asdict(envelope)


def task_envelope_from_obj(obj: Dict) -> TaskEnvelope:
    return _from_fields(TaskEnvelope, obj, "task frame")


def result_envelope_to_obj(envelope: ResultEnvelope) -> Dict:
    return dataclasses.asdict(envelope)


def result_envelope_from_obj(obj: Dict) -> ResultEnvelope:
    return _from_fields(ResultEnvelope, obj, "result frame")


def config_to_obj(config) -> Dict:
    """A SnowboardConfig as plain JSON data (setup program included)."""
    out: Dict = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if field.name == "setup_program" and value is not None:
            value = program_to_obj(value)
        out[field.name] = value
    return out


def config_from_obj(obj: Dict):
    from repro.orchestrate.pipeline import SnowboardConfig

    obj = dict(obj)
    known = {f.name for f in dataclasses.fields(SnowboardConfig)}
    unknown = set(obj) - known
    if unknown:
        raise WireFormatError(
            f"welcome config carries unknown fields {sorted(unknown)}"
        )
    if obj.get("setup_program") is not None:
        obj["setup_program"] = program_from_obj(obj["setup_program"])
    return SnowboardConfig(**obj)


def worker_spec_to_obj(spec: WorkerSpec) -> Dict:
    return {
        "config": config_to_obj(spec.config),
        "obs_enabled": spec.obs_enabled,
        "obs_epoch": spec.obs_epoch,
        "fault": dataclasses.asdict(spec.fault) if spec.fault is not None else None,
        "heartbeat_interval": spec.heartbeat_interval,
    }


def worker_spec_from_obj(obj: Dict) -> WorkerSpec:
    fault = obj.get("fault")
    return WorkerSpec(
        config=config_from_obj(obj["config"]),
        obs_enabled=bool(obj.get("obs_enabled", False)),
        obs_epoch=float(obj.get("obs_epoch", 0.0)),
        fault=FleetFault(**fault) if fault is not None else None,
        heartbeat_interval=float(obj.get("heartbeat_interval", 0.5)),
    )


# -- coordinator side: the transport -----------------------------------------------


class _SocketHandle:
    """One worker slot generation awaiting — or owning — a connection."""

    def __init__(self, worker_id: int, generation: int):
        self.worker_id = worker_id
        self.generation = generation
        self.conn: Optional[socket.socket] = None
        self.process = None  # auto-spawned local worker, if any
        self.cancelled = False
        self._send_lock = threading.Lock()

    def attach(self, conn: socket.socket) -> bool:
        if self.cancelled:
            return False
        self.conn = conn
        return True

    def ready(self) -> bool:
        return self.conn is not None and not self.cancelled

    def send(self, envelope: TaskEnvelope) -> None:
        conn = self.conn
        if conn is None:
            return
        try:
            send_frame(
                conn,
                {"kind": "task", "envelope": task_envelope_to_obj(envelope)},
                lock=self._send_lock,
            )
        except OSError:
            pass  # the missed-heartbeat path reclaims the lease

    def stop(self) -> None:
        conn = self.conn
        if conn is not None:
            try:
                send_frame(conn, {"kind": "shutdown"}, lock=self._send_lock)
            except OSError:
                pass

    def kill(self) -> None:
        self.cancelled = True
        conn, self.conn = self.conn, None
        if conn is not None:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - double close
                pass
        if self.process is not None:
            self.process.kill()

    def join(self, timeout: float = 5.0) -> None:
        if self.process is not None:
            self.process.join(timeout=timeout)


class SocketTransport:
    """TCP transport: listen, handshake, frame envelopes both ways.

    ``spawn_workers=True`` (the default) launches one local
    ``socket_worker_main`` process per spawned slot — ``--fleet sockets``
    is then self-contained, exercising the full network path on
    localhost.  With ``spawn_workers=False`` the transport only listens:
    slots wait for external ``repro fleet-worker`` connections, and a
    slot whose worker never dials in is respawned by the coordinator
    when its boot grace expires.

    Single-use, like every transport: :meth:`close` releases the
    listening port (important for fixed-port multi-round campaigns,
    where each round binds the same endpoint afresh and external
    workers reconnect as fresh workers).
    """

    def __init__(
        self,
        spec: WorkerSpec,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        spawn_workers: bool = True,
        start_method: str = "spawn",
        handshake_timeout: float = 10.0,
    ):
        self.spec = spec
        self.token = token or secrets.token_hex(16)
        self.spawn_workers = spawn_workers
        self.handshake_timeout = handshake_timeout
        self._start_method = start_method
        self._listener = socket.create_server((host, port))
        self.host = host
        self.port = self._listener.getsockname()[1]
        self._inbox: "stdqueue.Queue" = stdqueue.Queue()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._waiting: "deque[_SocketHandle]" = deque()
        self._handles: list = []
        self._procs: Dict[int, Any] = {}  # pid -> auto-spawned local worker
        self._closed = False
        threading.Thread(target=self._accept_loop, daemon=True).start()

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect_host(self) -> str:
        return "127.0.0.1" if self.host in ("", "0.0.0.0", "::") else self.host

    # -- Transport protocol ----------------------------------------------------

    def spawn(self, worker_id: int, generation: int) -> _SocketHandle:
        handle = _SocketHandle(worker_id, generation)
        with self._available:
            if self._closed:
                raise RuntimeError("spawn on a closed SocketTransport")
            self._waiting.append(handle)
            self._handles.append(handle)
            self._available.notify()
        if self.spawn_workers:
            ctx = mp.get_context(self._start_method)
            process = ctx.Process(
                target=socket_worker_main,
                args=(self._connect_host(), self.port, self.token),
                kwargs={"reconnect": False},
                daemon=True,
            )
            process.start()
            # NOT attached to this handle: slots are claimed in connect
            # order, so which process ends up serving which slot is
            # decided at handshake time (the hello frame carries the pid).
            with self._available:
                self._procs[process.pid] = process
        return handle

    def recv(self, timeout: float) -> Optional[Any]:
        try:
            if timeout <= 0:
                return self._inbox.get_nowait()
            return self._inbox.get(timeout=timeout)
        except stdqueue.Empty:
            return None

    def close(self) -> None:
        with self._available:
            if self._closed:
                return
            self._closed = True
            self._waiting.clear()
            self._available.notify_all()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        for handle in self._handles:
            handle.kill()
        for handle in self._handles:
            handle.join(timeout=5.0)
        with self._available:
            leftover = list(self._procs.values())
            self._procs.clear()
        for process in leftover:  # spawned but never completed a handshake
            process.kill()
        for process in leftover:
            process.join(timeout=5.0)

    # -- accept / handshake / reader threads ------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._handshake, args=(conn,), daemon=True
            ).start()

    def _reject(self, conn: socket.socket, code: str, error: str) -> None:
        try:
            send_frame(conn, {"kind": "reject", "code": code, "error": error})
        except OSError:
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass

    def _claim_handle(self, deadline: float) -> Optional[_SocketHandle]:
        """The oldest worker slot awaiting a connection (blocks until one
        appears, the deadline passes, or the transport closes)."""
        with self._available:
            while True:
                while self._waiting:
                    handle = self._waiting.popleft()
                    if not handle.cancelled:
                        return handle
                if self._closed:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._available.wait(timeout=remaining):
                    return None

    def _handshake(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(self.handshake_timeout)
            hello = recv_frame(conn)
        except (OSError, ValueError, WireFormatError):
            self._reject(conn, "malformed", "unreadable hello frame")
            return
        if not isinstance(hello, dict) or hello.get("kind") != "hello":
            self._reject(conn, "malformed", "expected a hello frame")
            return
        if hello.get("token") != self.token:
            self._reject(conn, "token", "bad or missing fleet token")
            return
        advertised = hello.get("wire_version")
        if advertised != WIRE_VERSION:
            self._reject(
                conn,
                "wire_version",
                f"worker speaks wire version {advertised}, "
                f"this coordinator speaks {WIRE_VERSION}",
            )
            return
        handle = self._claim_handle(time.monotonic() + self.handshake_timeout)
        if handle is None:
            self._reject(conn, "no_slot", "no worker slot awaiting a connection")
            return
        try:
            send_frame(
                conn,
                {
                    "kind": "welcome",
                    "worker_id": handle.worker_id,
                    "generation": handle.generation,
                    "wire_version": WIRE_VERSION,
                    "spec": worker_spec_to_obj(self.spec),
                },
            )
            conn.settimeout(None)
        except OSError:
            conn.close()
            return  # slot self-heals: its boot grace expires and it respawns
        if not handle.attach(conn):
            conn.close()
            return  # killed between claim and attach
        pid = hello.get("pid")
        if isinstance(pid, int):
            # Pair the slot with the auto-spawned local process that
            # actually dialed in (if it is one of ours), so handle.kill()
            # reaps the right process.  External workers' pids are
            # meaningless here and simply miss the dict.
            with self._available:
                handle.process = self._procs.pop(pid, None)
        # The completed handshake is the first liveness signal.
        self._inbox.put(HeartbeatEnvelope(handle.worker_id, handle.generation))
        threading.Thread(
            target=self._reader, args=(handle, conn), daemon=True
        ).start()

    def _reader(self, handle: _SocketHandle, conn: socket.socket) -> None:
        worker_id, generation = handle.worker_id, handle.generation
        while True:
            try:
                frame = recv_frame(conn)
            except (OSError, ValueError, WireFormatError):
                return
            if frame is None:
                return  # EOF: death (if any) surfaces via missed heartbeat
            kind = frame.get("kind")
            if kind == "heartbeat":
                self._inbox.put(HeartbeatEnvelope(worker_id, generation))
            elif kind == "result":
                try:
                    envelope = result_envelope_from_obj(frame["envelope"])
                except (KeyError, TypeError, WireFormatError):
                    continue  # malformed: the lease path will recover the task
                # The handshake assignment is authoritative — stamp it over
                # whatever the worker believes its identity is.
                self._inbox.put(
                    dataclasses.replace(
                        envelope, worker_id=worker_id, generation=generation
                    )
                )
            elif kind == "boot_failed":
                self._inbox.put(
                    _BootFailed(
                        worker_id,
                        generation,
                        str(frame.get("error_type", "")),
                        str(frame.get("message", "")),
                        str(frame.get("traceback", "")),
                    )
                )
            # unknown kinds within a matching wire version are ignored


# -- worker side -------------------------------------------------------------------


def connect_worker(
    host: str,
    port: int,
    token: str,
    wire_version: Optional[int] = None,
    timeout: float = 10.0,
) -> Tuple[socket.socket, Dict]:
    """Dial a coordinator and handshake; returns ``(socket, welcome)``.

    Raises :class:`WireFormatError` when the coordinator rejects the
    advertised wire version (or speaks a different one itself),
    ``PermissionError`` on a token mismatch, and ``ConnectionError`` for
    anything else that cuts the handshake short.  ``wire_version``
    overrides the advertised version — the forward-compat tests dial in
    as a build from the future.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        send_frame(
            sock,
            {
                "kind": "hello",
                "token": token,
                "wire_version": WIRE_VERSION if wire_version is None else wire_version,
                # Lets a coordinator that auto-spawned this worker pair the
                # claimed slot with the right local process: slots are
                # claimed in connect order, not spawn order, so killing
                # "the process spawned with this slot" would murder
                # whichever innocent worker dialed in first.
                "pid": os.getpid(),
            },
        )
        reply = recv_frame(sock)
        if reply is None:
            raise ConnectionError("coordinator closed during handshake")
        if reply.get("kind") == "reject":
            code = reply.get("code", "")
            error = str(reply.get("error", "rejected"))
            if code == "wire_version":
                raise WireFormatError(error)
            if code == "token":
                raise PermissionError(error)
            raise ConnectionError(f"handshake rejected: {error}")
        if reply.get("kind") != "welcome":
            raise ConnectionError(f"unexpected handshake reply {reply.get('kind')!r}")
        _check_version(int(reply.get("wire_version", -1)), "welcome frame")
        sock.settimeout(None)
        return sock, reply
    except BaseException:
        sock.close()
        raise


def _serve_connection(sock: socket.socket, welcome: Dict) -> bool:
    """Serve one authenticated connection until shutdown or loss.

    Returns True on a clean shutdown (or terminal boot failure — no
    point redialing a deterministic crash), False when the link dropped
    and the caller may reconnect as a fresh worker.
    """
    worker_id = int(welcome["worker_id"])
    generation = int(welcome["generation"])
    spec = worker_spec_from_obj(welcome["spec"])
    send_lock = threading.Lock()
    stop_beats = start_heartbeat(
        lambda: send_frame(sock, {"kind": "heartbeat"}, lock=send_lock),
        spec.heartbeat_interval,
    )
    fault = spec.fault
    try:
        if fault is not None and fault.kill_at_boot and fault.claim():
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            executor = _boot_worker(spec)
        except Exception as error:  # noqa: BLE001 - boot crash -> coordinator call
            try:
                send_frame(
                    sock,
                    {
                        "kind": "boot_failed",
                        "error_type": type(error).__name__,
                        "message": str(error),
                        "traceback": traceback.format_exc(),
                    },
                    lock=send_lock,
                )
            except OSError:
                pass
            return True
        while True:
            try:
                frame = recv_frame(sock)
            except OSError:
                return False
            if frame is None:
                return False
            kind = frame.get("kind")
            if kind == "shutdown":
                return True
            if kind != "task":
                continue
            envelope = task_envelope_from_obj(frame["envelope"])
            if (
                fault is not None
                and envelope.task_id == fault.kill_task_id
                and fault.claim()
            ):
                os.kill(os.getpid(), signal.SIGKILL)
            if (
                fault is not None
                and envelope.task_id == fault.hang_task_id
                and fault.claim()
            ):
                time.sleep(3600.0)
            result = _execute_envelope(
                executor, spec, worker_id, envelope, generation
            )
            try:
                send_frame(
                    sock,
                    {"kind": "result", "envelope": result_envelope_to_obj(result)},
                    lock=send_lock,
                )
            except OSError:
                return False
    finally:
        stop_beats.set()


def socket_worker_main(
    host: str,
    port: int,
    token: str,
    reconnect: bool = True,
    connect_deadline: float = 20.0,
) -> int:
    """Entry point of one socket worker (``repro fleet-worker``).

    Dials the coordinator (retrying refused connections until
    ``connect_deadline`` — the coordinator may still be binding), serves
    the connection, and — when ``reconnect`` is set — redials after a
    lost link to claim a fresh slot.  Returns a process exit status.
    """
    while True:
        sock = welcome = None
        deadline = time.monotonic() + connect_deadline
        while True:
            try:
                sock, welcome = connect_worker(host, port, token)
                break
            except (WireFormatError, PermissionError):
                raise  # incompatible build / wrong token: retrying cannot help
            except OSError:
                if time.monotonic() >= deadline:
                    return 1  # coordinator gone (campaign over, most likely)
                time.sleep(0.2)
        try:
            clean = _serve_connection(sock, welcome)
        finally:
            sock.close()
        if clean or not reconnect:
            return 0
