"""Rendered reports: the paper's tables as text/markdown.

Turns campaign results into the shapes a reader of the paper expects —
a Table 2-style bug inventory and a Table 3-style strategy comparison —
in plain text (for terminals and benches) or markdown (for docs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.detect.catalog import BUG_CATALOG
from repro.orchestrate.results import CampaignResult


def render_table2(
    found: Mapping[str, Tuple[str, int]],
    markdown: bool = False,
) -> str:
    """Render a Table 2-style inventory.

    ``found`` maps bug id -> (method that found it, tests executed when
    first found).  Bugs in the catalog but not in ``found`` are listed as
    missing, mirroring how the paper tracks unconfirmed reports.
    """
    header = ["ID", "Paper#", "Type", "Triage", "Subsystem", "Found by", "@test", "Summary"]
    rows: List[List[str]] = []
    for spec in BUG_CATALOG:
        if spec.id in found:
            method, at = found[spec.id]
            found_by, at_text = method, str(at)
        else:
            found_by, at_text = "-", "-"
        rows.append(
            [
                spec.id,
                f"#{spec.paper_id}",
                spec.bug_type,
                spec.triage.value,
                spec.subsystem,
                found_by,
                at_text,
                spec.summary,
            ]
        )
    return _render(header, rows, markdown)


def render_table3(
    campaigns: Sequence[CampaignResult],
    markdown: bool = False,
) -> str:
    """Render a Table 3-style strategy comparison."""
    header = ["Method", "Exemplar PMCs", "Tested", "Trials", "Accuracy", "Issues found (@tests)"]
    rows = []
    for campaign in campaigns:
        bugs = campaign.bugs_found()
        issues = ", ".join(f"{b} (@{at})" for b, at in sorted(bugs.items())) or "-"
        rows.append(
            [
                campaign.strategy,
                str(campaign.exemplar_pmcs) if campaign.exemplar_pmcs else "NA",
                str(campaign.tested_pmcs),
                str(campaign.trials),
                f"{campaign.accuracy:.0%}" if campaign.tested_pmcs else "-",
                issues,
            ]
        )
    return _render(header, rows, markdown)


def render_throughput(
    campaigns: Sequence[CampaignResult],
    markdown: bool = False,
) -> str:
    """Render a §5.4-style execution-throughput comparison.

    The simulator-relative analogue of the paper's executions/minute
    table (193.8/min for Snowboard): per campaign, wall-clock trial
    throughput, mean snapshot pages copied back per trial (the reset
    cost dirty-page tracking shrinks), the fraction of wall time spent
    restoring, and the fleet health counters (task failures, task
    retries, worker respawns).
    """
    header = [
        "Method", "Workers", "Trials", "Exec/min", "Pages/trial", "Restore",
        "Failures", "Retries", "Respawns",
    ]
    rows = []
    for campaign in campaigns:
        rows.append(
            [
                campaign.strategy,
                str(campaign.workers),
                str(campaign.trials),
                f"{campaign.executions_per_minute:.0f}",
                f"{campaign.pages_per_trial:.1f}",
                f"{campaign.restore_fraction:.1%}",
                str(campaign.task_failures),
                str(campaign.task_retries),
                str(campaign.worker_respawns),
            ]
        )
    return _render(header, rows, markdown)


def render_funnel(rows: Sequence[List[str]], markdown: bool = False) -> str:
    """Render the Stage-1→4 funnel table of ``repro stats``.

    ``rows`` come from :func:`repro.obs.stats.funnel_rows`: (stage,
    metric, value) triples in funnel order.
    """
    return _render(["Stage", "Metric", "Value"], list(rows), markdown)


def render_rounds(rows: Sequence[List[str]], markdown: bool = False) -> str:
    """Render the per-round funnel of a round-based campaign trace.

    ``rows`` come from :func:`repro.obs.stats.round_rows`: one row per
    round with that round's deltas (tests, trials, corpus growth, new
    profiles, new PMCs, new bugs).
    """
    header = [
        "Round", "Tests", "Trials", "New corpus", "New profiles",
        "New PMCs", "New bugs",
    ]
    return _render(header, list(rows), markdown)


def render_fleet_workers(
    rows: Sequence[List[str]], markdown: bool = False
) -> str:
    """Render the per-worker fleet health table of a parallel campaign.

    ``rows`` come from :func:`repro.obs.stats.fleet_worker_rows`: one
    row per worker id with tasks completed, retries charged, respawns,
    and heartbeat deadlines missed (summed across rounds when the trace
    is round-based).
    """
    header = ["Worker", "Tasks", "Retries", "Respawns", "Missed heartbeats"]
    return _render(header, list(rows), markdown)


def render_store_tiers(
    tiers: Mapping[str, float], markdown: bool = False
) -> str:
    """Render the hot/cold tier traffic of the out-of-core PMC store.

    ``tiers`` comes from :func:`repro.obs.stats.store_tiers`: bucket
    probes served from the in-memory hot tier vs reconstructed from
    segment files, the resulting hot-tier hit rate, and how many buckets
    were evicted to disk.
    """
    header = ["Hot hits", "Cold probes", "Hot rate", "Evictions"]
    rows = [
        [
            f"{int(tiers.get('hot_hits', 0)):,}",
            f"{int(tiers.get('cold_probes', 0)):,}",
            f"{tiers.get('hot_rate', 0.0):.1%}",
            f"{int(tiers.get('evictions', 0)):,}",
        ]
    ]
    return _render(header, rows, markdown)


def render_stage_times(rows: Sequence[List[str]], markdown: bool = False) -> str:
    """Render the per-span wall-time breakdown of ``repro stats``."""
    header = ["Span", "Count", "Total s", "Mean ms", "Max ms", "Share"]
    return _render(header, list(rows), markdown)


def render_trial_latency(
    latency: Mapping[str, float], markdown: bool = False
) -> str:
    """Render the trial-latency percentile row of ``repro stats``."""
    header = ["Trials", "p50 ms", "p95 ms", "Mean ms", "Max ms"]
    rows = [
        [
            str(int(latency.get("count", 0))),
            f"{latency.get('p50_ms', 0.0):.2f}",
            f"{latency.get('p95_ms', 0.0):.2f}",
            f"{latency.get('mean_ms', 0.0):.2f}",
            f"{latency.get('max_ms', 0.0):.2f}",
        ]
    ]
    return _render(header, rows, markdown)


def merge_found(
    campaigns: Iterable[CampaignResult],
) -> Dict[str, Tuple[str, int]]:
    """Merge campaigns into the first-finder map render_table2 expects."""
    found: Dict[str, Tuple[str, int]] = {}
    for campaign in campaigns:
        for bug_id, at in campaign.bugs_found().items():
            if bug_id not in found or at < found[bug_id][1]:
                found[bug_id] = (campaign.strategy, at)
    return found


def _render(header: List[str], rows: List[List[str]], markdown: bool) -> str:
    if markdown:
        lines = ["| " + " | ".join(header) + " |"]
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header)]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*row))
    return "\n".join(lines)
