"""Persistence: serialise tests, campaign results and repro packages.

A **reproduction package** is the artifact Snowboard hands a developer:
the two sequential tests, the recorded switch points of the trial that
exposed the bug, and the expected failure output.  Replaying the package
on a freshly booted kernel reproduces the bug deterministically
(section 6: "Snowboard has the benefit of providing a reliable
environment to replicate bugs once they are found").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.fuzz.prog import Call, Program, Res
from repro.sched.executor import ExecutionResult, Executor


# -- program (de)serialisation --------------------------------------------------


def program_to_obj(program: Program) -> List[Dict]:
    """A JSON-ready representation of a program."""
    calls = []
    for call in program.calls:
        args = []
        for arg in call.args:
            if isinstance(arg, Res):
                args.append({"res": arg.index})
            else:
                args.append(int(arg))
        calls.append({"name": call.name, "args": args})
    return calls


def program_from_obj(obj: List[Dict]) -> Program:
    """Rebuild a program from :func:`program_to_obj` output."""
    calls = []
    for call in obj:
        args = []
        for arg in call["args"]:
            if isinstance(arg, dict) and "res" in arg:
                args.append(Res(int(arg["res"])))
            else:
                args.append(int(arg))
        calls.append(Call(call["name"], tuple(args)))
    return Program(tuple(calls))


# -- reproduction packages --------------------------------------------------------


@dataclass
class ReproPackage:
    """A deterministic bug reproduction: tests + schedule + expectation."""

    bug_id: str
    writer: Program
    reader: Program
    switch_points: List[int]
    expected_console: List[str] = field(default_factory=list)
    expected_panic: str = ""
    description: str = ""

    def to_json(self) -> str:
        from repro.fuzz.text import format_program

        return json.dumps(
            {
                "bug_id": self.bug_id,
                "writer": program_to_obj(self.writer),
                "reader": program_to_obj(self.reader),
                # Informational syz-repro-style text (ignored on load).
                "writer_text": format_program(self.writer),
                "reader_text": format_program(self.reader),
                "switch_points": list(self.switch_points),
                "expected_console": list(self.expected_console),
                "expected_panic": self.expected_panic,
                "description": self.description,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReproPackage":
        obj = json.loads(text)
        return cls(
            bug_id=obj["bug_id"],
            writer=program_from_obj(obj["writer"]),
            reader=program_from_obj(obj["reader"]),
            switch_points=[int(x) for x in obj["switch_points"]],
            expected_console=list(obj.get("expected_console", [])),
            expected_panic=obj.get("expected_panic", ""),
            description=obj.get("description", ""),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ReproPackage":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def render_report(self) -> str:
        """A human-readable bug report, the shape one files upstream."""
        from repro.detect.catalog import spec_by_id
        from repro.fuzz.text import format_program

        try:
            spec = spec_by_id(self.bug_id)
            headline = f"{self.bug_id} [{spec.bug_type}/{spec.triage.value}]: {spec.summary}"
        except KeyError:
            headline = f"{self.bug_id}: {self.description or 'uncatalogued observation'}"
        lines = [headline, ""]
        if self.expected_panic:
            lines += ["Crash:", f"  {self.expected_panic}", ""]
        elif self.expected_console:
            lines += ["Console:"] + [f"  {l}" for l in self.expected_console] + [""]
        lines += ["Reproducer (process A):"]
        lines += [f"  {l}" for l in format_program(self.writer).splitlines()]
        lines += ["Reproducer (process B):"]
        lines += [f"  {l}" for l in format_program(self.reader).splitlines()]
        lines += [
            "",
            f"Deterministic schedule: switch vCPUs after instructions "
            f"{self.switch_points}",
        ]
        return "\n".join(lines)


def capture_package(
    bug_id: str,
    writer: Program,
    reader: Program,
    result: ExecutionResult,
    description: str = "",
) -> ReproPackage:
    """Build a package from the trial that exposed the bug."""
    return ReproPackage(
        bug_id=bug_id,
        writer=writer,
        reader=reader,
        switch_points=list(result.switch_points),
        expected_console=list(result.console),
        expected_panic=result.panic_message,
        description=description,
    )


def reproduce(executor: Executor, package: ReproPackage) -> ExecutionResult:
    """Replay a package; raises if the bug does not reproduce."""
    result = executor.run_concurrent(
        [package.writer, package.reader],
        replay_switch_points=package.switch_points,
    )
    if package.expected_panic and result.panic_message != package.expected_panic:
        raise AssertionError(
            f"replay diverged: expected panic {package.expected_panic!r}, "
            f"got {result.panic_message!r}"
        )
    if package.expected_console and result.console != package.expected_console:
        raise AssertionError("replay diverged: console transcript differs")
    return result
