"""Persistence: serialise tests, campaign results and repro packages.

A **reproduction package** is the artifact Snowboard hands a developer:
the two sequential tests, the recorded switch points of the trial that
exposed the bug, and the expected failure output.  Replaying the package
on a freshly booted kernel reproduces the bug deterministically
(section 6: "Snowboard has the benefit of providing a reliable
environment to replicate bugs once they are found").
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.fuzz.prog import Call, Program, Res
from repro.sched.executor import ExecutionResult, Executor


# -- program (de)serialisation --------------------------------------------------


def program_to_obj(program: Program) -> List[Dict]:
    """A JSON-ready representation of a program."""
    calls = []
    for call in program.calls:
        args = []
        for arg in call.args:
            if isinstance(arg, Res):
                args.append({"res": arg.index})
            else:
                args.append(int(arg))
        calls.append({"name": call.name, "args": args})
    return calls


def program_from_obj(obj: List[Dict]) -> Program:
    """Rebuild a program from :func:`program_to_obj` output."""
    calls = []
    for call in obj:
        args = []
        for arg in call["args"]:
            if isinstance(arg, dict) and "res" in arg:
                args.append(Res(int(arg["res"])))
            else:
                args.append(int(arg))
        calls.append(Call(call["name"], tuple(args)))
    return Program(tuple(calls))


# -- reproduction packages --------------------------------------------------------


@dataclass
class ReproPackage:
    """A deterministic bug reproduction: tests + schedule + expectation."""

    bug_id: str
    writer: Program
    reader: Program
    switch_points: List[int]
    expected_console: List[str] = field(default_factory=list)
    expected_panic: str = ""
    description: str = ""

    def to_json(self) -> str:
        from repro.fuzz.text import format_program

        return json.dumps(
            {
                "bug_id": self.bug_id,
                "writer": program_to_obj(self.writer),
                "reader": program_to_obj(self.reader),
                # Informational syz-repro-style text (ignored on load).
                "writer_text": format_program(self.writer),
                "reader_text": format_program(self.reader),
                "switch_points": list(self.switch_points),
                "expected_console": list(self.expected_console),
                "expected_panic": self.expected_panic,
                "description": self.description,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReproPackage":
        obj = json.loads(text)
        return cls(
            bug_id=obj["bug_id"],
            writer=program_from_obj(obj["writer"]),
            reader=program_from_obj(obj["reader"]),
            switch_points=[int(x) for x in obj["switch_points"]],
            expected_console=list(obj.get("expected_console", [])),
            expected_panic=obj.get("expected_panic", ""),
            description=obj.get("description", ""),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ReproPackage":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def render_report(self) -> str:
        """A human-readable bug report, the shape one files upstream."""
        from repro.detect.catalog import spec_by_id
        from repro.fuzz.text import format_program

        try:
            spec = spec_by_id(self.bug_id)
            headline = f"{self.bug_id} [{spec.bug_type}/{spec.triage.value}]: {spec.summary}"
        except KeyError:
            headline = f"{self.bug_id}: {self.description or 'uncatalogued observation'}"
        lines = [headline, ""]
        if self.expected_panic:
            lines += ["Crash:", f"  {self.expected_panic}", ""]
        elif self.expected_console:
            lines += ["Console:"] + [f"  {l}" for l in self.expected_console] + [""]
        lines += ["Reproducer (process A):"]
        lines += [f"  {l}" for l in format_program(self.writer).splitlines()]
        lines += ["Reproducer (process B):"]
        lines += [f"  {l}" for l in format_program(self.reader).splitlines()]
        lines += [
            "",
            f"Deterministic schedule: switch vCPUs after instructions "
            f"{self.switch_points}",
        ]
        return "\n".join(lines)


def capture_package(
    bug_id: str,
    writer: Program,
    reader: Program,
    result: ExecutionResult,
    description: str = "",
) -> ReproPackage:
    """Build a package from the trial that exposed the bug."""
    return ReproPackage(
        bug_id=bug_id,
        writer=writer,
        reader=reader,
        switch_points=list(result.switch_points),
        expected_console=list(result.console),
        expected_panic=result.panic_message,
        description=description,
    )


def reproduce(
    executor: Executor,
    package: ReproPackage,
    race_detector=None,
    verify_bug_id: bool = True,
) -> ExecutionResult:
    """Replay a package; raises if the bug does not reproduce.

    The replay runs under a :class:`~repro.detect.datarace.RaceDetector`
    and the full oracle set, and the observed findings must match the
    package's ``bug_id`` against the catalog.  This is what makes
    packages for pure data-race bugs — empty ``expected_panic`` *and*
    ``expected_console`` — actually validate: before, no oracle ran
    during replay and such packages succeeded vacuously.
    """
    from repro.detect.catalog import catalog_ids, match_observations
    from repro.detect.datarace import RaceDetector
    from repro.detect.report import observe

    detector = race_detector if race_detector is not None else RaceDetector()
    result = executor.run_concurrent(
        [package.writer, package.reader],
        replay_switch_points=package.switch_points,
        race_detector=detector,
    )
    if package.expected_panic and result.panic_message != package.expected_panic:
        raise AssertionError(
            f"replay diverged: expected panic {package.expected_panic!r}, "
            f"got {result.panic_message!r}"
        )
    if package.expected_console and result.console != package.expected_console:
        raise AssertionError("replay diverged: console transcript differs")
    observations = observe(result)
    if verify_bug_id and package.bug_id in catalog_ids():
        grouped = match_observations(observations)
        if package.bug_id not in grouped:
            raise AssertionError(
                f"replay diverged: no observation matching {package.bug_id} "
                f"(observed: {sorted(k for k in grouped)})"
            )
    elif verify_bug_id and not (package.expected_panic or package.expected_console):
        # Uncatalogued package with no transcript expectation: the replay
        # must at least produce *some* oracle finding to count.
        if not observations:
            raise AssertionError(
                "replay diverged: no oracle observation during replay"
            )
    return result


# -- campaign checkpoint journal ---------------------------------------------------
#
# A campaign checkpoint is an append-only JSONL journal: one header line
# describing the campaign parameters, then one line per merged Stage-4
# task.  Each task line carries the *cumulative* campaign counters, the
# observation records and reproduction packages that task contributed,
# and a digest of its contribution.  Because tasks are seeded
# ``seed + task_id``, replaying the journal and executing only the
# missing task ids reconstructs the uninterrupted campaign bit for bit.

CHECKPOINT_VERSION = 1

#: Header fields that must match between the journal and a resuming
#: campaign — resuming under different parameters would silently change
#: seeding and test selection.  Batch campaigns guard ``test_budget`` and
#: ``ntests``; round-based campaigns guard ``rounds``, ``round_budget``
#: and ``corpus_growth`` instead (only fields present in the resuming
#: campaign's expectation are compared).
HEADER_GUARD_FIELDS = (
    "version",
    "strategy",
    "seed",
    "test_budget",
    "trials",
    "scheduler_kind",
    "fixed_kernel",
    "ntests",
    "rounds",
    "round_budget",
    "corpus_growth",
)


class CheckpointMismatch(ValueError):
    """The journal was written by a campaign with different parameters."""


def record_digest(obj: Dict) -> str:
    """Stable digest of one journal record's contents.

    Shared by the campaign checkpoint journal and the service job
    registry (``repro.service.registry``) so every append-only journal
    in the system detects corruption the same way.
    """
    canon = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


# Historical internal name, kept for the call sites below.
_task_digest = record_digest


class CheckpointWriter:
    """Appends one journal record per merged Stage-4 task.

    Records are flushed line by line, so a campaign killed mid-flight
    leaves a valid journal prefix behind (a torn final line is discarded
    on load).  Construct with :meth:`create` (fresh journal, truncates)
    or :meth:`append_to` (resume an existing one).

    Durability levels: the default ``flush()`` survives a *process* kill
    (the bytes are in OS buffers) but not a machine crash; ``fsync=True``
    additionally fsyncs after every record, surviving power loss at the
    cost of one disk sync per merged task (``--checkpoint-fsync`` on the
    CLI, default off).
    """

    def __init__(
        self, handle, campaign, packages: Dict[str, ReproPackage], fsync: bool = False
    ):
        self._handle = handle
        self._campaign = campaign
        self._packages = packages
        self._nrecords = len(campaign.records)
        self._package_ids = set(packages)
        self._fsync = fsync

    def _write(self, obj: Dict) -> None:
        self._handle.write(json.dumps(obj) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    @classmethod
    def create(
        cls,
        path: str,
        header: Dict,
        campaign,
        packages: Dict[str, ReproPackage],
        fsync: bool = False,
    ) -> "CheckpointWriter":
        handle = open(path, "w")
        writer = cls(handle, campaign, packages, fsync=fsync)
        writer._write({"kind": "header", **header})
        return writer

    @classmethod
    def append_to(
        cls,
        path: str,
        campaign,
        packages: Dict[str, ReproPackage],
        fsync: bool = False,
    ) -> "CheckpointWriter":
        return cls(open(path, "a"), campaign, packages, fsync=fsync)

    def round_begin(self, info) -> None:
        """Journal a round boundary (a :class:`RoundInfo`'s summary).

        Written after a round's Stage-1/2/3 work and *before* its first
        Stage-4 task, so a resumed campaign can verify that its recomputed
        round (corpus size, PMC totals, test count, first global task id)
        matches what the interrupted campaign actually ran — any drift
        means the resume would execute different tests under the same
        task ids, and must fail loudly instead.
        """
        obj = {"kind": "round", **info.to_obj()}
        obj["digest"] = _task_digest(obj)
        self._write(obj)

    def task_done(self, task_id: int, merged: bool = True) -> None:
        """Journal one task's contribution (call after merging it)."""
        from repro.orchestrate.results import record_to_obj

        new_records = self._campaign.records[self._nrecords :]
        self._nrecords = len(self._campaign.records)
        new_package_ids = [
            bug_id for bug_id in self._packages if bug_id not in self._package_ids
        ]
        self._package_ids.update(new_package_ids)
        obj = {
            "kind": "task",
            "task_id": task_id,
            "merged": merged,
            "counters": self._campaign.counters(),
            "records": [record_to_obj(r) for r in new_records],
            "packages": {
                bug_id: json.loads(self._packages[bug_id].to_json())
                for bug_id in new_package_ids
            },
        }
        obj["digest"] = _task_digest(obj)
        self._write(obj)

    def close(self) -> None:
        if self._fsync and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._handle.close()


def load_checkpoint(path: str) -> Tuple[Dict, List[Dict]]:
    """Read a journal: (header, task records in journal order).

    A torn final line (the campaign died mid-write) is discarded; a task
    record whose digest does not match its contents raises — the journal
    was corrupted rather than truncated.
    """
    header: Optional[Dict] = None
    tasks: List[Dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: keep the valid prefix
            if obj.get("kind") == "header":
                header = obj
            elif obj.get("kind") == "task":
                digest = obj.pop("digest", None)
                if digest != _task_digest(obj):
                    raise CheckpointMismatch(
                        f"checkpoint {path!r}: task {obj.get('task_id')} "
                        f"record failed its digest check"
                    )
                tasks.append(obj)
    if header is None:
        raise CheckpointMismatch(f"checkpoint {path!r} has no header record")
    return header, tasks


def load_round_records(path: str) -> Dict[int, Dict]:
    """Read a journal's round-boundary records, keyed by round number.

    Same torn-tail/digest rules as :func:`load_checkpoint`; journals
    written by batch campaigns simply have none.
    """
    rounds: Dict[int, Dict] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: keep the valid prefix
            if obj.get("kind") != "round":
                continue
            digest = obj.pop("digest", None)
            if digest != _task_digest(obj):
                raise CheckpointMismatch(
                    f"checkpoint {path!r}: round {obj.get('round')} "
                    f"record failed its digest check"
                )
            rounds[int(obj["round"])] = obj
    return rounds


def verify_round_record(stored: Dict, info) -> None:
    """Raise :class:`CheckpointMismatch` when a resumed campaign's
    recomputed round diverges from the journalled one."""
    for name, value in info.to_obj().items():
        if stored.get(name) != value:
            raise CheckpointMismatch(
                f"round {info.round} mismatch on {name!r}: journal has "
                f"{stored.get(name)!r}, resumed campaign computed {value!r}"
            )


def verify_checkpoint_header(header: Dict, expected: Dict) -> None:
    """Raise :class:`CheckpointMismatch` when guarded fields differ."""
    for name in HEADER_GUARD_FIELDS:
        if name in expected and header.get(name) != expected[name]:
            raise CheckpointMismatch(
                f"checkpoint header mismatch on {name!r}: journal has "
                f"{header.get(name)!r}, campaign wants {expected[name]!r}"
            )


def restore_campaign(
    campaign,
    packages: Dict[str, ReproPackage],
    task_records: List[Dict],
) -> Set[int]:
    """Replay journal task records into a fresh campaign.

    Restores counters (from the last record — they are cumulative),
    observation records (bug ids re-derived), and reproduction packages.
    Returns the set of completed task ids to skip on resume.
    """
    from repro.orchestrate.results import record_from_obj

    completed: Set[int] = set()
    restored = []
    for obj in task_records:
        completed.add(int(obj["task_id"]))
        restored.extend(record_from_obj(r) for r in obj.get("records", []))
        for bug_id, package_obj in obj.get("packages", {}).items():
            packages.setdefault(
                bug_id, ReproPackage.from_json(json.dumps(package_obj))
            )
    if task_records:
        campaign.restore_counters(task_records[-1]["counters"])
    campaign.restore_records(restored)
    return completed
