"""The fleet transport protocol and its multiprocessing implementation.

:class:`~repro.orchestrate.fleet.FleetCoordinator` is transport-blind:
everything it does to a worker goes through two small protocols defined
here.  A **Transport** owns the results channel and mints worker
handles; a **WorkerHandle** is one spawned worker generation — send it
a task, stop it, kill it.  Liveness never appears in either protocol:
it is message-based (:class:`~repro.orchestrate.fleet.HeartbeatEnvelope`
on the results channel), which is the property that lets the same
coordinator drive local processes and remote socket workers.

Implementations:

* :class:`MultiprocessingTransport` (here) — ``--fleet processes``:
  local worker processes over ``multiprocessing`` queues.
* :class:`~repro.orchestrate.socketfleet.SocketTransport` —
  ``--fleet sockets``: workers over TCP with length-prefixed JSON
  frames; workers may live on other machines and join via
  ``repro fleet-worker --connect HOST:PORT``.
"""

from __future__ import annotations

import queue as stdqueue
from typing import Any, Optional, Protocol, runtime_checkable

import multiprocessing as mp

from repro.orchestrate.fleet import TaskEnvelope, WorkerSpec, fleet_worker_main


@runtime_checkable
class WorkerHandle(Protocol):
    """One spawned worker generation, as the coordinator sees it."""

    def send(self, envelope: TaskEnvelope) -> None:
        """Dispatch a task (best-effort: a broken channel is surfaced by
        the missed-heartbeat path, not by this call)."""

    def ready(self) -> bool:
        """True when the handle can accept a task right now (a socket
        worker is not ready until its handshake completes)."""

    def stop(self) -> None:
        """Request a graceful exit (shutdown sentinel / frame)."""

    def kill(self) -> None:
        """Hard-kill the worker / sever its connection.  Idempotent."""

    def join(self, timeout: float = 5.0) -> None:
        """Best-effort wait for the worker to be gone."""


@runtime_checkable
class Transport(Protocol):
    """Spawns worker handles and carries their messages back.

    ``recv`` returns one message — a ``ResultEnvelope``,
    ``HeartbeatEnvelope``, ``HelloEnvelope`` or ``_BootFailed`` — or
    ``None`` when ``timeout`` elapses with nothing queued.  A transport
    is single-use: ``close`` releases the channel (and, for sockets, the
    listening port) and no spawn may follow it.
    """

    def spawn(self, worker_id: int, generation: int) -> WorkerHandle:
        """Start one worker generation; returns its handle."""

    def recv(self, timeout: float) -> Optional[Any]:
        """Next queued worker message, or None after ``timeout``."""

    def close(self) -> None:
        """Release the results channel and every spawned resource."""


class _ProcessHandle:
    """A local worker process plus its private dispatch queue."""

    def __init__(self, process, inq):
        self.process = process
        self.inq = inq

    def send(self, envelope: TaskEnvelope) -> None:
        try:
            self.inq.put(envelope)
        except Exception:  # pragma: no cover - feeder already gone
            pass  # the missed-heartbeat path reclaims the lease

    def ready(self) -> bool:
        return True  # queue buffers: dispatchable from the moment of spawn

    def stop(self) -> None:
        try:
            self.inq.put(None)
        except Exception:  # pragma: no cover - feeder already gone
            pass

    def kill(self) -> None:
        self.process.kill()

    def join(self, timeout: float = 5.0) -> None:
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=timeout)
        if self.inq is not None:
            self.inq.close()
            self.inq = None


class MultiprocessingTransport:
    """Local worker processes over ``multiprocessing`` queues.

    One shared results queue (heartbeats and results interleave on it),
    one private dispatch queue per worker generation — private so a task
    dispatched to a dead worker can never be double-claimed by its
    successor.
    """

    def __init__(self, spec: WorkerSpec, start_method: str = "spawn"):
        self.spec = spec
        self._ctx = mp.get_context(start_method)
        self._results_q = self._ctx.Queue()

    def spawn(self, worker_id: int, generation: int) -> _ProcessHandle:
        inq = self._ctx.Queue()
        process = self._ctx.Process(
            target=fleet_worker_main,
            args=(worker_id, generation, self.spec, inq, self._results_q),
            daemon=True,
        )
        process.start()
        return _ProcessHandle(process, inq)

    def recv(self, timeout: float) -> Optional[Any]:
        try:
            if timeout <= 0:
                return self._results_q.get_nowait()
            return self._results_q.get(timeout=timeout)
        except stdqueue.Empty:
            return None

    def close(self) -> None:
        # Queues are reclaimed by GC; joining the feeder here would block
        # on any unread late messages, which are legitimate after a kill.
        self._results_q = None
