"""Campaign statistics: the raw material of Tables 2 and 3.

A campaign is one strategy run over a test budget.  It records every
deduplicated bug observation with the position (tests executed so far)
at which it was first seen — the tests-executed analogue of Table 3's
"days taken to find".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.detect.catalog import match_observations
from repro.detect.report import (
    BugObservation,
    observation_from_obj,
    observation_to_obj,
)
from repro.orchestrate.queue import WorkerStats


@dataclass
class ObservationRecord:
    """First sighting of one deduplicated observation."""

    observation: BugObservation
    test_index: int  # how many concurrent tests had been executed
    trial: int  # trial number within that test
    bug_id: str = "unmatched"


def record_to_obj(record: ObservationRecord) -> Dict:
    """A JSON-ready representation of one record (checkpoint use)."""
    return {
        "observation": observation_to_obj(record.observation),
        "test_index": record.test_index,
        "trial": record.trial,
    }


def record_from_obj(obj: Dict) -> ObservationRecord:
    """Rebuild a record from :func:`record_to_obj` output (bug ids are
    re-derived by the next :meth:`CampaignResult._match_records` pass)."""
    return ObservationRecord(
        observation=observation_from_obj(obj["observation"]),
        test_index=int(obj["test_index"]),
        trial=int(obj["trial"]),
    )


#: The CampaignResult counters a checkpoint journal snapshots per task.
COUNTER_FIELDS = (
    "tested_pmcs",
    "trials",
    "instructions",
    "exercised_pmcs",
    "task_failures",
    "pages_restored",
    "restore_seconds",
)


@dataclass
class CampaignResult:
    """Everything measured during one strategy campaign."""

    strategy: str
    exemplar_pmcs: int = 0  # number of clusters (selected exemplars)
    tested_pmcs: int = 0  # concurrent tests actually executed
    trials: int = 0
    instructions: int = 0
    exercised_pmcs: int = 0  # tests whose PMC channel actually occurred
    records: List[ObservationRecord] = field(default_factory=list)
    # -- throughput bookkeeping (the §5.4 executions/minute story) --------
    workers: int = 1  # Stage-4 worker count (1 = serial execution)
    task_failures: int = 0  # parallel tasks that crashed (not merged)
    task_retries: int = 0  # failed task attempts that were re-executed
    worker_respawns: int = 0  # worker reboots (factory crash / BaseException)
    worker_stats: List[WorkerStats] = field(default_factory=list, repr=False)
    pages_restored: int = 0  # snapshot pages copied back across all trials
    restore_seconds: float = 0.0  # wall time spent in snapshot restore
    wall_seconds: float = 0.0  # wall time of the whole Stage-4 execution
    _seen_keys: set = field(default_factory=set, repr=False)

    def record_observations(
        self, observations: List[BugObservation], test_index: int, trial: int
    ) -> List[ObservationRecord]:
        """Dedup and store new observations; returns the fresh ones."""
        fresh = []
        for obs in observations:
            if obs.key in self._seen_keys:
                continue
            self._seen_keys.add(obs.key)
            record = ObservationRecord(obs, test_index, trial)
            fresh.append(record)
            self.records.append(record)
        if fresh:
            self._match_records()
        return fresh

    # -- checkpoint restore (orchestrate.persistence journal replay) ---------

    def counters(self) -> Dict[str, object]:
        """Snapshot of the journalled counters (see COUNTER_FIELDS)."""
        return {name: getattr(self, name) for name in COUNTER_FIELDS}

    def restore_counters(self, counters: Dict[str, object]) -> None:
        """Overwrite the journalled counters from a checkpoint snapshot."""
        for name in COUNTER_FIELDS:
            if name in counters:
                setattr(self, name, type(getattr(self, name))(counters[name]))

    def restore_records(self, records: List[ObservationRecord]) -> None:
        """Re-adopt checkpointed observation records (dedup keys included),
        then re-derive bug ids — the journal does not trust stored ids."""
        for record in records:
            if record.observation.key in self._seen_keys:
                continue
            self._seen_keys.add(record.observation.key)
            self.records.append(record)
        if self.records:
            self._match_records()

    def _match_records(self) -> None:
        grouped = match_observations([r.observation for r in self.records])
        assignment: Dict[Tuple, str] = {}
        for bug_id, obs_list in grouped.items():
            for obs in obs_list:
                assignment[obs.key] = bug_id
        for record in self.records:
            record.bug_id = assignment.get(record.observation.key, "unmatched")

    # -- summaries -----------------------------------------------------------

    def bugs_found(self) -> Dict[str, int]:
        """bug id -> tests executed when first found (catalogued bugs only)."""
        found: Dict[str, int] = {}
        for record in self.records:
            if record.bug_id == "unmatched":
                continue
            if record.bug_id not in found or record.test_index < found[record.bug_id]:
                found[record.bug_id] = record.test_index
        return found

    @property
    def distinct_bugs(self) -> int:
        return len(self.bugs_found())

    @property
    def accuracy(self) -> float:
        """Fraction of tested PMCs whose channel was actually exercised."""
        if self.tested_pmcs == 0:
            return 0.0
        return self.exercised_pmcs / self.tested_pmcs

    # -- throughput (nondeterministic: wall-clock based, so kept out of
    # -- summary(), which must be bit-stable across identical campaigns) --

    @property
    def trials_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.trials / self.wall_seconds

    @property
    def executions_per_minute(self) -> float:
        """The §5.4 headline number (paper: 193.8 for Snowboard)."""
        return self.trials_per_second * 60.0

    @property
    def pages_per_trial(self) -> float:
        """Mean snapshot pages copied back per trial (reset cost)."""
        if self.trials == 0:
            return 0.0
        return self.pages_restored / self.trials

    @property
    def restore_fraction(self) -> float:
        """Fraction of Stage-4 wall time spent restoring snapshots."""
        if self.wall_seconds <= 0:
            return 0.0
        return min(1.0, self.restore_seconds / self.wall_seconds)

    def throughput(self) -> Dict[str, object]:
        """Wall-clock throughput figures (not part of ``summary()``)."""
        return {
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 4),
            "trials_per_second": round(self.trials_per_second, 2),
            "executions_per_minute": round(self.executions_per_minute, 1),
            "pages_per_trial": round(self.pages_per_trial, 2),
            "restore_fraction": round(self.restore_fraction, 4),
            "task_failures": self.task_failures,
            "task_retries": self.task_retries,
            "worker_respawns": self.worker_respawns,
        }

    def adopt_worker_stats(self, stats: List[WorkerStats]) -> None:
        """Fold one fleet run's per-worker stats into the campaign."""
        self.worker_stats.extend(stats)
        self.task_retries += sum(s.retries for s in stats)
        self.worker_respawns += sum(s.respawns for s in stats)

    def table_row(self) -> str:
        """One Table 3-style row."""
        bugs = self.bugs_found()
        issues = ", ".join(f"{bug_id} (@{at})" for bug_id, at in sorted(bugs.items()))
        exemplars = str(self.exemplar_pmcs) if self.exemplar_pmcs else "NA"
        return (
            f"{self.strategy:<22} {exemplars:>10} {self.tested_pmcs:>12} "
            f"{issues or '-'}"
        )

    def summary(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "exemplar_pmcs": self.exemplar_pmcs,
            "tested_pmcs": self.tested_pmcs,
            "trials": self.trials,
            "instructions": self.instructions,
            "exercised_pmcs": self.exercised_pmcs,
            "accuracy": round(self.accuracy, 3),
            "bugs": self.bugs_found(),
            "observations": len(self.records),
            "task_failures": self.task_failures,
        }


TABLE3_HEADER = (
    f"{'Strategy':<22} {'Exemplars':>10} {'Tested':>12} Issues found (@tests executed)"
)
