"""Incremental campaign state: what a round-based Snowboard remembers.

The paper's real deployment ran continuously for weeks (§4.3, §6):
Syzkaller kept producing sequential tests, profiles and PMCs accumulated
incrementally, and each round tested exemplars from clusters not yet
covered.  :class:`CampaignState` is the cross-round memory that makes
that loop possible without ever rebuilding from scratch:

* the fuzzer's :class:`~repro.fuzz.generator.ProgramGenerator` (its RNG
  state carries across rounds, so later rounds mutate earlier rounds'
  survivors),
* the profiled-test watermark into the growing corpus (only the
  unprofiled tail is executed each round),
* the incremental :class:`~repro.pmc.index.AccessIndex` (delta overlap
  scans instead of full rescans),
* the :class:`~repro.pmc.selection.SelectionHistory` of tested clusters
  and exemplars (the §4.3 "excluding those tested before" rule),
* the global Stage-4 test position (schedulers stay seeded
  ``seed + test_index``, so round campaigns checkpoint/resume exactly
  like batch ones).

Round one of the engine *is* the historical batch pipeline: with the
full budget it produces bit-identical results, which the golden
equivalence tests pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.fuzz.generator import ProgramGenerator
from repro.pmc.index import AccessIndex
from repro.pmc.model import PMC
from repro.pmc.selection import SelectionHistory

#: The batch path's selection-RNG salt (``seed ^ SELECTION_SALT``); kept
#: as a named constant so the round derivation provably matches it.
SELECTION_SALT = 0x5B0A

#: Per-round stride of the selection RNG stream (golden-ratio constant:
#: consecutive rounds land far apart in seed space).  Round 1 adds zero
#: strides, making it bit-identical to the batch derivation.
ROUND_STRIDE = 0x9E3779B9


def selection_rng(seed: int, round_number: int) -> random.Random:
    """The Stage-3 selection RNG of one round.

    ``round_number`` is 1-based; round 1 yields exactly the batch
    pipeline's ``random.Random(seed ^ 0x5B0A)``.
    """
    if round_number < 1:
        raise ValueError(f"round_number is 1-based, got {round_number}")
    return random.Random((seed ^ SELECTION_SALT) + (round_number - 1) * ROUND_STRIDE)


@dataclass(frozen=True)
class RoundInfo:
    """What one completed round contributed (reporting + journal guard)."""

    round: int
    first_test_index: int  # global Stage-4 index of the round's first test
    ntests: int  # concurrent tests the round generated
    corpus_size: int  # corpus entries after the round's growth
    new_corpus_tests: int  # entries this round's fuzzing kept
    new_profiles: int  # sequential tests profiled this round
    pmcs_total: int  # PMCs identified so far
    new_pmcs: int  # PMCs this round's delta classification added
    new_pairs: int  # (writer, reader) pairs the delta added
    exemplars: Tuple[Optional[PMC], ...] = ()  # scheduling hints, test order
    store_digest: str = ""  # PMC-store manifest digest at the round boundary

    def to_obj(self) -> dict:
        """The JSON-ready journal record (exemplars stay in memory)."""
        obj = {
            "round": self.round,
            "first_test_index": self.first_test_index,
            "ntests": self.ntests,
            "corpus_size": self.corpus_size,
            "new_corpus_tests": self.new_corpus_tests,
            "new_profiles": self.new_profiles,
            "pmcs_total": self.pmcs_total,
            "new_pmcs": self.new_pmcs,
            "new_pairs": self.new_pairs,
        }
        # Only spilled campaigns record a digest; in-memory journals
        # stay byte-identical to the pre-spill format.
        if self.store_digest:
            obj["store_digest"] = self.store_digest
        return obj


@dataclass
class CampaignState:
    """Cross-round campaign memory, threaded through every layer."""

    generator: ProgramGenerator
    index: AccessIndex = field(default_factory=AccessIndex)
    history: SelectionHistory = field(default_factory=SelectionHistory)
    round: int = 0  # rounds completed (absolute, survives repeat calls)
    corpus_epoch: int = 0  # fuzzing growth passes applied to the corpus
    profiled_watermark: int = 0  # corpus entries profiled so far
    next_test_index: int = 0  # global Stage-4 test position
    rounds_log: List[RoundInfo] = field(default_factory=list)

    @classmethod
    def fresh(cls, seed: int) -> "CampaignState":
        return cls(generator=ProgramGenerator(seed))
