"""The Snowboard pipeline façade (Figure 2 of the paper).

Stage 1 — sequential test generation & profiling: build a coverage-
distilled corpus with the fuzzer and profile every kept test from the
fixed boot snapshot.

Stage 2 — PMC identification: Algorithm 1 over all profiles.

Stage 3 — PMC selection: cluster under a Table 1 strategy, order
clusters uncommon-first, draw exemplars.

Stage 4 — concurrent test execution: for each exemplar PMC, pick one
(writer, reader) test pair at random, and explore interleavings with the
PMC as scheduling hint (Algorithm 2), running the bug oracles on every
trial.

The baselines of Table 3 (Random pairing, Duplicate pairing, Random
S-INS-PAIR) are exposed through the same interface.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detect.datarace import RaceDetector
from repro.detect.report import observe
from repro.fuzz.corpus import Corpus, grow_corpus, seed_corpus
from repro.fuzz.prog import Program
from repro.kernel.kernel import boot_kernel
from repro.obs import NULL_OBSERVER, buffering_observer
from repro.orchestrate.campaign import CampaignState, RoundInfo, selection_rng
from repro.orchestrate.queue import TaskFailure, WorkQueue, run_workers
from repro.orchestrate.results import CampaignResult
from repro.pmc.clustering import STRATEGIES_BY_NAME
from repro.pmc.identify import PmcSet, identify_delta
from repro.pmc.model import PMC
from repro.pmc.selection import SelectionHistory, cluster_pmcs, ordered_exemplars
from repro.profile.profiler import TestProfile, profile_new
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler
from repro.sched.prefixfork import PrefixMemo
from repro.sched.ski import SkiScheduler
from repro.sched.snowboard import SnowboardScheduler, channel_exercised

# Table 3 row names for the non-clustering generation methods.
RANDOM_PAIRING = "Random pairing"
DUPLICATE_PAIRING = "Duplicate pairing"
RANDOM_S_INS_PAIR = "Random S-INS-PAIR"


def derive_initial_state(kernel, snapshot, setup_program: Program):
    """Run a setup program from a snapshot and capture the new state.

    Section 4.1: test-specific kernel configuration belongs to the tests
    themselves, but Snowboard "can grow the number of initial kernel
    states it utilizes to increase diversity" — this helper produces such
    an additional fixed initial state.
    """
    from repro.machine.snapshot import Snapshot

    executor = Executor(kernel, snapshot)
    result = executor.run_sequential(setup_program)
    if not result.completed:
        raise ValueError(
            f"setup program failed: panic={result.panic_message!r} "
            f"deadlock={result.deadlocked} budget={result.budget_exceeded}"
        )
    return Snapshot.capture(kernel.machine, label="post-setup")


@dataclass(frozen=True)
class SnowboardConfig:
    """Pipeline knobs (the paper's values, scaled to simulator size)."""

    seed: int = 0
    corpus_budget: int = 300  # fuzzer candidate executions
    trials_per_pmc: int = 24  # paper: at most 64 trials per PMC
    switch_probability: float = 0.5
    max_instructions: int = 60_000  # per-trial instruction budget
    stop_test_on_new_bug: bool = True
    # Boot the patched-kernel variant (every planted bug repaired): the
    # regression target demonstrating that campaigns raise no alarms on a
    # correct kernel.
    fixed_kernel: bool = False
    # Optional setup program: executed once after boot, and the resulting
    # state becomes the fixed initial snapshot.  This is how the pipeline
    # grows the set of reachable initial kernel states (section 4.1) —
    # e.g. pre-populating IPC queues or tunnels before fuzzing.
    setup_program: Optional[Program] = None
    # Incidental-PMC adoption (Algorithm 2 line 27).  Off by default: on a
    # mini-kernel the adopted PMCs are dominated by hot allocator metadata,
    # and the extra switch points defocus the search (see the ablation
    # benchmark bench_ablation_incidental).
    adopt_incidental_pmcs: bool = False
    # Stage-4 fleet fault tolerance: how many times a crashed task is
    # deterministically re-executed, and how many times a dead worker
    # (factory crash or payload BaseException) is respawned.
    task_retries: int = 1
    worker_respawns: int = 2
    # Process-fleet knobs (``fleet="processes"``): how long a dispatched
    # task may run before its lease expires and the coordinator reclaims
    # it (killing the worker), and which multiprocessing start method
    # boots workers.  The lease must comfortably exceed the slowest
    # task's trials; expiry is treated as worker death, so an undersized
    # value turns healthy-but-slow workers into respawn churn.
    fleet_lease_timeout: float = 120.0
    fleet_start_method: str = "spawn"
    # Heartbeat liveness (process and socket fleets): workers beat on the
    # results channel every ``fleet_heartbeat_interval`` seconds; a slot
    # whose last beat is older than ``fleet_heartbeat_timeout`` is
    # declared dead and its lease reclaimed.  ``fleet_boot_grace`` is the
    # pre-first-beat allowance (interpreter start / snapshot import /
    # socket dial-in all happen before the first beat).
    fleet_heartbeat_interval: float = 0.5
    fleet_heartbeat_timeout: float = 10.0
    fleet_boot_grace: float = 60.0
    # Socket-fleet knobs (``fleet="sockets"``): the listen endpoint
    # (port 0 = ephemeral), the shared handshake token (empty = generate
    # a fresh one per round), and whether the transport auto-spawns
    # local worker processes (False = wait for external
    # ``repro fleet-worker --connect`` workers).
    fleet_listen: str = "127.0.0.1:0"
    fleet_token: str = ""
    fleet_spawn_workers: bool = True
    # Out-of-core PMC store (DESIGN §2.14): when set, the access index
    # writes every insert through to an append-only segment store in
    # this directory, and ``pmc_hot_records`` bounds how many records the
    # in-memory hot tier may hold before least-recently-touched buckets
    # are evicted to disk (None = unbounded hot tier, store still
    # written for durability).  Spilled campaigns are bit-identical to
    # in-memory ones; only memory footprint and tier hit rates change.
    pmc_spill_dir: Optional[str] = None
    pmc_hot_records: Optional[int] = None
    # Sequential-prefix fork memoization (DESIGN §2.15).  On by default:
    # trials of one task fork from a cached mid-trial delta snapshot at
    # their first switch point instead of re-running the writer's solo
    # prefix from boot.  Observably invisible — trial streams, funnel
    # totals and repro packages are bit-identical either way.
    prefix_fork: bool = True
    # Commuting-schedule pruning (opt-in): partial-order reduction over
    # the recorded prefix — commuting first-switch candidates share a
    # representative trial, and the rest of the budget is skipped (the
    # skips are credited to ``stage4.trials_pruned``).  Changes how many
    # trials run, so it is off by default and excluded from the
    # bit-identity contract (bug *yield* is preserved instead).
    prune_commuting: bool = False


@dataclass(frozen=True)
class ConcurrentTest:
    """A generated concurrent test: two sequential tests + scheduling hint."""

    writer: Program
    reader: Program
    writer_test: int
    reader_test: int
    pmc: Optional[PMC] = None

    @property
    def duplicate(self) -> bool:
        return self.writer_test == self.reader_test


@dataclass(frozen=True)
class Stage4Task:
    """One parallel Stage-4 work item: run all trials of one test.

    ``task_id`` doubles as the test's position in the campaign, so the
    scheduler seed (``config.seed + task_id``) matches the serial path's
    ``config.seed + tested_pmcs`` exactly.
    """

    task_id: int
    test: ConcurrentTest
    trials: int
    scheduler_kind: str = "snowboard"
    prefix_fork: bool = True
    prune_commuting: bool = False


@dataclass(frozen=True)
class TrialOutcome:
    """Compact record of one trial, sufficient for deterministic merging.

    Console/switch-point/panic data is kept only for trials that produced
    observations (the only trials a reproduction package can be captured
    from), so a task result stays small even over long trial runs.
    """

    trial: int
    instructions: int
    pages_restored: int
    restore_seconds: float
    races: int = 0
    observations: Tuple = ()
    channel_hit: bool = False
    switch_points: Tuple[int, ...] = ()
    console: Tuple[str, ...] = ()
    panic_message: str = ""
    # True when the trial was served from already-cached prefix state
    # (counted as ``stage4.prefix_fork_hits`` at the merge sites).
    forked: bool = False


def scheduler_stats(scheduler) -> Dict[str, int]:
    """Exploration diagnostics for span attrs ({} for schedulers without
    a ``stats()``, e.g. the random baseline)."""
    stats = getattr(scheduler, "stats", None)
    return stats() if callable(stats) else {}


def build_scheduler(
    config: SnowboardConfig,
    test: ConcurrentTest,
    seed: int,
    kind: str = "snowboard",
    universe: Optional[Sequence[PMC]] = None,
):
    """Build the scheduler for one concurrent test.

    Module-level (not a :class:`Snowboard` method) because process-fleet
    workers rebuild schedulers from wire data without a pipeline
    instance; ``universe`` is the incidental-adoption PMC list the
    coordinator precomputed (``None`` when adoption is off).
    """
    if test.pmc is None or kind == "random":
        return RandomScheduler(seed=seed)
    if kind == "ski":
        return SkiScheduler(test.pmc, seed=seed)
    return SnowboardScheduler(
        test.pmc,
        seed=seed,
        switch_probability=config.switch_probability,
        universe=universe,
    )


def run_task_trials(
    executor: Executor,
    task: Stage4Task,
    scheduler,
    obs_epoch: Optional[float] = None,
) -> Tuple[List[TrialOutcome], Optional[Dict]]:
    """Run every trial of one Stage-4 task on a private executor.

    The single worker body shared by the thread fleet and the process
    fleet — both execute exactly this code, which is what makes
    ``--fleet processes`` bit-identical to threads and to serial.

    Unlike the serial path, a worker cannot stop at the first fresh
    observation — freshness is campaign-global, and the campaign state
    lives with the merger.  It therefore runs the full trial budget and
    lets the merge discard trials past the point where the serial
    campaign would have stopped.

    When ``obs_epoch`` is given, worker-side tracing buffers into a
    private MemorySink sharing the campaign tracer's epoch; the returned
    buffer (``{"prelude": [pre-trial events], "trials": [per-trial event
    slices], "tail": [...]}``) is replayed by the merger in task order.
    Funnel counters are NOT incremented here — counting happens only at
    the merge sites, on exactly the merged trials.

    Returns ``(outcomes, buffer)``; ``buffer`` is ``None`` when tracing
    is off.
    """
    test = task.test
    sink = None
    obs = NULL_OBSERVER
    if obs_epoch is not None:
        obs, sink = buffering_observer(obs_epoch)
        executor.obs = obs
    outcomes: List[TrialOutcome] = []
    slices: List[List[Dict]] = []
    exercised = False
    try:
        with obs.span(
            "stage4.test",
            test=task.task_id,
            writer=test.writer_test,
            reader=test.reader_test,
        ) as test_span:
            memo = PrefixMemo(
                executor,
                test.writer,
                test.reader,
                pmc=test.pmc,
                enabled=task.prefix_fork,
                prune=task.prune_commuting,
            )
            if memo.active:
                with obs.span("stage4.prefix_record", test=task.task_id):
                    memo.prepare()
            effective, _ = memo.plan_trials(task.trials)
            # Everything emitted before the first trial (the recording
            # span) goes into the buffer's prelude so per-trial slices
            # keep their alignment for the merger's replay.
            prelude = len(sink.events) if sink is not None else 0
            for trial in range(effective):
                mark = len(sink.events) if sink is not None else 0
                with obs.span(
                    "stage4.trial", test=task.task_id, trial=trial
                ) as trial_span:
                    scheduler.begin_trial(trial)
                    detector = RaceDetector()
                    result, forked = memo.run_trial(scheduler, detector)
                    if test.pmc is not None and not exercised:
                        # Once the channel fired, the prefix-OR the
                        # merger computes is True regardless of later
                        # trials; skip the scan.
                        exercised = channel_exercised(test.pmc, result.accesses)
                    observations = tuple(observe(result))
                    races = len(detector.reports())
                    outcomes.append(
                        TrialOutcome(
                            trial=trial,
                            instructions=result.instructions,
                            pages_restored=result.pages_restored,
                            restore_seconds=result.restore_seconds,
                            races=races,
                            observations=observations,
                            channel_hit=exercised,
                            switch_points=(
                                tuple(result.switch_points) if observations else ()
                            ),
                            console=tuple(result.console) if observations else (),
                            panic_message=(
                                result.panic_message if observations else ""
                            ),
                            forked=forked,
                        )
                    )
                    scheduler.end_trial(result)
                    if sink is not None:
                        trial_span.set(
                            instructions=result.instructions, races=races
                        )
                if sink is not None:
                    slices.append(sink.events[mark:])
            if sink is not None:
                test_span.set(exercised=exercised, **scheduler_stats(scheduler))
    finally:
        if sink is not None:
            executor.obs = NULL_OBSERVER
    if sink is None:
        return outcomes, None
    consumed = prelude + sum(len(chunk) for chunk in slices)
    return outcomes, {
        "prelude": sink.events[:prelude],
        "trials": slices,
        "tail": sink.events[consumed:],
    }


class Snowboard:
    """End-to-end Snowboard instance over the mini-kernel."""

    def __init__(
        self, config: Optional[SnowboardConfig] = None, observer=None
    ):
        self.config = config or SnowboardConfig()
        # Observability facade (repro.obs.Observer); NULL_OBSERVER when off.
        # Instrumentation is passive: it consumes no randomness and alters
        # no control flow, so campaigns are bit-identical either way.
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.kernel = None
        self.snapshot = None
        self.executor: Optional[Executor] = None
        self.corpus: Optional[Corpus] = None
        self.profiles: List[TestProfile] = []
        self.pmcset: Optional[PmcSet] = None
        # Incremental campaign memory (generator, access index, tested
        # history, watermarks); created by prepare(), advanced per round.
        self.state: Optional[CampaignState] = None
        self._pair_index: Optional[Dict[Tuple[int, int], List[PMC]]] = None
        # Per-task worker event buffers (task_id -> {"trials": [...], "tail":
        # [...]}), replayed into the campaign trace in task order at merge.
        self._stage4_buffers: Dict[int, Dict] = {}
        # Test-only fault injection shipped to process-fleet workers (a
        # repro.orchestrate.fleet.FleetFault); None in real campaigns.
        self.fleet_fault = None
        # First reproduction package captured per catalogued bug id.
        self.repro_packages: Dict[str, "ReproPackage"] = {}

    # -- stages 1 & 2 -----------------------------------------------------------

    def prepare(self) -> "Snowboard":
        """Boot, fuzz, profile, identify — round one of the incremental
        engine.  Idempotent.

        The batch pipeline is the one-round special case: seed the corpus,
        run one fuzzing pass over the full budget, profile everything, and
        classify the whole delta against an empty access index.  All of
        that goes through the same incremental machinery
        (:func:`grow_corpus`, :func:`profile_new`, :func:`identify_delta`)
        that :meth:`run_rounds` advances round after round, so the two
        paths cannot drift.
        """
        if self.pmcset is not None:
            return self
        obs = self.obs
        with obs.span("stage1.boot", fixed=self.config.fixed_kernel):
            self.kernel, self.snapshot = boot_kernel(fixed=self.config.fixed_kernel)
            if self.config.setup_program is not None:
                self.snapshot = derive_initial_state(
                    self.kernel, self.snapshot, self.config.setup_program
                )
        self.executor = Executor(
            self.kernel, self.snapshot, max_instructions=self.config.max_instructions
        )
        self.executor.obs = obs
        from repro.fuzz.spec import DEFAULT_SEEDS

        self.state = CampaignState.fresh(self.config.seed)
        if self.config.pmc_spill_dir is not None:
            from repro.pmc.index import AccessIndex
            from repro.pmc.store import AccessStore

            # The fingerprint pins the store to this campaign's insert
            # stream: a manifest written under different Stage-1 params
            # describes different records and must not be adopted.
            store = AccessStore.open(
                self.config.pmc_spill_dir,
                fingerprint={
                    "seed": self.config.seed,
                    "corpus_budget": self.config.corpus_budget,
                    "fixed_kernel": self.config.fixed_kernel,
                },
            )
            self.state.index = AccessIndex(
                store=store, hot_capacity=self.config.pmc_hot_records
            )
        self.corpus = Corpus()
        self.pmcset = PmcSet()
        with obs.span("stage1.corpus", budget=self.config.corpus_budget):
            seed_corpus(self.corpus, self.executor, DEFAULT_SEEDS)
            grow_corpus(
                self.corpus,
                self.executor,
                self.state.generator,
                self.config.corpus_budget,
            )
        self.state.corpus_epoch = 1
        if obs.enabled:
            obs.count("stage1.corpus_tests", len(self.corpus))
        self._ingest_new_tests()
        return self

    def _grow_corpus(self, budget: int) -> int:
        """One more fuzzing pass over the existing corpus (rounds >= 2).

        The generator's RNG state carries over from earlier passes, and
        mutation draws from all current survivors; returns entries kept.
        """
        obs = self.obs
        with obs.span("stage1.corpus", budget=budget):
            kept = grow_corpus(
                self.corpus, self.executor, self.state.generator, budget
            )
        self.state.corpus_epoch += 1
        if obs.enabled:
            obs.count("stage1.corpus_tests", kept)
        return kept

    def _ingest_new_tests(self) -> Tuple[int, int, int]:
        """Profile the unprofiled corpus tail and classify its delta.

        Advances the profiled-test watermark, runs the delta overlap scan
        against the accumulated access index (each overlapping pair is
        classified exactly once across the campaign's lifetime), and
        rebuilds the eager (writer, reader) pair index.  Returns
        ``(new_profiles, new_pmcs, new_pairs)``.
        """
        state = self.state
        new_entries = self.corpus.entries[state.profiled_watermark :]
        new_profiles = profile_new(new_entries, obs=self.obs)
        self.profiles.extend(new_profiles)
        state.profiled_watermark = len(self.corpus.entries)
        new_pmcs, new_pairs = identify_delta(
            self.pmcset, state.index, new_profiles, obs=self.obs
        )
        # Push the round's write-through suffix to its segments so the
        # hot tier can evict freely and a round-boundary checkpoint only
        # has the manifest left to write.
        state.index.flush()
        self._pair_index = None
        self._build_pair_index()
        return len(new_profiles), new_pmcs, new_pairs

    def _program(self, test_id: int) -> Program:
        return self.corpus.entries[test_id].program

    def _build_pair_index(self) -> Dict[Tuple[int, int], List[PMC]]:
        """Build the (writer, reader) pair -> PMCs index.

        Built eagerly at the end of every ingest (prepare() and each
        round's delta), so by the time Stage-4 workers spawn the index is
        complete and worker threads only ever read it through
        :meth:`_pmcs_for_pair`.
        """
        if self._pair_index is None:
            index: Dict[Tuple[int, int], List[PMC]] = {}
            for pmc, pairs in self.pmcset.pmcs.items():
                for p in pairs:
                    index.setdefault(p, []).append(pmc)
            self._pair_index = index
        return self._pair_index

    def _pmcs_for_pair(self, pair: Tuple[int, int]) -> List[PMC]:
        """All identified PMCs exhibited by this (writer, reader) pair."""
        return self._build_pair_index().get(pair, [])

    # -- stage 3: concurrent test generation ---------------------------------------

    def generate_tests(
        self,
        strategy: str = "S-INS-PAIR",
        limit: Optional[int] = None,
        random_order: bool = False,
        rng: Optional[random.Random] = None,
        history: Optional[SelectionHistory] = None,
    ) -> Tuple[List[ConcurrentTest], int]:
        """Exemplar selection under a strategy.

        Returns (tests in uncommon-first order, number of clusters).

        ``rng`` defaults to the batch selection stream (round one of the
        incremental derivation); round-based campaigns pass the per-round
        stream and their cross-round ``history`` so clusters and PMCs
        tested in earlier rounds are excluded (§4.3).
        """
        self.prepare()
        if rng is None:
            rng = selection_rng(self.config.seed, 1)
        if strategy in (RANDOM_PAIRING, DUPLICATE_PAIRING):
            tests = self._generate_baseline(strategy, limit or 100, rng)
            if self.obs.enabled:
                self.obs.count("stage3.tests", len(tests))
            return tests, 0
        if strategy == RANDOM_S_INS_PAIR:
            clustering = STRATEGIES_BY_NAME["S-INS-PAIR"]
            random_order = True
        else:
            clustering = STRATEGIES_BY_NAME[strategy]
        pmcs = self.pmcset.all_pmcs()
        nclusters = len(cluster_pmcs(pmcs, clustering))
        exemplars = ordered_exemplars(
            pmcs,
            clustering,
            rng,
            random_order=random_order,
            limit=limit,
            obs=self.obs,
            history=history,
        )
        tests = self.tests_from_exemplars(exemplars, rng)
        if self.obs.enabled:
            self.obs.count("stage3.tests", len(tests))
        return tests, nclusters

    def tests_from_exemplars(
        self, exemplars: Sequence[PMC], rng: Optional[random.Random] = None
    ) -> List[ConcurrentTest]:
        """Turn an exemplar PMC list (any selection/composition scheme)
        into concurrent tests, choosing one (writer, reader) pair each."""
        self.prepare()
        rng = rng or random.Random(self.config.seed ^ 0x7E57)
        tests = []
        for pmc in exemplars:
            pairs = self.pmcset.pairs(pmc)
            writer_test, reader_test = rng.choice(pairs)
            tests.append(
                ConcurrentTest(
                    writer=self._program(writer_test),
                    reader=self._program(reader_test),
                    writer_test=writer_test,
                    reader_test=reader_test,
                    pmc=pmc,
                )
            )
        return tests

    def _generate_baseline(
        self, strategy: str, count: int, rng: random.Random
    ) -> List[ConcurrentTest]:
        tests = []
        n = len(self.corpus)
        for _ in range(count):
            writer_test = rng.randrange(n)
            reader_test = (
                writer_test if strategy == DUPLICATE_PAIRING else rng.randrange(n)
            )
            tests.append(
                ConcurrentTest(
                    writer=self._program(writer_test),
                    reader=self._program(reader_test),
                    writer_test=writer_test,
                    reader_test=reader_test,
                    pmc=None,
                )
            )
        return tests

    # -- stage 4: concurrent execution ----------------------------------------------

    def make_scheduler(self, test: ConcurrentTest, seed: int, kind: str = "snowboard"):
        """Build the scheduler for one concurrent test."""
        return build_scheduler(
            self.config, test, seed, kind, universe=self._scheduler_universe(test)
        )

    def _scheduler_universe(self, test: ConcurrentTest) -> Optional[List[PMC]]:
        """The incidental-adoption PMC universe for one test (or None).

        Precomputed coordinator-side in both fleets: the pair index is
        built eagerly at ingest, so worker threads only read it, and
        process workers receive the universe over the wire."""
        if not self.config.adopt_incidental_pmcs or test.pmc is None:
            return None
        return self._pmcs_for_pair((test.writer_test, test.reader_test))

    def execute_test(
        self,
        test: ConcurrentTest,
        campaign: CampaignResult,
        scheduler_kind: str = "snowboard",
        trials: Optional[int] = None,
        task_id: Optional[int] = None,
    ) -> bool:
        """Run all trials of one concurrent test; True if a new bug surfaced.

        ``task_id`` pins the test's campaign position (seed and recorded
        ``test_index``) explicitly — required when resuming a checkpointed
        campaign, where tests before the resume point are skipped and
        ``campaign.tested_pmcs`` no longer equals the loop index.
        """
        trials = trials or self.config.trials_per_pmc
        test_index = campaign.tested_pmcs if task_id is None else task_id
        scheduler = self.make_scheduler(
            test, seed=self.config.seed + test_index, kind=scheduler_kind
        )
        campaign.tested_pmcs += 1
        obs = self.obs
        exercised = False
        found_new = False
        with obs.span(
            "stage4.test",
            test=test_index,
            writer=test.writer_test,
            reader=test.reader_test,
        ) as test_span:
            memo = PrefixMemo(
                self.executor,
                test.writer,
                test.reader,
                pmc=test.pmc,
                enabled=self.config.prefix_fork,
                prune=self.config.prune_commuting,
            )
            if memo.active:
                with obs.span("stage4.prefix_record", test=test_index):
                    memo.prepare()
            effective, pruned = memo.plan_trials(trials)
            for trial in range(effective):
                with obs.span(
                    "stage4.trial", test=test_index, trial=trial
                ) as trial_span:
                    scheduler.begin_trial(trial)
                    detector = RaceDetector()
                    result, forked = memo.run_trial(scheduler, detector)
                    campaign.trials += 1
                    campaign.instructions += result.instructions
                    campaign.pages_restored += result.pages_restored
                    campaign.restore_seconds += result.restore_seconds
                    if test.pmc is not None and not exercised:
                        exercised = channel_exercised(test.pmc, result.accesses)
                    fresh = campaign.record_observations(
                        observe(result), test_index=test_index, trial=trial
                    )
                    scheduler.end_trial(result)
                    if obs.enabled:
                        races = len(detector.reports())
                        trial_span.set(
                            instructions=result.instructions, races=races
                        )
                        self._count_trial(
                            obs,
                            result.instructions,
                            result.pages_restored,
                            races,
                            len(fresh),
                            forked=forked,
                        )
                if fresh:
                    found_new = True
                    self._capture_packages(test, result, fresh)
                    if self.config.stop_test_on_new_bug:
                        break
            if obs.enabled:
                test_span.set(
                    exercised=exercised,
                    found_new=found_new,
                    **self._scheduler_stats(scheduler),
                )
        if exercised:
            campaign.exercised_pmcs += 1
        if obs.enabled:
            obs.count("stage4.tests", 1)
            if exercised:
                obs.count("stage4.exercised", 1)
            if pruned:
                obs.count("stage4.trials_pruned", pruned)
        return found_new

    # Kept as a method alias: module-level ``scheduler_stats`` is the
    # implementation (process-fleet workers use it without an instance).
    _scheduler_stats = staticmethod(scheduler_stats)

    @staticmethod
    def _count_trial(
        obs,
        instructions: int,
        pages: int,
        races: int,
        fresh: int,
        forked: bool = False,
    ) -> None:
        """The per-trial funnel increments, shared verbatim by the serial
        loop and the parallel merge loop so their totals cannot drift."""
        obs.count("stage4.trials", 1)
        obs.count("stage4.instructions", instructions)
        obs.count("restore.pages", pages)
        obs.count("stage4.races", races)
        if fresh:
            obs.count("stage4.observations", fresh)
        if forked:
            obs.count("stage4.prefix_fork_hits", 1)
        obs.observe("stage4.trial_instructions", instructions)

    def _capture_packages(self, test: ConcurrentTest, result, fresh_records) -> None:
        """Store one deterministic reproduction package per new bug id."""
        from repro.orchestrate.persistence import capture_package

        for record in fresh_records:
            bug_id = record.bug_id
            if bug_id == "unmatched" or bug_id in self.repro_packages:
                continue
            self.repro_packages[bug_id] = capture_package(
                bug_id,
                test.writer,
                test.reader,
                result,
                description=str(record.observation),
            )

    # -- parallel stage 4 (the WorkQueue-fed execution fleet) ----------------------

    def _stage4_worker_factory(self):
        """Build the ``run_workers`` factory: one private kernel per worker.

        Each worker boots its own kernel (buggy or fixed variant), applies
        the configured setup program, and owns a private executor — the
        in-process analogue of one Snowboard execution VM in the paper's
        GCP fleet.  Boot is deterministic, so worker trials are bit-equal
        to the serial executor's.
        """
        config = self.config

        def factory():
            kernel, snapshot = boot_kernel(fixed=config.fixed_kernel)
            if config.setup_program is not None:
                snapshot = derive_initial_state(kernel, snapshot, config.setup_program)
            executor = Executor(
                kernel, snapshot, max_instructions=config.max_instructions
            )

            def execute(task: Stage4Task) -> List[TrialOutcome]:
                return self._run_test_trials(executor, task)

            return execute

        return factory

    def _run_test_trials(self, executor: Executor, task: Stage4Task) -> List[TrialOutcome]:
        """Thread-fleet worker body: delegate to :func:`run_task_trials`.

        Builds the task's scheduler from instance state and stashes the
        worker's obs buffer for the merge loop.  Process-fleet workers
        run the same :func:`run_task_trials` via the wire format instead
        of this method.
        """
        scheduler = self.make_scheduler(
            task.test, seed=self.config.seed + task.task_id, kind=task.scheduler_kind
        )
        epoch = self.obs.tracer.epoch if self.obs.enabled else None
        outcomes, buffer = run_task_trials(executor, task, scheduler, obs_epoch=epoch)
        if buffer is not None:
            self._stage4_buffers[task.task_id] = buffer
        return outcomes

    def _merge_task_outcomes(
        self,
        test: ConcurrentTest,
        outcomes: Sequence[TrialOutcome],
        campaign: CampaignResult,
        task_id: Optional[int] = None,
        budget_trials: Optional[int] = None,
    ) -> bool:
        """Fold one task's trials into the campaign, mirroring the serial
        loop of :meth:`execute_test` trial for trial — including the early
        stop on a fresh observation, so serial and parallel campaigns
        record identical bug sets, trial counts and first-find positions.

        ``budget_trials`` is the task's configured trial budget; when the
        worker ran fewer trials than that, the difference was pruned
        (commuting-schedule reduction) and is credited here, matching the
        serial path's accounting."""
        test_index = campaign.tested_pmcs if task_id is None else task_id
        campaign.tested_pmcs += 1
        obs = self.obs
        exercised = False
        found_new = False
        for outcome in outcomes:
            campaign.trials += 1
            campaign.instructions += outcome.instructions
            campaign.pages_restored += outcome.pages_restored
            campaign.restore_seconds += outcome.restore_seconds
            if test.pmc is not None and not exercised:
                exercised = outcome.channel_hit
            fresh = campaign.record_observations(
                list(outcome.observations), test_index=test_index, trial=outcome.trial
            )
            if obs.enabled:
                self._count_trial(
                    obs,
                    outcome.instructions,
                    outcome.pages_restored,
                    outcome.races,
                    len(fresh),
                    forked=outcome.forked,
                )
            if fresh:
                found_new = True
                self._capture_packages(test, outcome, fresh)
                if self.config.stop_test_on_new_bug:
                    break
        if exercised:
            campaign.exercised_pmcs += 1
        if obs.enabled:
            obs.count("stage4.tests", 1)
            if exercised:
                obs.count("stage4.exercised", 1)
            if budget_trials is not None:
                pruned = budget_trials - len(outcomes)
                if pruned > 0:
                    obs.count("stage4.trials_pruned", pruned)
        return found_new

    def _run_thread_fleet(
        self,
        todo: Sequence[Tuple[int, ConcurrentTest]],
        campaign: CampaignResult,
        scheduler_kind: str,
        trials: int,
        workers: int,
    ) -> Dict[int, object]:
        """Execute ``(task_id, test)`` items over the in-process thread
        fleet; returns outcome lists / TaskFailures keyed by task id."""
        work = WorkQueue()
        queue_ids: Dict[int, int] = {}
        for nqueued, (index, test) in enumerate(todo):
            queue_id = work.put(
                Stage4Task(
                    task_id=index,
                    test=test,
                    trials=trials,
                    scheduler_kind=scheduler_kind,
                    prefix_fork=self.config.prefix_fork,
                    prune_commuting=self.config.prune_commuting,
                )
            )
            if queue_id != nqueued:
                # Not an assert: under ``python -O`` a stripped assert
                # would let a pre-seeded queue silently mis-map results.
                raise RuntimeError(
                    f"execute_tests_parallel needs a fresh WorkQueue: task "
                    f"{index} was assigned queue id {queue_id}, expected "
                    f"{nqueued}"
                )
            queue_ids[index] = queue_id
        results = run_workers(
            work,
            self._stage4_worker_factory(),
            nworkers=workers,
            max_task_retries=self.config.task_retries,
            max_worker_respawns=self.config.worker_respawns,
            obs=self.obs,
        )
        campaign.adopt_worker_stats(work.worker_stats)
        return {index: results.get(queue_ids[index]) for index, _ in todo}

    def _run_transport_fleet(
        self,
        todo: Sequence[Tuple[int, ConcurrentTest]],
        campaign: CampaignResult,
        scheduler_kind: str,
        trials: int,
        workers: int,
        fleet: str = "processes",
    ) -> Dict[int, object]:
        """Execute ``(task_id, test)`` items over an out-of-process fleet.

        Tasks cross the process (or machine) boundary as
        :class:`TaskEnvelope`s (the incidental-adoption universe
        precomputed coordinator-side, since workers have no corpus);
        results come back as :class:`ResultEnvelope`s and are decoded to
        the same outcome lists the thread fleet produces, with worker obs
        buffers installed for in-order replay at merge.  ``fleet`` picks
        the transport under the shared coordinator: ``"processes"``
        (multiprocessing queues) or ``"sockets"`` (length-prefixed JSON
        frames over TCP).
        """
        from repro.orchestrate.fleet import FleetCoordinator, TaskEnvelope, WorkerSpec

        envelopes = []
        for index, test in todo:
            task = Stage4Task(
                task_id=index,
                test=test,
                trials=trials,
                scheduler_kind=scheduler_kind,
                prefix_fork=self.config.prefix_fork,
                prune_commuting=self.config.prune_commuting,
            )
            envelopes.append(
                TaskEnvelope.from_task(task, universe=self._scheduler_universe(test))
            )
        obs = self.obs
        spec = WorkerSpec(
            config=self.config,
            obs_enabled=obs.enabled,
            obs_epoch=obs.tracer.epoch if obs.enabled else 0.0,
            fault=self.fleet_fault,
            heartbeat_interval=self.config.fleet_heartbeat_interval,
        )
        if fleet == "sockets":
            from repro.orchestrate.socketfleet import SocketTransport

            host, _, port = self.config.fleet_listen.rpartition(":")
            transport = SocketTransport(
                spec,
                host=host or "127.0.0.1",
                port=int(port or 0),
                token=self.config.fleet_token or None,
                spawn_workers=self.config.fleet_spawn_workers,
                start_method=self.config.fleet_start_method,
            )
        else:
            from repro.orchestrate.transport import MultiprocessingTransport

            transport = MultiprocessingTransport(
                spec, start_method=self.config.fleet_start_method
            )
        coordinator = FleetCoordinator(
            transport,
            nworkers=workers,
            max_task_retries=self.config.task_retries,
            max_worker_respawns=self.config.worker_respawns,
            lease_timeout=self.config.fleet_lease_timeout,
            heartbeat_timeout=self.config.fleet_heartbeat_timeout,
            boot_grace=self.config.fleet_boot_grace,
            obs=obs,
        )
        raw = coordinator.run(envelopes)
        campaign.adopt_worker_stats(coordinator.worker_stats)
        out: Dict[int, object] = {}
        for index, _ in todo:
            result = raw.get(index)
            if result is None or isinstance(result, TaskFailure):
                out[index] = result
                continue
            outcomes, buffer = result.decode()
            if buffer is not None and obs.enabled:
                self._stage4_buffers[index] = buffer
            out[index] = outcomes
        return out

    def execute_tests_parallel(
        self,
        tests: Sequence[ConcurrentTest],
        campaign: CampaignResult,
        scheduler_kind: str = "snowboard",
        trials: Optional[int] = None,
        workers: int = 2,
        completed: Optional[frozenset] = None,
        on_task_merged=None,
        task_offset: int = 0,
        fleet: str = "threads",
    ) -> None:
        """Stage 4 across a worker fleet: queue, execute, merge in order.

        Tasks are seeded deterministically (``seed + task_id``) and merged
        in task order under the campaign-global dedup, so the resulting
        bug set is identical to a serial campaign over the same tests.
        Crashed tasks (their retry and respawn budgets exhausted) and
        tasks with no result at all (worker pool died) are surfaced via
        ``campaign.task_failures`` instead of being merged as garbage —
        they still consume their test index, keeping later first-find
        positions aligned with the serial run.

        ``fleet`` picks the worker substrate: ``"threads"`` (private
        kernels in this process, the PR-2 fleet), ``"processes"``
        (:class:`~repro.orchestrate.fleet.FleetCoordinator` over
        multiprocessing queues, private kernels in spawned worker
        processes behind the picklable wire format), or ``"sockets"``
        (the same coordinator over TCP-framed envelopes — workers may
        auto-spawn locally or join via ``repro fleet-worker``).  All run
        :func:`run_task_trials` verbatim and merge here in task order,
        so the choice never changes campaign results.

        ``completed`` names task ids already merged by a resumed
        checkpoint (skipped here); ``on_task_merged(task_id)`` is invoked
        after each merge, in task order — the checkpoint journal hook.
        ``task_offset`` shifts task ids to the tests' global campaign
        positions (round-based campaigns hand each round's tests
        separately, but ids — and hence scheduler seeds and journal
        records — stay campaign-global).
        """
        if fleet not in ("threads", "processes", "sockets"):
            raise ValueError(f"unknown fleet kind {fleet!r}")
        trials = trials or self.config.trials_per_pmc
        completed = completed or frozenset()
        obs = self.obs
        if obs.enabled:
            # Fresh buffers per fleet run; workers produce disjoint
            # task_id keys, the merge loop below drains them in order.
            self._stage4_buffers = {}
        todo = [
            (task_offset + local, test)
            for local, test in enumerate(tests)
            if task_offset + local not in completed
        ]
        if fleet in ("processes", "sockets"):
            results = self._run_transport_fleet(
                todo, campaign, scheduler_kind, trials, workers, fleet
            )
        else:
            results = self._run_thread_fleet(
                todo, campaign, scheduler_kind, trials, workers
            )
        for index, test in todo:
            outcome = results.get(index)
            if outcome is None or isinstance(outcome, TaskFailure):
                # None: the queue never produced a result (all workers
                # died before claiming the task *and* the drain missed
                # it) — treat exactly like a recorded failure rather
                # than crashing the merge loop.
                campaign.tested_pmcs += 1
                campaign.task_failures += 1
                if obs.enabled:
                    self._stage4_buffers.pop(index, None)  # partial, discard
                    obs.count("stage4.tests", 1)
                    obs.event("stage4.task_failed", task=index)
                if on_task_merged is not None:
                    on_task_merged(index, merged=False)
                continue
            merged_from = campaign.trials
            self._merge_task_outcomes(
                test, outcome, campaign, task_id=index, budget_trials=trials
            )
            if obs.enabled:
                self._replay_task_buffer(index, campaign.trials - merged_from)
                obs.flush_metrics()
            if on_task_merged is not None:
                on_task_merged(index)

    def _replay_task_buffer(self, task_id: int, merged_trials: int) -> None:
        """Replay one task's buffered worker events into the campaign trace.

        Only the spans of the first ``merged_trials`` trials are replayed —
        the worker ran its full budget, but the merge stopped where the
        serial campaign would have, and the trace must tell the same story.
        The tail (the test-level span) is always kept.
        """
        buffer = self._stage4_buffers.pop(task_id, None)
        if buffer is None:
            return
        events: List[Dict] = list(buffer.get("prelude", ()))
        for chunk in buffer["trials"][:merged_trials]:
            events.extend(chunk)
        events.extend(buffer["tail"])
        self.obs.replay(events)

    def _stamp_store_header(self, header: Dict) -> None:
        """Record the PMC store's identity in a journal header.

        Informational (not a guarded field — resuming a spilled journal
        in memory mode, or vice versa, is legitimate, like switching
        fleet kinds): the spill dir and the manifest digest current at
        journal creation, so an operator can tie a journal to the store
        directory that fed it.  In-memory campaigns add nothing, keeping
        their headers byte-identical to the pre-spill format.
        """
        store = self.state.index.store if self.state is not None else None
        if store is not None:
            header["pmc_spill_dir"] = store.root
            header["store_manifest"] = store.manifest_digest

    def _open_checkpoint(
        self,
        checkpoint_path: str,
        resume: bool,
        campaign: CampaignResult,
        strategy: str,
        test_budget: int,
        scheduler_kind: str,
        trials: Optional[int],
        ntests: int,
        fsync: bool = False,
    ):
        """Create or resume the campaign journal.

        Returns (writer, completed task ids).  On resume the journal is
        validated against the campaign parameters, its records replayed
        into ``campaign`` and ``self.repro_packages``, and the writer
        opened in append mode.
        """
        from repro.orchestrate.persistence import (
            CHECKPOINT_VERSION,
            CheckpointWriter,
            load_checkpoint,
            restore_campaign,
            verify_checkpoint_header,
        )

        header = {
            "version": CHECKPOINT_VERSION,
            "strategy": strategy,
            "seed": self.config.seed,
            "test_budget": test_budget,
            "trials": trials or self.config.trials_per_pmc,
            "scheduler_kind": scheduler_kind,
            "fixed_kernel": self.config.fixed_kernel,
            "ntests": ntests,
        }
        self._stamp_store_header(header)
        if resume and os.path.exists(checkpoint_path):
            stored, task_records = load_checkpoint(checkpoint_path)
            verify_checkpoint_header(stored, header)
            completed = restore_campaign(campaign, self.repro_packages, task_records)
            writer = CheckpointWriter.append_to(
                checkpoint_path, campaign, self.repro_packages, fsync=fsync
            )
        else:
            completed = set()
            writer = CheckpointWriter.create(
                checkpoint_path, header, campaign, self.repro_packages, fsync=fsync
            )
        return writer, frozenset(completed)

    def run_campaign(
        self,
        strategy: str = "S-INS-PAIR",
        test_budget: int = 50,
        scheduler_kind: str = "snowboard",
        trials: Optional[int] = None,
        workers: int = 1,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        fleet: str = "threads",
        checkpoint_fsync: bool = False,
    ) -> CampaignResult:
        """One full Table 3 campaign: generate, prioritise, execute.

        ``workers > 1`` runs Stage 4 through the work queue with that many
        private-kernel workers — in this process (``fleet="threads"``),
        in spawned worker processes (``fleet="processes"``), or behind a
        TCP listener (``fleet="sockets"``); results (bug sets, trial
        counts, first-find positions) are identical to the serial run for
        the same seed in every case.

        ``checkpoint_path`` journals every merged Stage-4 task to a JSONL
        file as it completes; with ``resume=True`` an existing journal is
        replayed first (counters, observations, reproduction packages) and
        only the missing task ids are executed.  Because tasks are seeded
        ``seed + task_id``, a killed-and-resumed campaign produces a
        ``summary()`` bit-identical to an uninterrupted run.  The fleet
        kind is deliberately not a guarded header field: a campaign may
        be checkpointed under one fleet and resumed under another.
        ``checkpoint_fsync`` upgrades journal durability from process-kill
        to machine-crash (fsync per record).
        """
        tests, nclusters = self.generate_tests(strategy, limit=test_budget)
        tests = tests[:test_budget]
        campaign = CampaignResult(
            strategy=strategy, exemplar_pmcs=nclusters, workers=max(1, workers)
        )
        writer = None
        completed: frozenset = frozenset()
        if checkpoint_path is not None:
            writer, completed = self._open_checkpoint(
                checkpoint_path,
                resume,
                campaign,
                strategy,
                test_budget,
                scheduler_kind,
                trials,
                len(tests),
                fsync=checkpoint_fsync,
            )
        start = time.perf_counter()
        try:
            self._execute_tests(
                tests,
                campaign,
                scheduler_kind=scheduler_kind,
                trials=trials,
                workers=workers,
                completed=completed,
                writer=writer,
                fleet=fleet,
            )
        finally:
            if writer is not None:
                writer.close()
        campaign.wall_seconds = time.perf_counter() - start
        self._finish_campaign_obs(campaign)
        return campaign

    def _execute_tests(
        self,
        tests: Sequence[ConcurrentTest],
        campaign: CampaignResult,
        scheduler_kind: str,
        trials: Optional[int],
        workers: int,
        completed: frozenset,
        writer,
        task_offset: int = 0,
        fleet: str = "threads",
    ) -> None:
        """Run one batch of tests serially or across the fleet.

        The single dispatch point shared by :meth:`run_campaign` (one
        batch) and :meth:`run_rounds` (one call per round, with the
        round's global ``task_offset``); both paths journal each merged
        task and skip ids already ``completed`` by a resumed checkpoint.
        """
        if workers <= 1:
            for local, test in enumerate(tests):
                index = task_offset + local
                if index in completed:
                    continue
                self.execute_test(
                    test,
                    campaign,
                    scheduler_kind=scheduler_kind,
                    trials=trials,
                    task_id=index,
                )
                if self.obs.enabled:
                    # Keep the trace's cumulative funnel near-current,
                    # so a killed campaign still reads sensibly.
                    self.obs.flush_metrics()
                if writer is not None:
                    writer.task_done(index)
        else:
            self.execute_tests_parallel(
                tests,
                campaign,
                scheduler_kind=scheduler_kind,
                trials=trials,
                workers=workers,
                completed=completed,
                on_task_merged=(writer.task_done if writer is not None else None),
                task_offset=task_offset,
                fleet=fleet,
            )

    def _finish_campaign_obs(self, campaign: CampaignResult) -> None:
        """End-of-campaign observability tail: fleet health counters,
        level-style quantities as gauges, and a final metrics snapshot.

        The fleet counters are emitted in serial campaigns too (as zeros),
        so serial and parallel runs of the same seed report identical
        funnel totals."""
        obs = self.obs
        if not obs.enabled:
            return
        obs.count("fleet.task_failures", campaign.task_failures)
        obs.count("fleet.task_retries", campaign.task_retries)
        obs.count("fleet.worker_respawns", campaign.worker_respawns)
        # Per-worker fleet health (the ``repro stats`` worker table).
        # Aggregated by worker id — multi-round campaigns run one fleet
        # per round and the same id re-appears each round.  Serial runs
        # have no worker stats and emit nothing, keeping their stats
        # files byte-identical to the pre-table format; parallel funnel
        # equality is untouched because funnel totals only read the
        # FUNNEL_LAYOUT names.
        per_worker: Dict[int, Dict[str, int]] = {}
        for stats in campaign.worker_stats:
            agg = per_worker.setdefault(
                stats.worker_id,
                {"tasks": 0, "retries": 0, "respawns": 0, "missed_heartbeats": 0},
            )
            agg["tasks"] += stats.tasks_done
            agg["retries"] += stats.retries
            agg["respawns"] += stats.respawns
            agg["missed_heartbeats"] += stats.heartbeats_missed
        for worker_id in sorted(per_worker):
            for name, value in per_worker[worker_id].items():
                obs.count(f"fleet.w{worker_id}.{name}", value)
        obs.gauge("stage4.bugs", campaign.distinct_bugs)
        obs.gauge("campaign.workers", campaign.workers)
        obs.gauge("campaign.wall_seconds", round(campaign.wall_seconds, 6))
        obs.flush_metrics()

    # -- round-based incremental campaigns -----------------------------------------

    def _open_rounds_checkpoint(
        self,
        checkpoint_path: str,
        resume: bool,
        campaign: CampaignResult,
        strategy: str,
        rounds: int,
        round_budget: int,
        corpus_growth: int,
        scheduler_kind: str,
        trials: Optional[int],
        fsync: bool = False,
    ):
        """Create or resume a round-based campaign journal.

        Returns (writer, completed task ids, journalled round records).
        The header guards the round-shape parameters instead of the batch
        ``test_budget``/``ntests`` (test counts are per-round facts,
        validated against the journal's round records as each round is
        recomputed on resume).
        """
        from repro.orchestrate.persistence import (
            CHECKPOINT_VERSION,
            CheckpointWriter,
            load_checkpoint,
            load_round_records,
            restore_campaign,
            verify_checkpoint_header,
        )

        header = {
            "version": CHECKPOINT_VERSION,
            "strategy": strategy,
            "seed": self.config.seed,
            "rounds": rounds,
            "round_budget": round_budget,
            "corpus_growth": corpus_growth,
            "trials": trials or self.config.trials_per_pmc,
            "scheduler_kind": scheduler_kind,
            "fixed_kernel": self.config.fixed_kernel,
        }
        self._stamp_store_header(header)
        if resume and os.path.exists(checkpoint_path):
            stored, task_records = load_checkpoint(checkpoint_path)
            verify_checkpoint_header(stored, header)
            completed = restore_campaign(campaign, self.repro_packages, task_records)
            round_records = load_round_records(checkpoint_path)
            writer = CheckpointWriter.append_to(
                checkpoint_path, campaign, self.repro_packages, fsync=fsync
            )
        else:
            completed = set()
            round_records = {}
            writer = CheckpointWriter.create(
                checkpoint_path, header, campaign, self.repro_packages, fsync=fsync
            )
        return writer, frozenset(completed), round_records

    def run_rounds(
        self,
        rounds: int,
        round_budget: int,
        strategy: str = "S-INS-PAIR",
        scheduler_kind: str = "snowboard",
        trials: Optional[int] = None,
        workers: int = 1,
        corpus_growth: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        fleet: str = "threads",
        checkpoint_fsync: bool = False,
    ) -> CampaignResult:
        """A round-based incremental campaign (§4.3, §6 continuous mode).

        Each round: grow the corpus by ``corpus_growth`` fuzzer executions
        (round one uses :meth:`prepare`'s full ``corpus_budget`` pass),
        profile only the unprofiled tail, delta-classify the new accesses
        against the accumulated index, select up to ``round_budget``
        exemplars from clusters not tested in earlier rounds, and run
        them through the shared Stage-4 machinery (serial or fleet).

        A one-round campaign whose ``round_budget`` matches the batch
        ``test_budget`` is bit-identical to :meth:`run_campaign` —
        summary, trace and replays — which the golden equivalence tests
        pin.  ``checkpoint_path`` journals round boundaries alongside the
        per-task records; a killed-and-resumed campaign recomputes rounds
        from the seed, validates each against its journalled record, and
        re-executes only the missing global task ids, landing at the
        correct round with a summary bit-identical to an uninterrupted
        run.

        Repeated calls on one instance continue the same campaign: the
        corpus, access index and tested-cluster history carry over, and
        round numbering resumes where the previous call stopped.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be at least 1, got {rounds}")
        if round_budget < 1:
            raise ValueError(f"round_budget must be at least 1, got {round_budget}")
        self.prepare()
        growth = (
            corpus_growth
            if corpus_growth is not None
            else max(1, self.config.corpus_budget // 2)
        )
        campaign = CampaignResult(strategy=strategy, workers=max(1, workers))
        writer = None
        completed: frozenset = frozenset()
        round_records: Dict[int, Dict] = {}
        if checkpoint_path is not None:
            writer, completed, round_records = self._open_rounds_checkpoint(
                checkpoint_path,
                resume,
                campaign,
                strategy,
                rounds,
                round_budget,
                growth,
                scheduler_kind,
                trials,
                fsync=checkpoint_fsync,
            )
        start = time.perf_counter()
        try:
            for _ in range(rounds):
                self._run_round(
                    campaign,
                    strategy=strategy,
                    round_budget=round_budget,
                    growth=growth,
                    scheduler_kind=scheduler_kind,
                    trials=trials,
                    workers=workers,
                    completed=completed,
                    writer=writer,
                    round_records=round_records,
                    fleet=fleet,
                )
        finally:
            if writer is not None:
                writer.close()
        campaign.wall_seconds = time.perf_counter() - start
        self._finish_campaign_obs(campaign)
        return campaign

    def _run_round(
        self,
        campaign: CampaignResult,
        strategy: str,
        round_budget: int,
        growth: int,
        scheduler_kind: str,
        trials: Optional[int],
        workers: int,
        completed: frozenset,
        writer,
        round_records: Dict[int, Dict],
        fleet: str = "threads",
    ) -> RoundInfo:
        """Advance the campaign by one round."""
        from repro.orchestrate.persistence import verify_round_record

        state = self.state
        obs = self.obs
        number = state.round + 1
        trials_before = campaign.trials
        bugs_before = campaign.distinct_bugs
        with obs.span(f"round.{number}", strategy=strategy) as span:
            if number == 1:
                # Round one's Stage-1/2 work is prepare()'s full-budget
                # pass; everything in the campaign is new.
                new_tests = len(self.corpus)
                new_profiles = len(self.profiles)
                new_pmcs = len(self.pmcset)
                new_pairs = self.pmcset.total_pairs()
            else:
                new_tests = self._grow_corpus(growth)
                new_profiles, new_pmcs, new_pairs = self._ingest_new_tests()
            rng = selection_rng(self.config.seed, number)
            tests, nclusters = self.generate_tests(
                strategy, limit=round_budget, rng=rng, history=state.history
            )
            tests = tests[:round_budget]
            campaign.exemplar_pmcs = nclusters
            # Round boundary: make the spilled access records durable and
            # stamp the manifest digest into the round record, so a
            # resumed campaign proves it re-derived the same store state
            # ("" in memory mode keeps old journals byte-identical).  On
            # resume this returns the *historical* digest recorded for
            # this round, not one recomputed over later rounds' data.
            store_digest = state.index.checkpoint()
            info = RoundInfo(
                round=number,
                first_test_index=state.next_test_index,
                ntests=len(tests),
                corpus_size=len(self.corpus),
                new_corpus_tests=new_tests,
                new_profiles=new_profiles,
                pmcs_total=len(self.pmcset),
                new_pmcs=new_pmcs,
                new_pairs=new_pairs,
                exemplars=tuple(t.pmc for t in tests),
                store_digest=store_digest,
            )
            if writer is not None:
                stored = round_records.get(number)
                if stored is not None:
                    # Resumed: the round was journalled before the kill —
                    # the recomputation must land on the same facts.
                    verify_round_record(stored, info)
                else:
                    writer.round_begin(info)
            self._execute_tests(
                tests,
                campaign,
                scheduler_kind=scheduler_kind,
                trials=trials,
                workers=workers,
                completed=completed,
                writer=writer,
                task_offset=state.next_test_index,
                fleet=fleet,
            )
            state.next_test_index += len(tests)
            state.round = number
            state.rounds_log.append(info)
            if obs.enabled:
                span.set(
                    tests=len(tests),
                    corpus=len(self.corpus),
                    pmcs=len(self.pmcset),
                    new_pmcs=new_pmcs,
                )
        if obs.enabled:
            prefix = f"round.{number}"
            obs.count(f"{prefix}.tests", len(tests))
            obs.count(f"{prefix}.trials", campaign.trials - trials_before)
            obs.count(f"{prefix}.corpus_tests", new_tests)
            obs.count(f"{prefix}.profiles", new_profiles)
            obs.count(f"{prefix}.new_pmcs", new_pmcs)
            obs.count(f"{prefix}.bugs", campaign.distinct_bugs - bugs_before)
            obs.flush_metrics()
        return info

    def run_iterative_campaign(
        self,
        strategies: Sequence[str],
        test_budget: int = 50,
        trials: Optional[int] = None,
        workers: int = 1,
    ) -> CampaignResult:
        """The iterative composition of section 4.3's final paragraph.

        "Choose predicate A, test one exemplar from each A-cluster, then
        choose predicate B, test one exemplar from each B-cluster
        excluding those tested before" — applied across the given
        strategy names under one shared test budget.
        """
        from repro.pmc.composition import iterative_exemplars

        self.prepare()
        rng = random.Random(self.config.seed ^ 0x17E8)
        clusterings = [STRATEGIES_BY_NAME[name] for name in strategies]
        chosen = iterative_exemplars(
            self.pmcset.all_pmcs(), clusterings, rng, limit_per_strategy=test_budget
        )
        exemplars = [pmc for _, pmc in chosen][:test_budget]
        name = " -> ".join(strategies)
        campaign = CampaignResult(
            strategy=name, exemplar_pmcs=len(chosen), workers=max(1, workers)
        )
        tests = self.tests_from_exemplars(exemplars, rng)
        start = time.perf_counter()
        if workers <= 1:
            for test in tests:
                self.execute_test(test, campaign, trials=trials)
        else:
            self.execute_tests_parallel(tests, campaign, trials=trials, workers=workers)
        campaign.wall_seconds = time.perf_counter() - start
        self._finish_campaign_obs(campaign)
        return campaign
