"""Pipeline orchestration: the four Snowboard stages end to end.

`Snowboard` (the façade in :mod:`repro.orchestrate.pipeline`) wires
sequential test generation → profiling → PMC identification → clustered,
prioritised concurrent execution, and produces campaign statistics in the
shape of the paper's Tables 2 and 3.
"""

from repro.orchestrate.fleet import (
    WIRE_VERSION,
    FleetFault,
    ProcessFleet,
    ResultEnvelope,
    TaskEnvelope,
    WireFormatError,
    WorkerSpec,
)
from repro.orchestrate.pipeline import (
    ConcurrentTest,
    Snowboard,
    SnowboardConfig,
    Stage4Task,
    TrialOutcome,
    build_scheduler,
    run_task_trials,
)
from repro.orchestrate.queue import (
    TIMED_OUT,
    Task,
    TaskFailure,
    WorkQueue,
    run_workers,
)
from repro.orchestrate.results import CampaignResult, ObservationRecord

__all__ = [
    "ConcurrentTest",
    "FleetFault",
    "ProcessFleet",
    "ResultEnvelope",
    "Snowboard",
    "SnowboardConfig",
    "Stage4Task",
    "TaskEnvelope",
    "TrialOutcome",
    "TIMED_OUT",
    "Task",
    "TaskFailure",
    "WIRE_VERSION",
    "WireFormatError",
    "WorkQueue",
    "WorkerSpec",
    "build_scheduler",
    "run_task_trials",
    "run_workers",
    "CampaignResult",
    "ObservationRecord",
]
