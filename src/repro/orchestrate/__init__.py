"""Pipeline orchestration: the four Snowboard stages end to end.

`Snowboard` (the façade in :mod:`repro.orchestrate.pipeline`) wires
sequential test generation → profiling → PMC identification → clustered,
prioritised concurrent execution, and produces campaign statistics in the
shape of the paper's Tables 2 and 3.
"""

from repro.orchestrate.pipeline import (
    ConcurrentTest,
    Snowboard,
    SnowboardConfig,
    Stage4Task,
    TrialOutcome,
)
from repro.orchestrate.queue import (
    TIMED_OUT,
    Task,
    TaskFailure,
    WorkQueue,
    run_workers,
)
from repro.orchestrate.results import CampaignResult, ObservationRecord

__all__ = [
    "ConcurrentTest",
    "Snowboard",
    "SnowboardConfig",
    "Stage4Task",
    "TrialOutcome",
    "TIMED_OUT",
    "Task",
    "TaskFailure",
    "WorkQueue",
    "run_workers",
    "CampaignResult",
    "ObservationRecord",
]
