"""A lightweight distributed work queue (the Redis-queue analogue).

The paper distributes concurrent tests to cloud workers through a simple
queue (section 4.4.1).  This module provides the same topology in
process: a thread-safe FIFO of tasks, workers that pull and execute
them, and result collection.  Workers that test kernels must each own a
private kernel instance — the executor mutates machine state — which is
why ``run_workers`` takes a worker *factory*.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class Task:
    """One unit of work: an id and an opaque payload."""

    task_id: int
    payload: Any


class WorkQueue:
    """Thread-safe FIFO with completion tracking."""

    def __init__(self):
        self._queue: "queue.Queue[Optional[Task]]" = queue.Queue()
        self._results: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self._enqueued = 0

    def put(self, payload: Any) -> int:
        """Enqueue a payload; returns its task id."""
        with self._lock:
            task_id = self._enqueued
            self._enqueued += 1
        self._queue.put(Task(task_id, payload))
        return task_id

    def get(self, timeout: Optional[float] = None) -> Optional[Task]:
        """Dequeue one task (None means shutdown)."""
        return self._queue.get(timeout=timeout)

    def complete(self, task: Task, result: Any) -> None:
        with self._lock:
            self._results[task.task_id] = result

    def shutdown(self, nworkers: int) -> None:
        """Signal ``nworkers`` workers to exit."""
        for _ in range(nworkers):
            self._queue.put(None)

    @property
    def results(self) -> Dict[int, Any]:
        with self._lock:
            return dict(self._results)

    def pending(self) -> int:
        return self._queue.qsize()


def run_workers(
    work: WorkQueue,
    worker_factory: Callable[[], Callable[[Any], Any]],
    nworkers: int = 2,
) -> Dict[int, Any]:
    """Run all queued tasks across ``nworkers`` workers; returns results.

    ``worker_factory`` is invoked once per worker to build its private
    task function (e.g. booting a private kernel), mirroring one
    Snowboard execution instance per cloud VM.
    """

    def loop() -> None:
        execute = worker_factory()
        while True:
            task = work.get()
            if task is None:
                return
            try:
                outcome = execute(task.payload)
            except Exception as error:  # noqa: BLE001 - workers must survive
                # A failing task must not kill the worker (and silently
                # strand the rest of the queue); record the error as the
                # task's result instead.
                outcome = error
            work.complete(task, outcome)

    threads = [threading.Thread(target=loop, daemon=True) for _ in range(nworkers)]
    work.shutdown(nworkers)  # sentinels queued *after* real tasks: FIFO drains first
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return work.results
