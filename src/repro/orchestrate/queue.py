"""A lightweight distributed work queue (the Redis-queue analogue).

The paper distributes concurrent tests to cloud workers through a simple
queue (section 4.4.1).  This module provides the same topology in
process: a thread-safe FIFO of tasks, workers that pull and execute
them, and result collection.  Workers that test kernels must each own a
private kernel instance — the executor mutates machine state — which is
why ``run_workers`` takes a worker *factory*.

Fault model (the §4.4.1 fleet ran for weeks; ours must survive the same
failure classes in miniature):

* **Task failure** — the payload raises ``Exception``.  The task is
  retried in place up to ``max_task_retries`` times (payloads are
  deterministic, so re-execution is bit-identical); if the budget runs
  out the result is a :class:`TaskFailure`.
* **Worker death** — the factory raises while building a worker, or the
  payload raises ``BaseException`` (the in-process analogue of a VM
  dying mid-task).  The worker is respawned — its factory re-invoked to
  boot a fresh private kernel — up to ``max_worker_respawns`` times,
  after which the worker is marked failed and exits.
* **Pool exhaustion** — every worker is dead.  Remaining queued tasks
  are drained by the coordinator and recorded as :class:`TaskFailure`,
  so callers always get one result per task: no hang, no missing key.
"""

from __future__ import annotations

import builtins
import queue
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs import NULL_OBSERVER


@dataclass(frozen=True)
class Task:
    """One unit of work: an id and an opaque payload."""

    task_id: int
    payload: Any


@dataclass(frozen=True)
class TaskFailure:
    """A task whose payload raised instead of returning.

    Stored as the task's result so that a legitimately-returned exception
    object is distinguishable from a worker crash.  ``attempts`` counts
    how many times the payload was executed before giving up (0 when the
    task never ran — e.g. the worker pool died before claiming it).

    The failure is a *serializable record* of the exception — type name,
    message, formatted traceback, and the same for its ``__cause__`` —
    never the live ``BaseException``.  Live exceptions are frequently
    unpicklable (tracebacks pin frames; exception args can hold locks or
    whole kernels), which would poison any result channel that crosses a
    process boundary.  Build one with :meth:`from_exception`; the
    :attr:`error` property reconstructs a best-effort exception object
    for callers that want one.
    """

    task_id: int
    error_type: str = "RuntimeError"
    message: str = ""
    traceback_str: str = ""
    attempts: int = 1
    cause_type: str = ""
    cause_message: str = ""

    @classmethod
    def from_exception(
        cls, task_id: int, error: BaseException, attempts: int = 1
    ) -> "TaskFailure":
        """Capture a live exception (and its ``__cause__``) as a record."""
        cause = error.__cause__
        try:
            tb = "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            )
        except Exception:  # pragma: no cover - formatting never should fail
            tb = ""
        return cls(
            task_id=task_id,
            error_type=type(error).__name__,
            message=str(error),
            traceback_str=tb,
            attempts=attempts,
            cause_type=type(cause).__name__ if cause is not None else "",
            cause_message=str(cause) if cause is not None else "",
        )

    @staticmethod
    def _rebuild(type_name: str, message: str) -> BaseException:
        exc_type = getattr(builtins, type_name, None)
        if not (isinstance(exc_type, type) and issubclass(exc_type, BaseException)):
            return RuntimeError(f"{type_name}: {message}")
        try:
            return exc_type(message)
        except Exception:  # exotic constructor signature
            return RuntimeError(f"{type_name}: {message}")

    @property
    def error(self) -> BaseException:
        """A reconstructed exception (builtin types keep their class).

        Compatibility shim for callers that predate the serializable
        record; ``__cause__`` is re-chained when one was captured.
        """
        error = self._rebuild(self.error_type, self.message)
        if self.cause_type:
            error.__cause__ = self._rebuild(self.cause_type, self.cause_message)
        return error

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"task {self.task_id} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


@dataclass
class WorkerStats:
    """Per-worker fleet bookkeeping (tasks done, retries, respawns).

    The in-process analogue of per-VM health counters on the paper's GCP
    fleet: how much work the worker did, how often its tasks had to be
    retried, how often the worker itself had to be rebooted, and whether
    it eventually died for good.
    """

    worker_id: int
    tasks_done: int = 0
    retries: int = 0  # payload attempts that failed and were re-run
    respawns: int = 0  # factory rebuilds (boot crash or payload BaseException)
    heartbeats_missed: int = 0  # liveness deadlines blown (process/socket fleets)
    failed: bool = False  # respawn budget exhausted; worker permanently dead
    last_error: Optional[BaseException] = field(default=None, repr=False)


class _TimedOut:
    """Singleton sentinel for ``WorkQueue.get(timeout=...)`` expiry.

    The canonical instance is created exactly once, at module import
    (under the interpreter's import lock, so first instantiation cannot
    race), and ``__reduce__`` resolves any pickled copy back to it —
    ``pickle.loads(pickle.dumps(TIMED_OUT)) is TIMED_OUT`` holds even
    when the sentinel crosses a process boundary.
    """

    _instance: Optional["_TimedOut"] = None

    def __new__(cls) -> "_TimedOut":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_restore_timed_out, ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TIMED_OUT"


def _restore_timed_out() -> "_TimedOut":
    """Pickle reconstructor: always the canonical sentinel instance."""
    return TIMED_OUT


#: Returned by :meth:`WorkQueue.get` when the timeout expires with no task
#: available — distinct from ``None``, which means shutdown.
TIMED_OUT = _TimedOut()


class WorkQueue:
    """Thread-safe FIFO with completion tracking."""

    def __init__(self):
        self._queue: "queue.Queue[Optional[Task]]" = queue.Queue()
        self._results: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self._enqueued = 0
        # Real tasks enqueued but not yet dequeued.  Counted here rather
        # than derived from Queue.qsize(), which is documented-unreliable
        # and raises NotImplementedError on macOS multiprocessing queues.
        self._pending = 0
        # Per-worker stats of the last run_workers() fleet over this queue.
        self.worker_stats: List[WorkerStats] = []

    def put(self, payload: Any) -> int:
        """Enqueue a payload; returns its task id."""
        with self._lock:
            task_id = self._enqueued
            self._enqueued += 1
            self._pending += 1
        self._queue.put(Task(task_id, payload))
        return task_id

    def get(self, timeout: Optional[float] = None) -> Union[Task, None, _TimedOut]:
        """Dequeue one task.

        Returns ``None`` when a shutdown sentinel was drawn (the worker
        should exit) and :data:`TIMED_OUT` when ``timeout`` elapsed with
        nothing to dequeue — it never raises ``queue.Empty``.
        """
        try:
            task = self._queue.get(timeout=timeout)
        except queue.Empty:
            return TIMED_OUT
        if task is not None:
            with self._lock:
                self._pending = max(0, self._pending - 1)
        return task

    def complete(self, task: Task, result: Any) -> None:
        with self._lock:
            self._results[task.task_id] = result

    def has_result(self, task_id: int) -> bool:
        with self._lock:
            return task_id in self._results

    def shutdown(self, nworkers: int) -> None:
        """Signal ``nworkers`` workers to exit."""
        for _ in range(nworkers):
            self._queue.put(None)

    @property
    def results(self) -> Dict[int, Any]:
        with self._lock:
            return dict(self._results)

    def pending(self) -> int:
        """Real tasks still queued (shutdown sentinels excluded)."""
        with self._lock:
            return self._pending


def run_workers(
    work: WorkQueue,
    worker_factory: Callable[[], Callable[[Any], Any]],
    nworkers: int = 2,
    max_task_retries: int = 0,
    max_worker_respawns: int = 2,
    obs=NULL_OBSERVER,
) -> Dict[int, Any]:
    """Run all queued tasks across ``nworkers`` workers; returns results.

    ``worker_factory`` is invoked once per worker to build its private
    task function (e.g. booting a private kernel), mirroring one
    Snowboard execution instance per cloud VM.  The fault model is
    documented at module level: payload ``Exception``s are retried up to
    ``max_task_retries`` times and then recorded as :class:`TaskFailure`;
    a factory crash or a payload ``BaseException`` respawns the worker
    (fresh factory call) up to ``max_worker_respawns`` times; and if the
    whole pool dies, unclaimed tasks are drained into ``TaskFailure``
    results so every enqueued task has exactly one result.

    Per-worker counters are left in ``work.worker_stats``.
    """
    stats_list = [WorkerStats(worker_id=i) for i in range(nworkers)]

    def rebuild(stats: WorkerStats):
        """(Re)invoke the factory; None when the respawn budget is gone."""
        while True:
            try:
                return worker_factory()
            except Exception as error:  # noqa: BLE001 - boot crash != fatal
                stats.respawns += 1
                stats.last_error = error
                if stats.respawns > max_worker_respawns:
                    stats.failed = True
                    return None

    def loop(stats: WorkerStats) -> None:
        execute = rebuild(stats)
        while execute is not None:
            task = work.get()
            if task is TIMED_OUT:
                continue
            if task is None:
                return
            attempts = 0
            while True:
                attempts += 1
                try:
                    outcome = execute(task.payload)
                    stats.tasks_done += 1
                    break
                except Exception as error:  # noqa: BLE001 - workers survive
                    failure = TaskFailure.from_exception(
                        task.task_id, error, attempts=attempts
                    )
                except BaseException as error:  # worker-killing payload
                    # The in-process analogue of the VM dying mid-task:
                    # contain the blast radius, respawn a fresh worker,
                    # and re-run the (deterministic) task on it.
                    failure = TaskFailure.from_exception(
                        task.task_id, error, attempts=attempts
                    )
                    stats.respawns += 1
                    stats.last_error = error
                    if stats.respawns > max_worker_respawns:
                        stats.failed = True
                        work.complete(task, failure)
                        return
                    execute = rebuild(stats)
                    if execute is None:
                        work.complete(task, failure)
                        return
                if attempts > max_task_retries:
                    outcome = failure
                    break
                stats.retries += 1
            work.complete(task, outcome)

    threads = [
        threading.Thread(target=loop, args=(stats,), daemon=True)
        for stats in stats_list
    ]
    work.shutdown(nworkers)  # sentinels queued *after* real tasks: FIFO drains first
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Pool-exhaustion containment: workers that died without draining the
    # queue leave unclaimed tasks behind.  Record a TaskFailure for each
    # so callers see one result per task instead of a missing key.
    boot_error = next(
        (s.last_error for s in stats_list if s.failed and s.last_error), None
    )
    while True:
        task = work.get(timeout=0.001)
        if task is TIMED_OUT:
            break
        if task is None:
            continue
        if not work.has_result(task.task_id):
            error = RuntimeError(
                f"worker pool exhausted before task {task.task_id} ran"
            )
            error.__cause__ = boot_error
            work.complete(
                task, TaskFailure.from_exception(task.task_id, error, attempts=0)
            )

    work.worker_stats = stats_list
    if obs.enabled:
        # One health event per worker, in worker-id order (the fleet is
        # already joined, so counters are final and reads are race-free).
        for stats in stats_list:
            obs.event(
                "fleet.worker",
                worker_id=stats.worker_id,
                tasks_done=stats.tasks_done,
                retries=stats.retries,
                respawns=stats.respawns,
                heartbeats_missed=stats.heartbeats_missed,
                failed=stats.failed,
            )
    return work.results
