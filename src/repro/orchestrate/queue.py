"""A lightweight distributed work queue (the Redis-queue analogue).

The paper distributes concurrent tests to cloud workers through a simple
queue (section 4.4.1).  This module provides the same topology in
process: a thread-safe FIFO of tasks, workers that pull and execute
them, and result collection.  Workers that test kernels must each own a
private kernel instance — the executor mutates machine state — which is
why ``run_workers`` takes a worker *factory*.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union


@dataclass(frozen=True)
class Task:
    """One unit of work: an id and an opaque payload."""

    task_id: int
    payload: Any


@dataclass(frozen=True)
class TaskFailure:
    """A task whose payload raised instead of returning.

    Stored as the task's result so that a legitimately-returned exception
    object is distinguishable from a worker crash.
    """

    task_id: int
    error: BaseException

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"task {self.task_id} failed: {self.error!r}"


class _TimedOut:
    """Singleton sentinel for ``WorkQueue.get(timeout=...)`` expiry."""

    _instance: Optional["_TimedOut"] = None

    def __new__(cls) -> "_TimedOut":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TIMED_OUT"


#: Returned by :meth:`WorkQueue.get` when the timeout expires with no task
#: available — distinct from ``None``, which means shutdown.
TIMED_OUT = _TimedOut()


class WorkQueue:
    """Thread-safe FIFO with completion tracking."""

    def __init__(self):
        self._queue: "queue.Queue[Optional[Task]]" = queue.Queue()
        self._results: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self._enqueued = 0
        # Shutdown sentinels currently sitting in the queue; subtracted
        # from qsize so pending() reports only real tasks.
        self._sentinels = 0

    def put(self, payload: Any) -> int:
        """Enqueue a payload; returns its task id."""
        with self._lock:
            task_id = self._enqueued
            self._enqueued += 1
        self._queue.put(Task(task_id, payload))
        return task_id

    def get(self, timeout: Optional[float] = None) -> Union[Task, None, _TimedOut]:
        """Dequeue one task.

        Returns ``None`` when a shutdown sentinel was drawn (the worker
        should exit) and :data:`TIMED_OUT` when ``timeout`` elapsed with
        nothing to dequeue — it never raises ``queue.Empty``.
        """
        try:
            task = self._queue.get(timeout=timeout)
        except queue.Empty:
            return TIMED_OUT
        if task is None:
            with self._lock:
                self._sentinels = max(0, self._sentinels - 1)
        return task

    def complete(self, task: Task, result: Any) -> None:
        with self._lock:
            self._results[task.task_id] = result

    def shutdown(self, nworkers: int) -> None:
        """Signal ``nworkers`` workers to exit."""
        with self._lock:
            self._sentinels += nworkers
        for _ in range(nworkers):
            self._queue.put(None)

    @property
    def results(self) -> Dict[int, Any]:
        with self._lock:
            return dict(self._results)

    def pending(self) -> int:
        """Real tasks still queued (shutdown sentinels excluded)."""
        with self._lock:
            return max(0, self._queue.qsize() - self._sentinels)


def run_workers(
    work: WorkQueue,
    worker_factory: Callable[[], Callable[[Any], Any]],
    nworkers: int = 2,
) -> Dict[int, Any]:
    """Run all queued tasks across ``nworkers`` workers; returns results.

    ``worker_factory`` is invoked once per worker to build its private
    task function (e.g. booting a private kernel), mirroring one
    Snowboard execution instance per cloud VM.  A payload that raises
    must not kill its worker (and silently strand the rest of the
    queue); its result is recorded as a :class:`TaskFailure` wrapping
    the exception, which callers can count and report.
    """

    def loop() -> None:
        execute = worker_factory()
        while True:
            task = work.get()
            if task is TIMED_OUT:
                continue
            if task is None:
                return
            try:
                outcome = execute(task.payload)
            except Exception as error:  # noqa: BLE001 - workers must survive
                outcome = TaskFailure(task.task_id, error)
            work.complete(task, outcome)

    threads = [threading.Thread(target=loop, daemon=True) for _ in range(nworkers)]
    work.shutdown(nworkers)  # sentinels queued *after* real tasks: FIFO drains first
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return work.results
