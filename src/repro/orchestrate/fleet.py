"""Multi-process campaign fleet: coordinator/worker over a wire format.

The paper's real deployment pushed concurrent tests "to cloud workers
through a lightweight distributed queue" (§4.4.1) and ran for weeks on a
GCP fleet.  This module is that topology one rung up from the PR-2
thread fleet: a coordinator process owning the queue semantics, and N
worker *processes*, each booting a private kernel, connected only by
``multiprocessing`` queues.  Everything that crosses the boundary is a
versioned, fully picklable envelope — the same shape a real network
transport (Redis, gRPC) would carry.

Topology::

    coordinator ──(TaskEnvelope)──> inq[i] ──> worker i  (private kernel)
    coordinator <─(ResultEnvelope)─ results <── worker i

Each worker has a *private* dispatch queue and at most one outstanding
task; the assignment *is* the lease.  The fault model ports PR-2's
across the process boundary:

* **Task failure** — ``run_task_trials`` raises ``Exception`` in the
  worker.  The worker survives and reports a ``task_error`` envelope;
  the coordinator re-dispatches the (deterministic) task up to
  ``max_task_retries`` times, then records a
  :class:`~repro.orchestrate.queue.TaskFailure`.
* **Worker death** — the process exits without reporting (SIGKILL, OOM,
  a segfaulting extension): detected via ``Process.exitcode``, or via
  *lease expiry* when the process wedges without dying.  The leased task
  is reclaimed and re-dispatched (counting one retry, exactly like the
  thread fleet's ``BaseException`` path), and the worker is respawned —
  fresh process, fresh kernel — up to ``max_worker_respawns`` times.
* **Pool exhaustion** — every worker is dead for good.  Unfinished tasks
  are drained into ``TaskFailure`` results ("worker pool exhausted"),
  so callers always get one result per task: no hang, no missing key.

Determinism contract: schedulers are seeded ``config.seed + task_id``
and the coordinator merges results in task order, so a re-run after any
of the faults above — or a whole campaign under ``--fleet processes`` —
is bit-identical to serial and to thread workers.
"""

from __future__ import annotations

import os
import queue as stdqueue
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

from repro.detect.report import observation_from_obj, observation_to_obj
from repro.obs import NULL_OBSERVER
from repro.orchestrate.persistence import program_from_obj, program_to_obj
from repro.orchestrate.queue import TaskFailure, WorkerStats
from repro.pmc.model import AccessKey, PMC

#: Version stamp carried by every envelope; a coordinator and a worker
#: built from different checkouts must fail loudly, not mis-decode.
#: v2: outcome ``forked`` flag, task prefix-fork/prune-commuting knobs,
#: obs buffer prelude (the prefix-recording span).
WIRE_VERSION = 2


class WireFormatError(ValueError):
    """An envelope from an incompatible peer (version mismatch)."""


def _check_version(version: int, what: str) -> None:
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"{what} has wire version {version}, this side speaks {WIRE_VERSION}"
        )


# -- wire format: PMCs, outcomes, tasks, results -----------------------------------


def pmc_to_obj(pmc: PMC) -> Dict:
    """A plain-data representation of a PMC (wire/JSON-ready)."""
    return {
        "write": {
            "addr": pmc.write.addr,
            "size": pmc.write.size,
            "ins": pmc.write.ins,
            "value": pmc.write.value,
        },
        "read": {
            "addr": pmc.read.addr,
            "size": pmc.read.size,
            "ins": pmc.read.ins,
            "value": pmc.read.value,
        },
        "df_leader": pmc.df_leader,
    }


def pmc_from_obj(obj: Dict) -> PMC:
    """Rebuild a PMC from :func:`pmc_to_obj` output."""
    return PMC(
        write=AccessKey(**obj["write"]),
        read=AccessKey(**obj["read"]),
        df_leader=bool(obj.get("df_leader", False)),
    )


def outcome_to_obj(outcome) -> Dict:
    """A plain-data representation of one TrialOutcome."""
    return {
        "trial": outcome.trial,
        "instructions": outcome.instructions,
        "pages_restored": outcome.pages_restored,
        "restore_seconds": outcome.restore_seconds,
        "races": outcome.races,
        "observations": [observation_to_obj(o) for o in outcome.observations],
        "channel_hit": outcome.channel_hit,
        "switch_points": list(outcome.switch_points),
        "console": list(outcome.console),
        "panic_message": outcome.panic_message,
        "forked": outcome.forked,
    }


def outcome_from_obj(obj: Dict):
    """Rebuild a TrialOutcome from :func:`outcome_to_obj` output."""
    from repro.orchestrate.pipeline import TrialOutcome

    return TrialOutcome(
        trial=obj["trial"],
        instructions=obj["instructions"],
        pages_restored=obj["pages_restored"],
        restore_seconds=obj["restore_seconds"],
        races=obj["races"],
        observations=tuple(observation_from_obj(o) for o in obj["observations"]),
        channel_hit=obj["channel_hit"],
        switch_points=tuple(obj["switch_points"]),
        console=tuple(obj["console"]),
        panic_message=obj["panic_message"],
        forked=bool(obj["forked"]),
    )


@dataclass(frozen=True)
class TaskEnvelope:
    """One Stage-4 task on the wire: everything a worker needs to run it.

    Programs and PMCs travel as plain-data objects (no pipeline classes
    in the pickle stream); the incidental-adoption ``universe`` is
    precomputed coordinator-side because workers have no corpus to
    derive it from.
    """

    task_id: int
    writer: Tuple
    reader: Tuple
    writer_test: int
    reader_test: int
    trials: int
    scheduler_kind: str = "snowboard"
    pmc: Optional[Dict] = None
    universe: Optional[Tuple[Dict, ...]] = None
    prefix_fork: bool = True
    prune_commuting: bool = False
    version: int = WIRE_VERSION

    @classmethod
    def from_task(cls, task, universe: Optional[Sequence[PMC]] = None) -> "TaskEnvelope":
        test = task.test
        return cls(
            task_id=task.task_id,
            writer=tuple(program_to_obj(test.writer)),
            reader=tuple(program_to_obj(test.reader)),
            writer_test=test.writer_test,
            reader_test=test.reader_test,
            trials=task.trials,
            scheduler_kind=task.scheduler_kind,
            pmc=pmc_to_obj(test.pmc) if test.pmc is not None else None,
            universe=(
                tuple(pmc_to_obj(p) for p in universe) if universe is not None else None
            ),
            prefix_fork=task.prefix_fork,
            prune_commuting=task.prune_commuting,
        )

    def to_task(self):
        """Decode back into a Stage4Task (worker side)."""
        from repro.orchestrate.pipeline import ConcurrentTest, Stage4Task

        _check_version(self.version, f"task envelope {self.task_id}")
        test = ConcurrentTest(
            writer=program_from_obj(list(self.writer)),
            reader=program_from_obj(list(self.reader)),
            writer_test=self.writer_test,
            reader_test=self.reader_test,
            pmc=pmc_from_obj(self.pmc) if self.pmc is not None else None,
        )
        return Stage4Task(
            task_id=self.task_id,
            test=test,
            trials=self.trials,
            scheduler_kind=self.scheduler_kind,
            prefix_fork=self.prefix_fork,
            prune_commuting=self.prune_commuting,
        )

    def universe_pmcs(self) -> Optional[List[PMC]]:
        if self.universe is None:
            return None
        return [pmc_from_obj(o) for o in self.universe]


@dataclass(frozen=True)
class ResultEnvelope:
    """One task's result on the wire.

    ``status`` is ``"ok"`` (decode ``outcomes``/obs buffers) or
    ``"task_error"`` (the worker survived but the task raised; the error
    travels as the same serializable record :class:`TaskFailure` uses).
    """

    task_id: int
    worker_id: int
    status: str
    outcomes: Tuple[Dict, ...] = ()
    obs_prelude: Tuple[Dict, ...] = ()
    obs_trials: Tuple[Tuple[Dict, ...], ...] = ()
    obs_tail: Tuple[Dict, ...] = ()
    error_type: str = ""
    message: str = ""
    traceback_str: str = ""
    version: int = WIRE_VERSION

    def decode(self):
        """Return ``(outcomes, obs_buffer)``; buffer is None when tracing
        was off in the worker."""
        _check_version(self.version, f"result envelope {self.task_id}")
        outcomes = [outcome_from_obj(o) for o in self.outcomes]
        buffer = None
        if self.obs_prelude or self.obs_trials or self.obs_tail:
            buffer = {
                "prelude": list(self.obs_prelude),
                "trials": [list(chunk) for chunk in self.obs_trials],
                "tail": list(self.obs_tail),
            }
        return outcomes, buffer


@dataclass(frozen=True)
class _BootFailed:
    """Worker → coordinator: the private kernel failed to boot.

    Carries the worker's spawn ``generation`` so the coordinator can
    discard a stale report — the exitcode path may have noticed the
    death and respawned the slot before this message drained, and the
    replacement must not be punished for its predecessor's crash.
    """

    worker_id: int
    generation: int
    error_type: str
    message: str
    traceback_str: str


# -- fault injection ---------------------------------------------------------------


@dataclass(frozen=True)
class FleetFault:
    """Test-only fault injection shipped to workers inside the spec.

    Real campaigns never set one; the fault-injection tests use it to
    make a worker SIGKILL itself mid-task (``kill_task_id``), wedge
    without dying (``hang_task_id``, exercising lease expiry) or die
    during boot (``kill_at_boot``).  ``once_marker`` names a file
    claimed atomically (O_CREAT|O_EXCL) so the fault fires exactly once
    across all worker processes and respawns; without it the fault fires
    every time (e.g. to exhaust the respawn budget).
    """

    kill_task_id: Optional[int] = None
    hang_task_id: Optional[int] = None
    kill_at_boot: bool = False
    once_marker: Optional[str] = None

    def claim(self) -> bool:
        """True when this process should fire the fault."""
        if self.once_marker is None:
            return True
        try:
            fd = os.open(self.once_marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


# -- worker process ----------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to boot — fully picklable.

    ``config`` is the campaign's SnowboardConfig (seed, budgets, fixed
    kernel, setup program); ``obs_epoch`` is the coordinator tracer's
    epoch so buffered worker events replay with comparable timestamps.
    """

    config: Any
    obs_enabled: bool = False
    obs_epoch: float = 0.0
    fault: Optional[FleetFault] = None


def _boot_worker(spec: WorkerSpec):
    """Boot one worker's private kernel (the §4.4.1 VM analogue)."""
    from repro.kernel.kernel import boot_kernel
    from repro.orchestrate.pipeline import derive_initial_state
    from repro.sched.executor import Executor

    config = spec.config
    kernel, snapshot = boot_kernel(fixed=config.fixed_kernel)
    if config.setup_program is not None:
        snapshot = derive_initial_state(kernel, snapshot, config.setup_program)
    return Executor(kernel, snapshot, max_instructions=config.max_instructions)


def _execute_envelope(executor, spec: WorkerSpec, worker_id: int, envelope: TaskEnvelope):
    """Run one task envelope; never raises (errors become envelopes)."""
    from repro.orchestrate.pipeline import build_scheduler, run_task_trials

    try:
        task = envelope.to_task()
        scheduler = build_scheduler(
            spec.config,
            task.test,
            seed=spec.config.seed + task.task_id,
            kind=task.scheduler_kind,
            universe=envelope.universe_pmcs(),
        )
        outcomes, buffer = run_task_trials(
            executor,
            task,
            scheduler,
            obs_epoch=spec.obs_epoch if spec.obs_enabled else None,
        )
    except Exception as error:  # noqa: BLE001 - workers survive task errors
        return ResultEnvelope(
            task_id=envelope.task_id,
            worker_id=worker_id,
            status="task_error",
            error_type=type(error).__name__,
            message=str(error),
            traceback_str=traceback.format_exc(),
        )
    return ResultEnvelope(
        task_id=envelope.task_id,
        worker_id=worker_id,
        status="ok",
        outcomes=tuple(outcome_to_obj(o) for o in outcomes),
        obs_prelude=tuple(buffer["prelude"]) if buffer else (),
        obs_trials=(
            tuple(tuple(chunk) for chunk in buffer["trials"]) if buffer else ()
        ),
        obs_tail=tuple(buffer["tail"]) if buffer else (),
    )


def fleet_worker_main(
    worker_id: int, generation: int, spec: WorkerSpec, inq, outq
) -> None:
    """Entry point of one worker process.

    Boot a private kernel (reporting :class:`_BootFailed` and exiting if
    that raises), then serve envelopes from the private dispatch queue
    until the ``None`` shutdown sentinel arrives.
    """
    fault = spec.fault
    if fault is not None and fault.kill_at_boot and fault.claim():
        os.kill(os.getpid(), signal.SIGKILL)
    try:
        executor = _boot_worker(spec)
    except Exception as error:  # noqa: BLE001 - boot crash -> respawn decision
        outq.put(
            _BootFailed(
                worker_id,
                generation,
                type(error).__name__,
                str(error),
                traceback.format_exc(),
            )
        )
        return
    while True:
        envelope = inq.get()
        if envelope is None:
            return
        if fault is not None and envelope.task_id == fault.kill_task_id and fault.claim():
            os.kill(os.getpid(), signal.SIGKILL)
        if fault is not None and envelope.task_id == fault.hang_task_id and fault.claim():
            time.sleep(3600.0)
        outq.put(_execute_envelope(executor, spec, worker_id, envelope))


# -- coordinator -------------------------------------------------------------------


@dataclass
class _WorkerSlot:
    """Coordinator-side state of one worker: process, dispatch queue,
    current lease and its deadline, health counters."""

    worker_id: int
    stats: WorkerStats
    process: Optional[Any] = None
    inq: Optional[Any] = None
    lease: Optional[TaskEnvelope] = None
    deadline: float = 0.0
    generation: int = 0


class ProcessFleet:
    """Coordinator over N worker processes (the §4.4.1 queue in miniature).

    :meth:`run` dispatches :class:`TaskEnvelope`s, enforces the lease
    protocol described in the module docstring, and returns one result —
    a :class:`ResultEnvelope` or a :class:`TaskFailure` — per envelope.
    Per-worker health counters are left in :attr:`worker_stats`, in the
    same shape the thread fleet leaves on its ``WorkQueue``.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        nworkers: int = 2,
        max_task_retries: int = 0,
        max_worker_respawns: int = 2,
        lease_timeout: float = 120.0,
        poll_interval: float = 0.02,
        start_method: str = "spawn",
        obs=NULL_OBSERVER,
    ):
        self.spec = spec
        self.nworkers = max(1, nworkers)
        self.max_task_retries = max_task_retries
        self.max_worker_respawns = max_worker_respawns
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.obs = obs
        self._ctx = mp.get_context(start_method)
        self._results_q = None
        self.worker_stats: List[WorkerStats] = []

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, slot: _WorkerSlot) -> None:
        """Start (or restart) one worker process with a fresh dispatch
        queue — fresh so a task dispatched to a dead worker can never be
        double-claimed by its successor."""
        slot.generation += 1
        slot.inq = self._ctx.Queue()
        slot.process = self._ctx.Process(
            target=fleet_worker_main,
            args=(slot.worker_id, slot.generation, self.spec, slot.inq, self._results_q),
            daemon=True,
        )
        slot.process.start()
        slot.lease = None

    def _retire(self, slot: _WorkerSlot) -> None:
        """Drop a dead worker's process handle and dispatch queue."""
        if slot.process is not None:
            slot.process.join(timeout=5.0)
            if slot.process.is_alive():  # pragma: no cover - last resort
                slot.process.kill()
                slot.process.join(timeout=5.0)
        slot.process = None
        if slot.inq is not None:
            slot.inq.close()
            slot.inq = None

    def _shutdown(self, slots: List[_WorkerSlot]) -> None:
        for slot in slots:
            if slot.process is not None and slot.inq is not None:
                try:
                    slot.inq.put(None)
                except Exception:  # pragma: no cover - feeder already gone
                    pass
        for slot in slots:
            if slot.process is not None:
                slot.process.join(timeout=5.0)
                if slot.process.is_alive():  # pragma: no cover - stragglers
                    slot.process.kill()
                    slot.process.join(timeout=5.0)
            slot.process = None

    # -- fault handling -------------------------------------------------------

    def _record_worker_error(self, stats: WorkerStats, message: str) -> None:
        stats.last_error = RuntimeError(message)

    def _handle_death(
        self,
        slot: _WorkerSlot,
        reason: str,
        pending: List[TaskEnvelope],
        results: Dict[int, Any],
        attempts: Dict[int, int],
    ) -> None:
        """One worker died (exitcode, boot failure, or expired lease):
        reclaim its lease, charge a respawn, restart or retire it.

        Mirrors the thread fleet's ``BaseException`` semantics: the
        reclaimed task consumes one retry; when the worker's respawn
        budget is exhausted its leased task fails with it.
        """
        stats = slot.stats
        lease = slot.lease
        slot.lease = None
        self._retire(slot)
        stats.respawns += 1
        self._record_worker_error(stats, reason)
        out_of_respawns = stats.respawns > self.max_worker_respawns
        if out_of_respawns:
            stats.failed = True
        if self.obs.enabled:
            self.obs.event(
                "fleet.worker_died",
                worker_id=slot.worker_id,
                reason=reason,
                task=lease.task_id if lease is not None else None,
                respawned=not out_of_respawns,
            )
        if lease is not None and lease.task_id not in results:
            task_id = lease.task_id
            attempts[task_id] = attempts.get(task_id, 0) + 1
            if out_of_respawns or attempts[task_id] > self.max_task_retries:
                results[task_id] = TaskFailure(
                    task_id=task_id,
                    error_type="RuntimeError",
                    message=f"worker {slot.worker_id} died mid-task: {reason}",
                    attempts=attempts[task_id],
                )
            else:
                stats.retries += 1
                # Reclaimed leases go to the front: the task was next in
                # line before the death, and re-running it soonest keeps
                # retry latency bounded.
                pending.insert(0, lease)
                if self.obs.enabled:
                    self.obs.event(
                        "fleet.lease_reclaimed", task=task_id, reason=reason
                    )
        if not out_of_respawns:
            self._spawn(slot)

    def _handle_message(
        self,
        msg,
        slots: List[_WorkerSlot],
        pending: List[TaskEnvelope],
        results: Dict[int, Any],
        attempts: Dict[int, int],
    ) -> None:
        if isinstance(msg, _BootFailed):
            slot = slots[msg.worker_id]
            if msg.generation != slot.generation:
                return  # stale: the exitcode path already handled this death
            self._handle_death(
                slot,
                f"boot failed: {msg.error_type}: {msg.message}",
                pending,
                results,
                attempts,
            )
            return
        slot = slots[msg.worker_id]
        if slot.lease is not None and slot.lease.task_id == msg.task_id:
            lease = slot.lease
            slot.lease = None
        else:
            # A result for a task this worker no longer leases: its lease
            # expired and the task was reclaimed, but the worker was
            # merely slow, not dead.  First result wins (both executions
            # are bit-identical anyway); drop the duplicate.
            lease = None
        if msg.task_id in results:
            return
        if msg.status == "ok":
            slot.stats.tasks_done += 1
            results[msg.task_id] = msg
            return
        # task_error: the worker survived; retry on any live worker.
        attempts[msg.task_id] = attempts.get(msg.task_id, 0) + 1
        self._record_worker_error(
            slot.stats, f"{msg.error_type}: {msg.message}"
        )
        if attempts[msg.task_id] <= self.max_task_retries:
            slot.stats.retries += 1
            envelope = lease if lease is not None else self._envelope_by_id[msg.task_id]
            pending.insert(0, envelope)
        else:
            results[msg.task_id] = TaskFailure(
                task_id=msg.task_id,
                error_type=msg.error_type,
                message=msg.message,
                traceback_str=msg.traceback_str,
                attempts=attempts[msg.task_id],
            )

    # -- main loop ------------------------------------------------------------

    def _assign(
        self,
        slots: List[_WorkerSlot],
        pending: List[TaskEnvelope],
        results: Dict[int, Any],
    ) -> None:
        for slot in slots:
            if not pending:
                return
            if slot.process is None or slot.lease is not None:
                continue
            while pending and pending[0].task_id in results:
                pending.pop(0)  # failed via another path while queued
            if not pending:
                return
            envelope = pending.pop(0)
            slot.lease = envelope
            slot.deadline = time.monotonic() + self.lease_timeout
            slot.inq.put(envelope)

    def _drain(
        self,
        slots: List[_WorkerSlot],
        pending: List[TaskEnvelope],
        results: Dict[int, Any],
        attempts: Dict[int, int],
        block: bool = True,
    ) -> None:
        """Process queued results: one blocking poll, then everything
        immediately available."""
        try:
            msg = self._results_q.get(timeout=self.poll_interval if block else 0)
        except stdqueue.Empty:
            return
        self._handle_message(msg, slots, pending, results, attempts)
        while True:
            try:
                msg = self._results_q.get_nowait()
            except stdqueue.Empty:
                return
            self._handle_message(msg, slots, pending, results, attempts)

    def _reap(
        self,
        slots: List[_WorkerSlot],
        pending: List[TaskEnvelope],
        results: Dict[int, Any],
        attempts: Dict[int, int],
    ) -> None:
        """Detect dead and wedged workers (exitcode / lease expiry)."""
        now = time.monotonic()
        for slot in slots:
            if slot.process is None:
                continue
            if slot.process.exitcode is not None:
                self._handle_death(
                    slot,
                    f"process exited with code {slot.process.exitcode}",
                    pending,
                    results,
                    attempts,
                )
            elif slot.lease is not None and now > slot.deadline:
                slot.process.kill()
                self._handle_death(
                    slot,
                    f"lease expired after {self.lease_timeout:.1f}s",
                    pending,
                    results,
                    attempts,
                )

    def _drain_exhausted(
        self,
        slots: List[_WorkerSlot],
        expected: Sequence[int],
        results: Dict[int, Any],
        attempts: Dict[int, int],
    ) -> None:
        """Pool exhaustion: every worker is dead for good.  Record a
        TaskFailure for every unfinished task, chaining the last worker
        error as the cause (the thread fleet's drain, ported)."""
        boot_error = next(
            (
                str(slot.stats.last_error)
                for slot in slots
                if slot.stats.failed and slot.stats.last_error is not None
            ),
            "",
        )
        for task_id in expected:
            if task_id in results:
                continue
            results[task_id] = TaskFailure(
                task_id=task_id,
                error_type="RuntimeError",
                message=f"worker pool exhausted before task {task_id} ran",
                attempts=attempts.get(task_id, 0),
                cause_type="RuntimeError" if boot_error else "",
                cause_message=boot_error,
            )

    def run(self, envelopes: Sequence[TaskEnvelope]) -> Dict[int, Any]:
        """Execute all envelopes; returns a result per task id.

        Values are :class:`ResultEnvelope` (decode for outcomes) or
        :class:`TaskFailure`.  The mapping always covers every input
        task id, whatever died along the way.
        """
        expected = [e.task_id for e in envelopes]
        if len(set(expected)) != len(expected):
            raise ValueError("duplicate task ids in fleet dispatch")
        if not envelopes:
            self.worker_stats = [
                WorkerStats(worker_id=i) for i in range(self.nworkers)
            ]
            return {}
        self._envelope_by_id = {e.task_id: e for e in envelopes}
        self._results_q = self._ctx.Queue()
        slots = [_WorkerSlot(i, WorkerStats(worker_id=i)) for i in range(self.nworkers)]
        self.worker_stats = [slot.stats for slot in slots]
        pending: List[TaskEnvelope] = sorted(envelopes, key=lambda e: e.task_id)
        results: Dict[int, Any] = {}
        attempts: Dict[int, int] = {}
        for slot in slots:
            self._spawn(slot)
        try:
            while len(results) < len(expected):
                self._assign(slots, pending, results)
                self._drain(slots, pending, results, attempts)
                self._reap(slots, pending, results, attempts)
                if all(slot.process is None for slot in slots):
                    # Late messages may still sit in the queue (a worker
                    # can report and die before the coordinator looks).
                    self._drain(slots, pending, results, attempts, block=False)
                    self._drain_exhausted(slots, expected, results, attempts)
        finally:
            self._shutdown(slots)
        if self.obs.enabled:
            # One health event per worker, in worker-id order — the same
            # records the thread fleet emits, so traces stay comparable.
            for slot in slots:
                stats = slot.stats
                self.obs.event(
                    "fleet.worker",
                    worker_id=stats.worker_id,
                    tasks_done=stats.tasks_done,
                    retries=stats.retries,
                    respawns=stats.respawns,
                    failed=stats.failed,
                )
        return results
