"""Transport-agnostic campaign fleet: coordinator/worker over a wire format.

The paper's real deployment pushed concurrent tests "to cloud workers
through a lightweight distributed queue" (§4.4.1) and ran for weeks on a
GCP fleet.  This module is the coordinator half of that topology: a
:class:`FleetCoordinator` owning queue semantics (leases, retries,
respawns, pool-exhaustion drain) over an abstract *transport* — the
thing that actually moves envelopes to workers and back.  Two transports
exist today:

* :class:`~repro.orchestrate.transport.MultiprocessingTransport` — N
  local worker processes connected by ``multiprocessing`` queues
  (``--fleet processes``).
* :class:`~repro.orchestrate.socketfleet.SocketTransport` — workers
  connected over TCP with length-prefixed JSON frames of the same
  envelopes (``--fleet sockets``; workers join via
  ``repro fleet-worker --connect HOST:PORT``).

Topology::

    coordinator ──(TaskEnvelope)──> transport ──> worker i  (private kernel)
    coordinator <─(ResultEnvelope │ HeartbeatEnvelope)─ transport <── worker i

Each worker has at most one outstanding task; the assignment *is* the
lease.  Liveness is message-based, not handle-based: every worker emits
a :class:`HeartbeatEnvelope` on the results channel every
``heartbeat_interval`` seconds (starting *before* its kernel boots), and
the coordinator declares a worker dead when no beat arrives for
``heartbeat_timeout`` seconds (``boot_grace`` covers the spawn-to-first-
beat window).  No ``Process.exitcode`` is consulted anywhere, which is
what lets a socket worker on another machine participate in the same
lease protocol.  The fault model:

* **Task failure** — ``run_task_trials`` raises ``Exception`` in the
  worker.  The worker survives and reports a ``task_error`` envelope;
  the coordinator re-dispatches the (deterministic) task up to
  ``max_task_retries`` times, then records a
  :class:`~repro.orchestrate.queue.TaskFailure`.
* **Worker death** — the worker stops beating (SIGKILL, OOM, a
  segfaulting extension, a dropped network link), or its lease expires
  while it still beats (wedged).  Before reclaiming, the coordinator
  drains the results channel: a final result already queued wins and the
  task is *not* charged a retry.  Otherwise the leased task is reclaimed
  and re-dispatched (counting one retry), and the worker is respawned —
  fresh process or fresh connection slot, fresh kernel — up to
  ``max_worker_respawns`` times.  Results and beats carry the worker's
  spawn ``generation``; anything stamped with a stale generation is
  discarded, so a reclaimed-then-slow predecessor can never corrupt its
  successor's accounting.
* **Pool exhaustion** — every worker is dead for good.  Unfinished tasks
  are drained into ``TaskFailure`` results ("worker pool exhausted"),
  so callers always get one result per task: no hang, no missing key.

Determinism contract: schedulers are seeded ``config.seed + task_id``
and the coordinator merges results in task order, so a re-run after any
of the faults above — or a whole campaign under ``--fleet processes`` or
``--fleet sockets`` — is bit-identical to serial and to thread workers.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.detect.report import observation_from_obj, observation_to_obj
from repro.obs import NULL_OBSERVER
from repro.orchestrate.persistence import program_from_obj, program_to_obj
from repro.orchestrate.queue import TaskFailure, WorkerStats
from repro.pmc.model import AccessKey, PMC

#: Version stamp carried by every envelope; a coordinator and a worker
#: built from different checkouts must fail loudly, not mis-decode.
#: v2: outcome ``forked`` flag, task prefix-fork/prune-commuting knobs,
#: obs buffer prelude (the prefix-recording span).
#: v3: heartbeat liveness (``HeartbeatEnvelope``/``HelloEnvelope``),
#: spawn ``generation`` stamped on results, socket transport framing.
WIRE_VERSION = 3


class WireFormatError(ValueError):
    """An envelope from an incompatible peer (version mismatch)."""


def _check_version(version: int, what: str) -> None:
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"{what} has wire version {version}, this side speaks {WIRE_VERSION}"
        )


# -- wire format: PMCs, outcomes, tasks, results -----------------------------------


def pmc_to_obj(pmc: PMC) -> Dict:
    """A plain-data representation of a PMC (wire/JSON-ready)."""
    return {
        "write": {
            "addr": pmc.write.addr,
            "size": pmc.write.size,
            "ins": pmc.write.ins,
            "value": pmc.write.value,
        },
        "read": {
            "addr": pmc.read.addr,
            "size": pmc.read.size,
            "ins": pmc.read.ins,
            "value": pmc.read.value,
        },
        "df_leader": pmc.df_leader,
    }


def pmc_from_obj(obj: Dict) -> PMC:
    """Rebuild a PMC from :func:`pmc_to_obj` output."""
    return PMC(
        write=AccessKey(**obj["write"]),
        read=AccessKey(**obj["read"]),
        df_leader=bool(obj.get("df_leader", False)),
    )


def outcome_to_obj(outcome) -> Dict:
    """A plain-data representation of one TrialOutcome."""
    return {
        "trial": outcome.trial,
        "instructions": outcome.instructions,
        "pages_restored": outcome.pages_restored,
        "restore_seconds": outcome.restore_seconds,
        "races": outcome.races,
        "observations": [observation_to_obj(o) for o in outcome.observations],
        "channel_hit": outcome.channel_hit,
        "switch_points": list(outcome.switch_points),
        "console": list(outcome.console),
        "panic_message": outcome.panic_message,
        "forked": outcome.forked,
    }


def outcome_from_obj(obj: Dict):
    """Rebuild a TrialOutcome from :func:`outcome_to_obj` output."""
    from repro.orchestrate.pipeline import TrialOutcome

    return TrialOutcome(
        trial=obj["trial"],
        instructions=obj["instructions"],
        pages_restored=obj["pages_restored"],
        restore_seconds=obj["restore_seconds"],
        races=obj["races"],
        observations=tuple(observation_from_obj(o) for o in obj["observations"]),
        channel_hit=obj["channel_hit"],
        switch_points=tuple(obj["switch_points"]),
        console=tuple(obj["console"]),
        panic_message=obj["panic_message"],
        forked=bool(obj["forked"]),
    )


@dataclass(frozen=True)
class TaskEnvelope:
    """One Stage-4 task on the wire: everything a worker needs to run it.

    Programs and PMCs travel as plain-data objects (no pipeline classes
    in the pickle stream); the incidental-adoption ``universe`` is
    precomputed coordinator-side because workers have no corpus to
    derive it from.
    """

    task_id: int
    writer: Tuple
    reader: Tuple
    writer_test: int
    reader_test: int
    trials: int
    scheduler_kind: str = "snowboard"
    pmc: Optional[Dict] = None
    universe: Optional[Tuple[Dict, ...]] = None
    prefix_fork: bool = True
    prune_commuting: bool = False
    version: int = WIRE_VERSION

    @classmethod
    def from_task(cls, task, universe: Optional[Sequence[PMC]] = None) -> "TaskEnvelope":
        test = task.test
        return cls(
            task_id=task.task_id,
            writer=tuple(program_to_obj(test.writer)),
            reader=tuple(program_to_obj(test.reader)),
            writer_test=test.writer_test,
            reader_test=test.reader_test,
            trials=task.trials,
            scheduler_kind=task.scheduler_kind,
            pmc=pmc_to_obj(test.pmc) if test.pmc is not None else None,
            universe=(
                tuple(pmc_to_obj(p) for p in universe) if universe is not None else None
            ),
            prefix_fork=task.prefix_fork,
            prune_commuting=task.prune_commuting,
        )

    def to_task(self):
        """Decode back into a Stage4Task (worker side)."""
        from repro.orchestrate.pipeline import ConcurrentTest, Stage4Task

        _check_version(self.version, f"task envelope {self.task_id}")
        test = ConcurrentTest(
            writer=program_from_obj(list(self.writer)),
            reader=program_from_obj(list(self.reader)),
            writer_test=self.writer_test,
            reader_test=self.reader_test,
            pmc=pmc_from_obj(self.pmc) if self.pmc is not None else None,
        )
        return Stage4Task(
            task_id=self.task_id,
            test=test,
            trials=self.trials,
            scheduler_kind=self.scheduler_kind,
            prefix_fork=self.prefix_fork,
            prune_commuting=self.prune_commuting,
        )

    def universe_pmcs(self) -> Optional[List[PMC]]:
        if self.universe is None:
            return None
        return [pmc_from_obj(o) for o in self.universe]


@dataclass(frozen=True)
class ResultEnvelope:
    """One task's result on the wire.

    ``status`` is ``"ok"`` (decode ``outcomes``/obs buffers) or
    ``"task_error"`` (the worker survived but the task raised; the error
    travels as the same serializable record :class:`TaskFailure` uses).
    ``generation`` is the spawn generation the producing worker was
    handed at boot/handshake; the coordinator discards results whose
    generation no longer matches the slot (a reclaimed predecessor
    reporting late).  ``-1`` means "unstamped" — accepted for
    compatibility with hand-built envelopes in tests.
    """

    task_id: int
    worker_id: int
    status: str
    outcomes: Tuple[Dict, ...] = ()
    obs_prelude: Tuple[Dict, ...] = ()
    obs_trials: Tuple[Tuple[Dict, ...], ...] = ()
    obs_tail: Tuple[Dict, ...] = ()
    error_type: str = ""
    message: str = ""
    traceback_str: str = ""
    generation: int = -1
    version: int = WIRE_VERSION

    def decode(self):
        """Return ``(outcomes, obs_buffer)``; buffer is None when tracing
        was off in the worker."""
        _check_version(self.version, f"result envelope {self.task_id}")
        outcomes = [outcome_from_obj(o) for o in self.outcomes]
        buffer = None
        if self.obs_prelude or self.obs_trials or self.obs_tail:
            buffer = {
                "prelude": list(self.obs_prelude),
                "trials": [list(chunk) for chunk in self.obs_trials],
                "tail": list(self.obs_tail),
            }
        return outcomes, buffer


@dataclass(frozen=True)
class HeartbeatEnvelope:
    """Worker → coordinator: "generation g of worker w is alive".

    Emitted every ``heartbeat_interval`` seconds from a thread started
    *before* the worker's kernel boots, so a slow boot never reads as a
    death.  Stale generations (a killed predecessor's last beats still
    draining) are ignored by the coordinator.
    """

    worker_id: int
    generation: int
    version: int = WIRE_VERSION


@dataclass(frozen=True)
class HelloEnvelope:
    """Worker → coordinator: first message after spawn/handshake.

    Carries the worker's wire version so an incompatible build is
    rejected with :class:`WireFormatError` *before* any envelope of its
    making is decoded.  Doubles as the first liveness signal.
    """

    worker_id: int
    generation: int
    version: int = WIRE_VERSION


@dataclass(frozen=True)
class _BootFailed:
    """Worker → coordinator: the private kernel failed to boot.

    Carries the worker's spawn ``generation`` so the coordinator can
    discard a stale report — the heartbeat path may have noticed the
    death and respawned the slot before this message drained, and the
    replacement must not be punished for its predecessor's crash.
    """

    worker_id: int
    generation: int
    error_type: str
    message: str
    traceback_str: str


# -- fault injection ---------------------------------------------------------------


@dataclass(frozen=True)
class FleetFault:
    """Test-only fault injection shipped to workers inside the spec.

    Real campaigns never set one; the fault-injection tests use it to
    make a worker SIGKILL itself mid-task (``kill_task_id``), wedge
    without dying (``hang_task_id``, exercising lease expiry) or die
    during boot (``kill_at_boot``).  ``once_marker`` names a file
    claimed atomically (O_CREAT|O_EXCL) so the fault fires exactly once
    across all worker processes and respawns; without it the fault fires
    every time (e.g. to exhaust the respawn budget).
    """

    kill_task_id: Optional[int] = None
    hang_task_id: Optional[int] = None
    kill_at_boot: bool = False
    once_marker: Optional[str] = None

    def claim(self) -> bool:
        """True when this process should fire the fault."""
        if self.once_marker is None:
            return True
        try:
            fd = os.open(self.once_marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


# -- worker body -------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to boot — fully picklable and JSON-able.

    ``config`` is the campaign's SnowboardConfig (seed, budgets, fixed
    kernel, setup program); ``obs_epoch`` is the coordinator tracer's
    epoch so buffered worker events replay with comparable timestamps;
    ``heartbeat_interval`` paces the worker's liveness beats.
    """

    config: Any
    obs_enabled: bool = False
    obs_epoch: float = 0.0
    fault: Optional[FleetFault] = None
    heartbeat_interval: float = 0.5


def _boot_worker(spec: WorkerSpec):
    """Boot one worker's private kernel (the §4.4.1 VM analogue)."""
    from repro.kernel.kernel import boot_kernel
    from repro.orchestrate.pipeline import derive_initial_state
    from repro.sched.executor import Executor

    config = spec.config
    kernel, snapshot = boot_kernel(fixed=config.fixed_kernel)
    if config.setup_program is not None:
        snapshot = derive_initial_state(kernel, snapshot, config.setup_program)
    return Executor(kernel, snapshot, max_instructions=config.max_instructions)


def _execute_envelope(
    executor,
    spec: WorkerSpec,
    worker_id: int,
    envelope: TaskEnvelope,
    generation: int = -1,
):
    """Run one task envelope; never raises (errors become envelopes)."""
    from repro.orchestrate.pipeline import build_scheduler, run_task_trials

    try:
        task = envelope.to_task()
        scheduler = build_scheduler(
            spec.config,
            task.test,
            seed=spec.config.seed + task.task_id,
            kind=task.scheduler_kind,
            universe=envelope.universe_pmcs(),
        )
        outcomes, buffer = run_task_trials(
            executor,
            task,
            scheduler,
            obs_epoch=spec.obs_epoch if spec.obs_enabled else None,
        )
    except Exception as error:  # noqa: BLE001 - workers survive task errors
        return ResultEnvelope(
            task_id=envelope.task_id,
            worker_id=worker_id,
            status="task_error",
            error_type=type(error).__name__,
            message=str(error),
            traceback_str=traceback.format_exc(),
            generation=generation,
        )
    return ResultEnvelope(
        task_id=envelope.task_id,
        worker_id=worker_id,
        status="ok",
        outcomes=tuple(outcome_to_obj(o) for o in outcomes),
        obs_prelude=tuple(buffer["prelude"]) if buffer else (),
        obs_trials=(
            tuple(tuple(chunk) for chunk in buffer["trials"]) if buffer else ()
        ),
        obs_tail=tuple(buffer["tail"]) if buffer else (),
        generation=generation,
    )


def start_heartbeat(beat, interval: float) -> threading.Event:
    """Start a daemon thread invoking ``beat()`` every ``interval``
    seconds; returns the stop event.  The loop exits on the first
    failing beat — a dead results channel means the coordinator is gone
    and there is nobody left to reassure."""
    stop = threading.Event()

    def loop() -> None:
        while not stop.wait(interval):
            try:
                beat()
            except Exception:  # noqa: BLE001 - channel gone, nothing to do
                return

    threading.Thread(target=loop, daemon=True).start()
    return stop


def fleet_worker_main(
    worker_id: int, generation: int, spec: WorkerSpec, inq, outq
) -> None:
    """Entry point of one multiprocessing worker.

    Announce itself (:class:`HelloEnvelope` — the version handshake and
    first liveness signal), start the heartbeat thread, boot a private
    kernel (reporting :class:`_BootFailed` and exiting if that raises),
    then serve envelopes from the private dispatch queue until the
    ``None`` shutdown sentinel arrives.
    """
    outq.put(HelloEnvelope(worker_id, generation))
    stop_beats = start_heartbeat(
        lambda: outq.put(HeartbeatEnvelope(worker_id, generation)),
        spec.heartbeat_interval,
    )
    fault = spec.fault
    try:
        if fault is not None and fault.kill_at_boot and fault.claim():
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            executor = _boot_worker(spec)
        except Exception as error:  # noqa: BLE001 - boot crash -> respawn decision
            outq.put(
                _BootFailed(
                    worker_id,
                    generation,
                    type(error).__name__,
                    str(error),
                    traceback.format_exc(),
                )
            )
            return
        while True:
            envelope = inq.get()
            if envelope is None:
                return
            if (
                fault is not None
                and envelope.task_id == fault.kill_task_id
                and fault.claim()
            ):
                os.kill(os.getpid(), signal.SIGKILL)
            if (
                fault is not None
                and envelope.task_id == fault.hang_task_id
                and fault.claim()
            ):
                time.sleep(3600.0)
            outq.put(
                _execute_envelope(executor, spec, worker_id, envelope, generation)
            )
    finally:
        stop_beats.set()


# -- coordinator -------------------------------------------------------------------


@dataclass
class _WorkerSlot:
    """Coordinator-side state of one worker: its transport handle,
    current lease and its deadline, liveness clock, health counters."""

    worker_id: int
    stats: WorkerStats
    handle: Optional[Any] = None
    lease: Optional[TaskEnvelope] = None
    deadline: float = 0.0
    generation: int = 0
    last_beat: float = 0.0
    beaten: bool = False  # first heartbeat of this generation seen


class FleetCoordinator:
    """Coordinator over N workers behind a transport (§4.4.1 in miniature).

    :meth:`run` dispatches :class:`TaskEnvelope`s, enforces the lease +
    heartbeat protocol described in the module docstring, and returns
    one result — a :class:`ResultEnvelope` or a :class:`TaskFailure` —
    per envelope.  Per-worker health counters are left in
    :attr:`worker_stats`, in the same shape the thread fleet leaves on
    its ``WorkQueue``.

    The coordinator never looks at a process handle: everything it knows
    about a worker arrives as a message (hello, heartbeat, result, boot
    failure), which is what makes the loop identical for local process
    workers and remote socket workers.  A coordinator is single-use —
    :meth:`run` closes the transport on the way out.
    """

    def __init__(
        self,
        transport,
        nworkers: int = 2,
        max_task_retries: int = 0,
        max_worker_respawns: int = 2,
        lease_timeout: float = 120.0,
        heartbeat_timeout: float = 10.0,
        boot_grace: float = 60.0,
        poll_interval: float = 0.02,
        obs=NULL_OBSERVER,
    ):
        self.transport = transport
        self.nworkers = max(1, nworkers)
        self.max_task_retries = max_task_retries
        self.max_worker_respawns = max_worker_respawns
        self.lease_timeout = lease_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.boot_grace = boot_grace
        self.poll_interval = poll_interval
        self.obs = obs
        self.worker_stats: List[WorkerStats] = []
        self._slots: List[_WorkerSlot] = []
        self._pending: List[TaskEnvelope] = []
        self._results: Dict[int, Any] = {}
        self._attempts: Dict[int, int] = {}
        self._envelope_by_id: Dict[int, TaskEnvelope] = {}

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, slot: _WorkerSlot) -> None:
        """Start (or restart) one worker through the transport.  A fresh
        generation gets a fresh dispatch channel, so a task dispatched to
        a dead worker can never be double-claimed by its successor."""
        slot.generation += 1
        slot.handle = self.transport.spawn(slot.worker_id, slot.generation)
        slot.lease = None
        slot.last_beat = time.monotonic()
        slot.beaten = False

    def _retire(self, slot: _WorkerSlot) -> None:
        """Drop a dead worker's transport handle."""
        if slot.handle is not None:
            slot.handle.kill()
            slot.handle.join(timeout=5.0)
        slot.handle = None

    def _shutdown(self) -> None:
        for slot in self._slots:
            if slot.handle is not None:
                slot.handle.stop()
        for slot in self._slots:
            if slot.handle is not None:
                slot.handle.join(timeout=5.0)
                slot.handle.kill()
            slot.handle = None

    # -- fault handling -------------------------------------------------------

    def _record_worker_error(self, stats: WorkerStats, message: str) -> None:
        stats.last_error = RuntimeError(message)

    def _handle_death(self, slot: _WorkerSlot, reason: str) -> None:
        """One worker died (missed heartbeat, boot failure, or expired
        lease): reclaim its lease, charge a respawn, restart or retire it.

        Mirrors the thread fleet's ``BaseException`` semantics: the
        reclaimed task consumes one retry; when the worker's respawn
        budget is exhausted its leased task fails with it.  Before
        reclaiming, the results channel is drained — a final result the
        worker managed to queue before dying wins the race and its task
        is *not* charged a retry.
        """
        generation = slot.generation
        self._drain(block=False)
        if slot.generation != generation or slot.handle is None:
            return  # the drain already settled this slot's fate
        stats = slot.stats
        lease = slot.lease
        slot.lease = None
        self._retire(slot)
        stats.respawns += 1
        self._record_worker_error(stats, reason)
        out_of_respawns = stats.respawns > self.max_worker_respawns
        if out_of_respawns:
            stats.failed = True
        if self.obs.enabled:
            self.obs.event(
                "fleet.worker_died",
                worker_id=slot.worker_id,
                reason=reason,
                task=lease.task_id if lease is not None else None,
                respawned=not out_of_respawns,
            )
        if lease is not None and lease.task_id not in self._results:
            task_id = lease.task_id
            self._attempts[task_id] = self._attempts.get(task_id, 0) + 1
            if out_of_respawns or self._attempts[task_id] > self.max_task_retries:
                self._results[task_id] = TaskFailure(
                    task_id=task_id,
                    error_type="RuntimeError",
                    message=f"worker {slot.worker_id} died mid-task: {reason}",
                    attempts=self._attempts[task_id],
                )
            else:
                stats.retries += 1
                # Reclaimed leases go to the front: the task was next in
                # line before the death, and re-running it soonest keeps
                # retry latency bounded.
                self._pending.insert(0, lease)
                if self.obs.enabled:
                    self.obs.event(
                        "fleet.lease_reclaimed", task=task_id, reason=reason
                    )
        if not out_of_respawns:
            self._spawn(slot)

    def _handle_message(self, msg) -> None:
        if isinstance(msg, (HeartbeatEnvelope, HelloEnvelope)):
            if isinstance(msg, HelloEnvelope):
                _check_version(
                    msg.version, f"hello from worker {msg.worker_id}"
                )
            slot = self._slots[msg.worker_id]
            if msg.generation == slot.generation and slot.handle is not None:
                slot.last_beat = time.monotonic()
                slot.beaten = True
            return
        if isinstance(msg, _BootFailed):
            slot = self._slots[msg.worker_id]
            if msg.generation != slot.generation:
                return  # stale: the heartbeat path already handled this death
            self._handle_death(
                slot, f"boot failed: {msg.error_type}: {msg.message}"
            )
            return
        slot = self._slots[msg.worker_id]
        if msg.generation >= 0 and msg.generation != slot.generation:
            # A stale-generation result: its producer's lease was
            # reclaimed (heartbeat miss or lease expiry) and the slot
            # respawned, but the predecessor lived long enough to report.
            # The reclaimed task is already re-dispatched; both
            # executions are bit-identical, so dropping is lossless.
            if self.obs.enabled:
                self.obs.event(
                    "fleet.stale_result",
                    worker_id=msg.worker_id,
                    task=msg.task_id,
                    generation=msg.generation,
                )
            return
        slot.last_beat = time.monotonic()
        slot.beaten = True
        if slot.lease is not None and slot.lease.task_id == msg.task_id:
            lease = slot.lease
            slot.lease = None
        else:
            lease = None
        if msg.task_id in self._results:
            return  # first result wins; drop the duplicate
        if msg.status == "ok":
            slot.stats.tasks_done += 1
            self._results[msg.task_id] = msg
            return
        # task_error: the worker survived; retry on any live worker.
        self._attempts[msg.task_id] = self._attempts.get(msg.task_id, 0) + 1
        self._record_worker_error(
            slot.stats, f"{msg.error_type}: {msg.message}"
        )
        if self._attempts[msg.task_id] <= self.max_task_retries:
            slot.stats.retries += 1
            envelope = lease if lease is not None else self._envelope_by_id[msg.task_id]
            self._pending.insert(0, envelope)
        else:
            self._results[msg.task_id] = TaskFailure(
                task_id=msg.task_id,
                error_type=msg.error_type,
                message=msg.message,
                traceback_str=msg.traceback_str,
                attempts=self._attempts[msg.task_id],
            )

    # -- main loop ------------------------------------------------------------

    def _assign(self) -> None:
        for slot in self._slots:
            if not self._pending:
                return
            if (
                slot.handle is None
                or slot.lease is not None
                or not slot.handle.ready()
            ):
                continue
            while self._pending and self._pending[0].task_id in self._results:
                self._pending.pop(0)  # failed via another path while queued
            if not self._pending:
                return
            envelope = self._pending.pop(0)
            slot.lease = envelope
            slot.deadline = time.monotonic() + self.lease_timeout
            slot.handle.send(envelope)

    def _drain(self, block: bool = True) -> None:
        """Process queued messages: one timed poll, then everything
        immediately available."""
        msg = self.transport.recv(self.poll_interval if block else 0.0)
        while msg is not None:
            self._handle_message(msg)
            msg = self.transport.recv(0.0)

    def _reap(self) -> None:
        """Detect dead and wedged workers (missed heartbeat / expired
        lease).  Both verdicts kill through the handle first: a wedged
        worker must not keep executing a task the coordinator is about
        to re-dispatch."""
        now = time.monotonic()
        for slot in self._slots:
            if slot.handle is None:
                continue
            grace = self.heartbeat_timeout if slot.beaten else self.boot_grace
            if now > slot.last_beat + grace:
                slot.stats.heartbeats_missed += 1
                slot.handle.kill()
                self._handle_death(
                    slot,
                    f"missed heartbeat for {grace:.1f}s "
                    f"(generation {slot.generation})",
                )
            elif slot.lease is not None and now > slot.deadline:
                slot.handle.kill()
                self._handle_death(
                    slot, f"lease expired after {self.lease_timeout:.1f}s"
                )

    def _drain_exhausted(self, expected: Sequence[int]) -> None:
        """Pool exhaustion: every worker is dead for good.  Record a
        TaskFailure for every unfinished task, chaining the last worker
        error as the cause (the thread fleet's drain, ported)."""
        boot_error = next(
            (
                str(slot.stats.last_error)
                for slot in self._slots
                if slot.stats.failed and slot.stats.last_error is not None
            ),
            "",
        )
        for task_id in expected:
            if task_id in self._results:
                continue
            self._results[task_id] = TaskFailure(
                task_id=task_id,
                error_type="RuntimeError",
                message=f"worker pool exhausted before task {task_id} ran",
                attempts=self._attempts.get(task_id, 0),
                cause_type="RuntimeError" if boot_error else "",
                cause_message=boot_error,
            )

    def run(self, envelopes: Sequence[TaskEnvelope]) -> Dict[int, Any]:
        """Execute all envelopes; returns a result per task id.

        Values are :class:`ResultEnvelope` (decode for outcomes) or
        :class:`TaskFailure`.  The mapping always covers every input
        task id, whatever died along the way.
        """
        expected = [e.task_id for e in envelopes]
        if len(set(expected)) != len(expected):
            raise ValueError("duplicate task ids in fleet dispatch")
        try:
            self.worker_stats = [
                WorkerStats(worker_id=i) for i in range(self.nworkers)
            ]
            if not envelopes:
                return {}
            self._envelope_by_id = {e.task_id: e for e in envelopes}
            self._slots = [
                _WorkerSlot(i, self.worker_stats[i]) for i in range(self.nworkers)
            ]
            self._pending = sorted(envelopes, key=lambda e: e.task_id)
            self._results = {}
            self._attempts = {}
            for slot in self._slots:
                self._spawn(slot)
            try:
                while len(self._results) < len(expected):
                    self._assign()
                    self._drain()
                    self._reap()
                    if all(slot.handle is None for slot in self._slots):
                        # Late messages may still sit in the channel (a
                        # worker can report and die before the
                        # coordinator looks).
                        self._drain(block=False)
                        self._drain_exhausted(expected)
            finally:
                self._shutdown()
        finally:
            self.transport.close()
        if self.obs.enabled:
            # One health event per worker, in worker-id order — the same
            # records the thread fleet emits, so traces stay comparable.
            for slot in self._slots:
                stats = slot.stats
                self.obs.event(
                    "fleet.worker",
                    worker_id=stats.worker_id,
                    tasks_done=stats.tasks_done,
                    retries=stats.retries,
                    respawns=stats.respawns,
                    heartbeats_missed=stats.heartbeats_missed,
                    failed=stats.failed,
                )
        return self._results


class ProcessFleet(FleetCoordinator):
    """The classic multi-process fleet: :class:`FleetCoordinator` over a
    :class:`~repro.orchestrate.transport.MultiprocessingTransport`.

    Kept as the stable constructor for local process workers (the shape
    PR 6 introduced); the coordinator logic itself is transport-blind.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        nworkers: int = 2,
        max_task_retries: int = 0,
        max_worker_respawns: int = 2,
        lease_timeout: float = 120.0,
        heartbeat_timeout: float = 10.0,
        boot_grace: float = 60.0,
        poll_interval: float = 0.02,
        start_method: str = "spawn",
        obs=NULL_OBSERVER,
    ):
        from repro.orchestrate.transport import MultiprocessingTransport

        self.spec = spec
        super().__init__(
            MultiprocessingTransport(spec, start_method=start_method),
            nworkers=nworkers,
            max_task_retries=max_task_retries,
            max_worker_respawns=max_worker_respawns,
            lease_timeout=lease_timeout,
            heartbeat_timeout=heartbeat_timeout,
            boot_grace=boot_grace,
            poll_interval=poll_interval,
            obs=obs,
        )
