"""Sequential-prefix fork memoization and commuting-schedule pruning.

Trials of one Stage-4 task share a deterministic sequential prefix: the
writer runs alone until the scheduler forces the first context switch,
and the prefix up to a given switch position is identical in every trial
that switches there.  :class:`PrefixMemo` records that prefix once per
task, then serves each trial by

* driving the *live* scheduler over the recorded access stream to find
  the trial's first switch position (the simulation makes exactly the
  ``on_access`` calls the executor would have made, in the same order,
  so RNG draws, learned flags and adoption choices are unchanged);
* resuming the executor from a cached mid-trial
  :class:`~repro.machine.snapshot.ForkSnapshot` at that position — or,
  when the trial never switches inside the writer, returning the fully
  memoized no-switch result without touching the machine at all.

Bit-identity with the from-boot path is the contract (DESIGN §2.15);
the recorder below replicates the executor's per-op semantics exactly,
including the page-fault sequence-number quirks and the liveness stuck
checks that force switches independently of the scheduler.

The second layer, commuting-schedule pruning (``--prune-commuting``),
is a partial-order reduction over the same recording: candidate switch
positions in the writer's solo trace between which no access conflicts
with the reader's shared footprint commute — switching at either yields
the reader an identical memory view — so one representative per
commuting class bounds how many trials are worth running.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.detect.datarace import RaceDetector
from repro.fuzz.prog import Program, resolve_arg
from repro.kernel.ops import CasOp, MemOp, PanicOp, PauseOp, PrintkOp, SyncOp
from repro.machine.accesses import AccessTrace, AccessType, MemoryAccess
from repro.machine.memory import PageFault
from repro.machine.snapshot import ForkSnapshot
from repro.sched.executor import (
    ExecutionResult,
    Executor,
    ResumeState,
    run_program,
)
from repro.sched.liveness import LivenessMonitor
from repro.sched.snowboard import access_sig, pmc_sigs

# Pruning keeps at least this many trials per task, and this many per
# commuting class (plus a constant).  The floor is deliberately generous:
# pruning must preserve bug yield (tests/test_prune_soundness.py pins the
# Table-2 set), and trials below the bound run with unchanged seeds, so
# yield can only be lost beyond it.
PRUNE_MIN_TRIALS = 6
PRUNE_TRIALS_PER_CLASS = 2
PRUNE_EXTRA = 2


class _Event:
    """One recorded solo-execution op, mirroring the executor loop."""

    __slots__ = (
        "ninstr",
        "thread",
        "accesses",
        "atomic",
        "pending",
        "sync",
        "printk",
        "pause",
        "stuck",
        "terminal",
        "call_index",
        "seq_after",
        "rows_after",
        "rcu_after",
    )

    def __init__(
        self,
        ninstr: int,
        thread: int,
        accesses: Tuple[MemoryAccess, ...],
        atomic: bool,
        pending,
        sync,
        printk: Optional[str],
        pause: bool,
        stuck: bool,
        terminal: bool,
        call_index: Optional[int],
        seq_after: int,
        rows_after: int,
        rcu_after: int,
    ):
        self.ninstr = ninstr
        self.thread = thread
        self.accesses = accesses
        self.atomic = atomic
        self.pending = pending
        self.sync = sync
        self.printk = printk
        self.pause = pause
        self.stuck = stuck
        self.terminal = terminal
        self.call_index = call_index
        self.seq_after = seq_after
        self.rows_after = rows_after
        self.rcu_after = rcu_after


class PrefixRecording:
    """The writer's (and, when it completes, the reader's) solo run."""

    def __init__(self) -> None:
        self.events: List[_Event] = []
        # Number of events belonging to the writer's solo portion.
        self.t0_events = 0
        # True when the writer ran to completion (so the reader portion
        # was recorded and the no-switch result is fully known).
        self.t0_completed = False
        # Per writer call: (event index at call start, results before).
        self.call_starts: List[Tuple[int, Tuple]] = []
        self.trace = AccessTrace()
        self.console_lines: List[str] = []
        self.returns: List[List[int]] = [[], []]
        self.panicked = False
        self.panic_message = ""
        self.budget_exceeded = False
        self.total_ninstr = 0


@dataclass
class _ForkState:
    """Cached per-switch-position state shared by all trials forking there."""

    snapshot: ForkSnapshot
    liveness: LivenessMonitor
    detector: RaceDetector
    call_index: int
    call_event: int
    call_results: Tuple


class PrefixMemo:
    """Per-task trial server: memoized prefixes + optional pruning."""

    def __init__(
        self,
        executor: Executor,
        writer: Program,
        reader: Program,
        pmc=None,
        enabled: bool = True,
        prune: bool = False,
    ):
        self.executor = executor
        self.writer = writer
        self.reader = reader
        self.pmc = pmc
        # full_restore is the restore-cost benchmark knob: it deliberately
        # invalidates dirty tracking, which delta fork snapshots rely on.
        usable = not executor.full_restore
        self.fork_enabled = enabled and usable
        self.prune = prune and usable
        self._rec: Optional[PrefixRecording] = None
        self._forks: Dict[int, _ForkState] = {}
        self._full_detector: Optional[RaceDetector] = None

    @property
    def active(self) -> bool:
        """True when this memo will record anything at all."""
        return self.fork_enabled or self.prune

    # -- public API --------------------------------------------------------

    def prepare(self) -> None:
        """Record the sequential prefix now (idempotent)."""
        if self.active:
            self._ensure_recorded()

    def plan_trials(self, trials: int) -> Tuple[int, int]:
        """(effective trials, trials pruned) for a budget of ``trials``.

        Without ``--prune-commuting`` every trial runs.  With it, the
        commuting-class count bounds how many distinct first-switch
        behaviours exist; trials below the bound run with unchanged
        seeds, so the surviving trial stream is a strict prefix of the
        unpruned one.
        """
        if not self.prune or trials <= PRUNE_MIN_TRIALS:
            return trials, 0
        rec = self._ensure_recorded()
        if not rec.t0_completed or self.pmc is None:
            return trials, 0
        classes = self._commuting_classes(rec)
        effective = min(
            trials,
            max(
                PRUNE_MIN_TRIALS,
                PRUNE_TRIALS_PER_CLASS * classes + PRUNE_EXTRA,
            ),
        )
        return effective, trials - effective

    def run_trial(self, scheduler, detector: RaceDetector):
        """Run one trial; returns ``(result, forked)``.

        ``forked`` is True when the trial was served from already-cached
        prefix state (the ``stage4.prefix_fork_hits`` counter); the trial
        that *creates* a fork point reports False.
        """
        if not self.fork_enabled:
            result = self.executor.run_concurrent(
                [self.writer, self.reader],
                scheduler=scheduler,
                race_detector=detector,
            )
            return result, False
        rec = self._ensure_recorded()
        m = self._simulate(scheduler, rec)
        if m is None:
            return self._full_result(detector, rec), True
        state = self._forks.get(m)
        hit = state is not None
        if state is None:
            state = self._build_fork_state(m, rec)
            self._forks[m] = state
        detector.load_state(state.detector)
        ev = rec.events[m]
        kernel = self.executor.kernel
        ctx = kernel.make_context(thread=0, proc_index=0)
        gen = run_program(
            kernel,
            ctx,
            self.writer,
            start_call=state.call_index,
            results=list(state.call_results),
        )
        # Fast-forward the coroutine to the switch op: sends replay the
        # recorded op results without touching memory (all machine
        # effects happen at yield sites; between yields only the stack
        # pointer moves, deterministically).
        gen.send(None)
        events = rec.events
        for i in range(state.call_event, m):
            gen.send(events[i].pending)
        resume = ResumeState(
            snapshot=state.snapshot,
            console_start=len(self.executor.snapshot.console),
            gen=gen,
            ctx=ctx,
            pending=ev.pending,
            rcu_depth=ev.rcu_after,
            liveness=state.liveness.clone(),
            stuck0=ev.stuck,
            seq=ev.seq_after,
            ninstr=ev.ninstr,
            trace=rec.trace,
            trace_rows=ev.rows_after,
        )
        result = self.executor.run_concurrent(
            [self.writer, self.reader],
            scheduler=scheduler,
            race_detector=detector,
            resume_from=resume,
        )
        return result, hit

    # -- trial service internals -------------------------------------------

    def _simulate(self, scheduler, rec: PrefixRecording) -> Optional[int]:
        """Drive the live scheduler over the recording; first switch index.

        Returns the index of the event after which the executor would
        have switched to the reader, or None when the trial never leaves
        the writer — in which case the scheduler has also been driven
        over the reader portion, so its per-trial state (draws, flags,
        last-access) matches a from-boot no-switch run exactly.
        """
        events = rec.events
        on_access = scheduler.on_access
        for i in range(rec.t0_events):
            ev = events[i]
            switch = False
            for access in ev.accesses:
                if on_access(access):
                    switch = True
            if switch or ev.pause or ev.stuck:
                return i
        for i in range(rec.t0_events, len(events)):
            for access in events[i].accesses:
                on_access(access)
        return None

    def _full_result(
        self, detector: RaceDetector, rec: PrefixRecording
    ) -> ExecutionResult:
        """The shared no-switch result; costs no machine execution."""
        if self._full_detector is None:
            template = RaceDetector()
            self._replay_detector(template, rec.events, len(rec.events))
            self._full_detector = template
        detector.load_state(self._full_detector)
        result = ExecutionResult()
        result.accesses = rec.trace
        result.console = list(rec.console_lines)
        result.returns = [list(rec.returns[0]), list(rec.returns[1])]
        result.panicked = rec.panicked
        result.panic_message = rec.panic_message
        result.budget_exceeded = rec.budget_exceeded
        result.instructions = rec.total_ninstr
        result.races = detector.reports()
        return result

    def _build_fork_state(self, m: int, rec: PrefixRecording) -> _ForkState:
        """Capture the machine/bookkeeping state right after event ``m``."""
        executor = self.executor
        machine = executor.kernel.machine
        memory = machine.memory
        base = executor.snapshot
        base.restore(machine)
        events = rec.events
        for ev in events[: m + 1]:
            if ev.printk is not None:
                machine.printk(ev.printk)
                continue
            for access in ev.accesses:
                if access.is_write:
                    memory.write_int(access.addr, access.size, access.value)
        snapshot = ForkSnapshot.capture(
            machine, base, label=f"fork@{events[m].ninstr}"
        )
        liveness = LivenessMonitor(2)
        for ev in events[: m + 1]:
            if ev.accesses:
                first = ev.accesses[0]
                liveness.note_access(0, first.ins, first.addr)
            elif ev.pause:
                liveness.note_pause(0)
        detector = RaceDetector()
        self._replay_detector(detector, events, m + 1)
        call_index = events[m].call_index
        call_event, call_results = rec.call_starts[call_index]
        return _ForkState(
            snapshot=snapshot,
            liveness=liveness,
            detector=detector,
            call_index=call_index,
            call_event=call_event,
            call_results=call_results,
        )

    @staticmethod
    def _replay_detector(
        detector: RaceDetector, events: List[_Event], upto: int
    ) -> None:
        on_access = detector.on_access
        on_sync = detector.on_sync
        for ev in events[:upto]:
            if ev.sync is not None:
                on_sync(ev.thread, ev.sync)
                continue
            atomic = ev.atomic
            for access in ev.accesses:
                if not access.is_stack:
                    on_access(access, atomic=atomic)

    # -- the prefix recorder ------------------------------------------------

    def _ensure_recorded(self) -> PrefixRecording:
        if self._rec is None:
            self._rec = self._record()
        return self._rec

    def _record(self) -> PrefixRecording:
        """Run the writer (then the reader) solo, recording every op.

        The loop replicates the executor's per-op semantics exactly —
        same instruction/sequence counting, same page-fault messages,
        same liveness pushes — but additionally records, per op, the
        value the executor would send back into the coroutine and the
        post-op stuck flag, which is everything trial simulation and
        coroutine fast-forward need.
        """
        executor = self.executor
        kernel = executor.kernel
        machine = kernel.machine
        memory = machine.memory
        rec = PrefixRecording()
        executor.snapshot.restore(machine)
        liveness = LivenessMonitor(2)
        max_instructions = executor.max_instructions
        events = rec.events
        trace = rec.trace
        console = rec.console_lines
        READ = AccessType.READ
        state = {"ninstr": 0, "seq": 0}

        def terminal_event(tindex, call_index, rcu_depth):
            events.append(
                _Event(
                    ninstr=state["ninstr"],
                    thread=tindex,
                    accesses=(),
                    atomic=False,
                    pending=None,
                    sync=None,
                    printk=None,
                    pause=False,
                    stuck=False,
                    terminal=True,
                    call_index=call_index,
                    seq_after=state["seq"],
                    rows_after=len(trace),
                    rcu_after=rcu_depth,
                )
            )

        def page_fault(fault, ins):
            scratch = ExecutionResult()
            executor._page_fault_panic(fault, ins, scratch)
            rec.panicked = True
            rec.panic_message = scratch.panic_message
            console.append(scratch.panic_message)
            console.append("Kernel panic - not syncing: Fatal exception")

        def run_thread(tindex: int, program: Program, record_calls: bool):
            """Returns the program's results, or None on a terminal stop."""
            ctx = kernel.make_context(thread=tindex, proc_index=tindex)
            results: List[int] = []
            rcu_depth = 0
            for ci, call in enumerate(program.calls):
                if record_calls:
                    rec.call_starts.append((len(events), tuple(results)))
                ctx.reset_stack()
                args = tuple(resolve_arg(arg, results) for arg in call.args)
                gen = kernel.run_syscall(ctx, call.name, args)
                pending = None
                while True:
                    if state["ninstr"] >= max_instructions:
                        rec.budget_exceeded = True
                        return None
                    try:
                        op = gen.send(pending)
                    except StopIteration as stop:
                        results.append(stop.value)
                        break
                    pending = None
                    state["ninstr"] += 1
                    cls = op.__class__
                    accesses: Tuple[MemoryAccess, ...] = ()
                    atomic = False
                    sync = None
                    printk = None
                    pause = False
                    if cls is MemOp:
                        addr = op.addr
                        size = op.size
                        ins = op.ins
                        try:
                            if op.type is READ:
                                value = memory.read_int(addr, size)
                                pending = value
                            else:
                                value = op.value
                                memory.write_int(addr, size, value)
                        except PageFault as fault:
                            page_fault(fault, ins)
                            terminal_event(
                                tindex, ci if record_calls else None, rcu_depth
                            )
                            return None
                        access = MemoryAccess(
                            seq=state["seq"],
                            thread=tindex,
                            type=op.type,
                            addr=addr,
                            size=size,
                            value=value,
                            ins=ins,
                            is_stack=machine.in_stack(tindex, addr, size),
                        )
                        trace.append(access)
                        liveness.note_access(tindex, ins, addr)
                        accesses = (access,)
                        atomic = op.atomic
                        state["seq"] += 1
                    elif cls is CasOp:
                        try:
                            old = memory.read_int(op.addr, op.size)
                            swapped = old == op.expected
                            if swapped:
                                memory.write_int(op.addr, op.size, op.new)
                        except PageFault as fault:
                            # The executor bumps seq by 2 even on a
                            # faulting CAS (before noticing the panic).
                            state["seq"] += 2
                            page_fault(fault, op.ins)
                            terminal_event(
                                tindex, ci if record_calls else None, rcu_depth
                            )
                            return None
                        pending = old
                        is_stack = machine.in_stack(tindex, op.addr, op.size)
                        read = MemoryAccess(
                            seq=state["seq"],
                            thread=tindex,
                            type=AccessType.READ,
                            addr=op.addr,
                            size=op.size,
                            value=old,
                            ins=op.ins,
                            is_stack=is_stack,
                        )
                        trace.append(read)
                        if swapped:
                            write = MemoryAccess(
                                seq=state["seq"] + 1,
                                thread=tindex,
                                type=AccessType.WRITE,
                                addr=op.addr,
                                size=op.size,
                                value=op.new,
                                ins=op.ins,
                                is_stack=is_stack,
                            )
                            trace.append(write)
                            accesses = (read, write)
                        else:
                            accesses = (read,)
                        liveness.note_access(tindex, op.ins, op.addr)
                        atomic = True
                        state["seq"] += 2
                    elif cls is SyncOp:
                        if op.kind == "rcu_read_lock":
                            rcu_depth += 1
                        elif op.kind == "rcu_read_unlock":
                            rcu_depth = max(0, rcu_depth - 1)
                        elif op.kind == "rcu_synchronize":
                            # Solo runs: the other thread is either not
                            # started (rcu depth 0) or already done.
                            pending = True
                        sync = op
                    elif cls is PrintkOp:
                        machine.printk(op.message)
                        console.append(op.message)
                        printk = op.message
                    elif cls is PanicOp:
                        scratch = ExecutionResult()
                        executor._panic(op.message, scratch)
                        rec.panicked = True
                        rec.panic_message = scratch.panic_message
                        console.append(scratch.panic_message)
                        console.append(
                            "Kernel panic - not syncing: Fatal exception"
                        )
                        terminal_event(
                            tindex, ci if record_calls else None, rcu_depth
                        )
                        return None
                    elif cls is PauseOp:
                        liveness.note_pause(tindex)
                        pause = True
                    else:  # pragma: no cover - defensive
                        raise TypeError(f"unknown kernel op {op!r}")
                    events.append(
                        _Event(
                            ninstr=state["ninstr"],
                            thread=tindex,
                            accesses=accesses,
                            atomic=atomic,
                            pending=pending,
                            sync=sync,
                            printk=printk,
                            pause=pause,
                            stuck=liveness.is_stuck(tindex),
                            terminal=False,
                            call_index=ci if record_calls else None,
                            seq_after=state["seq"],
                            rows_after=len(trace),
                            rcu_after=rcu_depth,
                        )
                    )
            liveness.note_progress(tindex)
            return results

        t0_results = run_thread(0, self.writer, record_calls=True)
        rec.t0_events = len(events)
        rec.t0_completed = t0_results is not None
        if t0_results is not None:
            rec.returns[0] = t0_results
            t1_results = run_thread(1, self.reader, record_calls=False)
            if t1_results is not None:
                rec.returns[1] = t1_results
        rec.total_ninstr = state["ninstr"]
        return rec

    # -- commuting-schedule analysis ----------------------------------------

    def _commuting_classes(self, rec: PrefixRecording) -> int:
        """Number of commuting classes among candidate switch positions.

        Candidates are the writer-solo positions where a trial's first
        switch can land: accesses matching the PMC's write/read
        signatures, their immediate predecessors (learned-flag
        positions), and forced switches (pauses, liveness stuck marks).
        Two consecutive candidates commute when no writer access between
        them conflicts with the reader's shared footprint — the reader
        observes the same memory either way, so one representative
        suffices.
        """
        events = rec.events
        n0 = rec.t0_events
        sigs = set(pmc_sigs(self.pmc))
        candidates: List[int] = []
        prev_access_event: Optional[int] = None
        for i in range(n0):
            ev = events[i]
            if ev.pause or ev.stuck:
                candidates.append(i)
            hit = any(access_sig(a) in sigs for a in ev.accesses)
            if hit:
                if prev_access_event is not None:
                    candidates.append(prev_access_event)
                candidates.append(i)
            if ev.accesses:
                prev_access_event = i
        if not candidates:
            return 0
        candidates = sorted(set(candidates))
        reads, writes = self._reader_footprint(rec)
        classes = 1
        for p, q in zip(candidates, candidates[1:]):
            if self._window_conflicts(events, p + 1, q + 1, reads, writes):
                classes += 1
        return classes

    def _reader_footprint(self, rec: PrefixRecording):
        """(all shared intervals, written shared intervals) of the reader."""
        reads: List[Tuple[int, int]] = []
        writes: List[Tuple[int, int]] = []
        for ev in rec.events[rec.t0_events :]:
            for access in ev.accesses:
                if access.is_stack:
                    continue
                interval = (access.addr, access.end)
                reads.append(interval)
                if access.is_write:
                    writes.append(interval)
        return _merge_intervals(reads), _merge_intervals(writes)

    @staticmethod
    def _window_conflicts(events, start, stop, reader_all, reader_writes):
        for ev in events[start:stop]:
            for access in ev.accesses:
                if access.is_stack:
                    continue
                ranges = reader_all if access.is_write else reader_writes
                if _overlaps_any(access.addr, access.end, ranges):
                    return True
        return False


def _merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


def _overlaps_any(lo: int, hi: int, merged: List[Tuple[int, int]]) -> bool:
    """Binary search ``[lo, hi)`` against merged, sorted intervals."""
    i = bisect.bisect_right(merged, (lo, hi))
    if i < len(merged) and merged[i][0] < hi:
        return True
    return i > 0 and merged[i - 1][1] > lo
