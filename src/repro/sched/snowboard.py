"""Snowboard's PMC-hinted interleaving exploration — Algorithm 2.

The scheduler focuses preemption on the accesses of the PMC under test:

* ``performed_pmc_access`` — the access just executed matches a PMC
  access (type, instruction, memory range); switch non-deterministically
  and *learn a flag*: the access that immediately preceded it in the
  same thread will, in future trials, predict that a PMC access is about
  to happen.
* ``pmc_access_coming`` — the access matches a learned flag; switch
  non-deterministically *before* the PMC access executes.
* At the end of each trial, if a different known PMC had both of its
  accesses appear in the trial, one such incidental PMC is adopted into
  the set under test, amortising execution cost (section 4.4).

Trial ``t`` always reseeds with ``SEED + t`` (Algorithm 2 line 5), so
every trial is reproducible.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.machine.accesses import AccessType, MemoryAccess, iter_access_fields

if TYPE_CHECKING:  # break the sched <-> pmc import cycle
    from repro.pmc.model import PMC

# An access signature: what performed_pmc_access/pmc_access_coming compare.
Sig = Tuple[AccessType, str, int, int]


def access_sig(access: MemoryAccess) -> Sig:
    return (access.type, access.ins, access.addr, access.size)


def pmc_sigs(pmc) -> Tuple[Sig, Sig]:
    """The write and read signatures of a PMC."""
    return (
        (AccessType.WRITE, pmc.write.ins, pmc.write.addr, pmc.write.size),
        (AccessType.READ, pmc.read.ins, pmc.read.addr, pmc.read.size),
    )


class SnowboardScheduler:
    """Algorithm 2's execution-exploration scheduler for one concurrent test."""

    def __init__(
        self,
        pmc: "PMC",
        seed: int = 0,
        switch_probability: float = 0.5,
        universe: Optional[Iterable["PMC"]] = None,
        max_adopted: int = 3,
    ):
        self.base_seed = seed
        self.switch_probability = switch_probability
        self.current_pmcs: Set["PMC"] = {pmc}
        self.flags: Set[Sig] = set()
        self.universe: Tuple["PMC", ...] = tuple(universe) if universe else ()
        # Cap on incidental adoptions: unbounded growth makes every hot
        # access a switch point and defocuses the search entirely.
        self.max_adopted = max_adopted
        self._adopted = 0
        self.rng = random.Random(seed)
        self.last_access: Dict[int, Optional[Sig]] = {0: None, 1: None}
        self._rebuild_sigs()

    def _rebuild_sigs(self) -> None:
        self._pmc_sigs: Set[Sig] = set()
        for pmc in self.current_pmcs:
            self._pmc_sigs.update(pmc_sigs(pmc))

    # -- trial lifecycle ----------------------------------------------------

    def begin_trial(self, trial: int) -> None:
        """Always the same randomness in trial ``trial`` (line 5)."""
        self.rng = random.Random(self.base_seed + trial)
        self.last_access = {0: None, 1: None}

    def end_trial(self, result) -> None:
        """Adopt one incidental PMC observed in the finished trial."""
        if not self.universe or self._adopted >= self.max_adopted:
            return
        seen: Set[Sig] = {
            (type_, ins, addr, size)
            for _seq, _thread, type_, addr, size, _value, ins, is_stack in (
                iter_access_fields(result.accesses)
            )
            if not is_stack
        }
        incidental: List["PMC"] = []
        for pmc in self.universe:
            if pmc in self.current_pmcs:
                continue
            write_sig, read_sig = pmc_sigs(pmc)
            if write_sig in seen and read_sig in seen:
                incidental.append(pmc)
        if incidental:
            self.current_pmcs.add(self.rng.choice(incidental))
            self._adopted += 1
            self._rebuild_sigs()

    # -- the per-access decision (Algorithm 2 lines 15-22) ---------------------

    def on_access(self, access: MemoryAccess) -> bool:
        switch = False
        sig = access_sig(access)

        # pmc_access_coming: a learned flag says a PMC access is imminent.
        if sig in self.flags:
            switch = self.rng.random() < self.switch_probability

        # performed_pmc_access: this access *was* a PMC access.
        if sig in self._pmc_sigs:
            previous = self.last_access[access.thread]
            if previous is not None:
                self.flags.add(previous)
            switch = self.rng.random() < self.switch_probability

        self.last_access[access.thread] = sig
        return switch

    # -- diagnostics --------------------------------------------------------------

    @property
    def tracked_pmcs(self) -> int:
        return len(self.current_pmcs)

    def stats(self) -> Dict[str, int]:
        """Exploration-state diagnostics, attached to ``stage4.test``
        spans by the pipeline: PMCs under test (1 + incidental
        adoptions), learned predictor flags, and adoptions performed."""
        return {
            "tracked_pmcs": len(self.current_pmcs),
            "flags_learned": len(self.flags),
            "adopted": self._adopted,
        }


def channel_exercised(pmc, accesses: Iterable[MemoryAccess]) -> bool:
    """Did the trial actually exercise the PMC's memory channel?

    True when the writer's PMC write executed and a later read at the
    PMC's read instruction (by the other thread) fetched a value whose
    projection onto the overlap equals the written projection — i.e. the
    predicted data flow happened (the accuracy metric of section 5.3.2).
    """
    from repro.machine.accesses import project_value

    lo, hi = pmc.overlap
    WRITE = AccessType.WRITE
    w_ins, w_addr, w_size = pmc.write.ins, pmc.write.addr, pmc.write.size
    r_ins, r_addr, r_size = pmc.read.ins, pmc.read.addr, pmc.read.size
    write_seq = None
    write_thread = None
    written = None
    for seq, thread, type_, addr, size, value, ins, is_stack in iter_access_fields(
        accesses
    ):
        if is_stack:
            continue
        if type_ is WRITE and ins == w_ins and addr == w_addr and size == w_size:
            write_seq = seq
            write_thread = thread
            written = project_value(addr, size, value, lo, hi)
            continue
        if (
            write_seq is not None
            and type_ is not WRITE
            and thread != write_thread
            and ins == r_ins
            and addr == r_addr
            and size == r_size
            and seq > write_seq
        ):
            fetched = project_value(addr, size, value, lo, hi)
            if fetched == written:
                return True
    return False
