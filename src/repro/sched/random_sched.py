"""Random preemption scheduling (the stress-testing baseline).

Switches vCPUs with a fixed probability after every memory access.  This
is the no-hint baseline paired with *random pairing* / *duplicate
pairing* test generation in Table 3.
"""

from __future__ import annotations

import random

from repro.machine.accesses import MemoryAccess


class RandomScheduler:
    """Uniform random preemption after each access."""

    def __init__(self, seed: int = 0, switch_probability: float = 0.15):
        self.base_seed = seed
        self.switch_probability = switch_probability
        self.rng = random.Random(seed)

    def begin_trial(self, trial: int) -> None:
        """Reseed so trial ``t`` always sees the same randomness."""
        self.rng = random.Random(self.base_seed + trial)

    def on_access(self, access: MemoryAccess) -> bool:
        """Coin-flip a switch after every traced access."""
        return self.rng.random() < self.switch_probability

    def end_trial(self, result) -> None:
        """No cross-trial learning."""
