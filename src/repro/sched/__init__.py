"""Concurrent test execution: the hypervisor/scheduler stand-in.

The executor runs one or two kernel test threads with full instruction-
granular control (only one vCPU executes at a time, as in SKI), restores
the fixed VM snapshot before every trial, and reports every traced
access to a pluggable scheduler.  Schedulers implement the exploration
policies compared in the paper: Snowboard's PMC-hinted Algorithm 2, the
SKI baseline, and random preemption.
"""

from repro.sched.executor import ExecutionResult, Executor, run_program
from repro.sched.liveness import LivenessMonitor
from repro.sched.minimize import default_panic_oracle, minimize_schedule, still_fails
from repro.sched.random_sched import RandomScheduler
from repro.sched.ski import SkiScheduler
from repro.sched.snowboard import SnowboardScheduler

__all__ = [
    "ExecutionResult",
    "Executor",
    "run_program",
    "LivenessMonitor",
    "default_panic_oracle",
    "minimize_schedule",
    "still_fails",
    "RandomScheduler",
    "SkiScheduler",
    "SnowboardScheduler",
]
