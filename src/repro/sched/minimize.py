"""Schedule minimisation: shrink a reproduction to its essential switches.

A recorded buggy schedule often contains dozens of incidental vCPU
switches; only a few interpose the communication that triggers the bug.
Minimising the switch-point set (ddmin-style) turns a reproduction
package into a *diagnosis*: the remaining switches point exactly at the
vulnerable window — e.g. the single preemption between l2tp's publish
and socket-assignment, or between the two fetches of the rhashtable
bucket.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.fuzz.prog import Program
from repro.sched.executor import ExecutionResult, Executor

Oracle = Callable[[ExecutionResult], bool]


def default_panic_oracle(result: ExecutionResult) -> bool:
    """The most common check: did the kernel panic?"""
    return result.panicked


def still_fails(
    executor: Executor,
    programs: Sequence[Program],
    switch_points: Sequence[int],
    oracle: Oracle,
) -> bool:
    """Replay with the candidate switch set and consult the oracle."""
    result = executor.run_concurrent(
        list(programs), replay_switch_points=list(switch_points)
    )
    return oracle(result)


def minimize_schedule(
    executor: Executor,
    programs: Sequence[Program],
    switch_points: Sequence[int],
    oracle: Oracle = default_panic_oracle,
    max_rounds: int = 8,
) -> List[int]:
    """ddmin over the switch-point set.

    Repeatedly tries to drop chunks of switch points (halving granularity
    each round, down to single points) while the oracle still fires on
    replay.  Returns the minimised, still-failing switch set.

    Raises ValueError when the initial schedule does not fail — a
    minimisation request only makes sense for a reproducing package.
    """
    points = list(switch_points)
    if not still_fails(executor, programs, points, oracle):
        raise ValueError("the initial schedule does not reproduce the failure")

    granularity = 2
    rounds = 0
    while len(points) > 1 and rounds < max_rounds:
        rounds += 1
        chunk = max(1, len(points) // granularity)
        reduced = False
        start = 0
        while start < len(points):
            candidate = points[:start] + points[start + chunk :]
            if candidate != points and still_fails(
                executor, programs, candidate, oracle
            ):
                points = candidate
                reduced = True
                # Re-scan from the beginning at the same granularity.
                start = 0
                continue
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity *= 2
    # Final single-point sweep.
    index = 0
    while index < len(points):
        candidate = points[:index] + points[index + 1 :]
        if still_fails(executor, programs, candidate, oracle):
            points = candidate
        else:
            index += 1
    return points
