"""Liveness heuristics (the ``is_live`` primitive of Algorithm 2).

Mirrors the SKI-inspired implementation notes of section 4.4.1: a thread
shows low liveness when it keeps fetching the same memory area (a spin
loop), executes HALT/PAUSE-style instructions, or has burned through an
instruction budget without completing a syscall.

The monitor is consulted once per interpreted instruction, so its state
is maintained incrementally: instead of recomputing the distinct-address
set over the window on every :meth:`is_stuck` call, each thread keeps a
sliding window plus a running multiset of the window's memory addresses.
``is_stuck`` is then O(1): the window is full and it contains at most
one distinct memory address (a pure pause storm contains zero).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

# How many consecutive low-liveness events classify a thread as stuck.
STUCK_WINDOW = 10

# Window entry marking a PAUSE/HALT instruction (never counted as an
# address; identity-compared, so no real address can collide with it).
_PAUSE = object()


class LivenessMonitor:
    """Tracks per-thread progress signals and classifies stuck threads."""

    def __init__(self, nthreads: int, window: int = STUCK_WINDOW):
        self.window = window
        self._recent: Tuple[Deque, ...] = tuple(deque() for _ in range(nthreads))
        # Multiset of the window's memory addresses (pauses excluded):
        # len() of it is the distinct-address count is_stuck needs.
        self._addr_counts: Tuple[Dict, ...] = tuple({} for _ in range(nthreads))

    def _push(self, thread: int, token) -> None:
        recent = self._recent[thread]
        counts = self._addr_counts[thread]
        if len(recent) == self.window:
            old = recent.popleft()
            if old is not _PAUSE:
                left = counts[old] - 1
                if left:
                    counts[old] = left
                else:
                    del counts[old]
        recent.append(token)
        if token is not _PAUSE:
            counts[token] = counts.get(token, 0) + 1

    def note_access(self, thread: int, ins: str, addr: int) -> None:
        """Record a memory access signature for ``thread``."""
        self._push(thread, addr)

    def note_pause(self, thread: int) -> None:
        """Record a PAUSE/HALT-style instruction."""
        self._push(thread, _PAUSE)

    def note_progress(self, thread: int) -> None:
        """Record definite progress (e.g. a syscall completed)."""
        self._recent[thread].clear()
        self._addr_counts[thread].clear()

    def is_stuck(self, thread: int) -> bool:
        """True when the thread's recent behaviour shows no liveness.

        Stuck means: the window is full and every event is either a pause
        or an access to one single memory area (a spin loop fetching the
        same lock word) — i.e. at most one distinct address in the
        window (a pure pause storm has zero).
        """
        if len(self._recent[thread]) < self.window:
            return False
        return len(self._addr_counts[thread]) <= 1

    def clone(self) -> "LivenessMonitor":
        """Independent copy of the current windows (prefix-fork support)."""
        other = LivenessMonitor(len(self._recent), window=self.window)
        for i, recent in enumerate(self._recent):
            other._recent[i].extend(recent)
            other._addr_counts[i].update(self._addr_counts[i])
        return other

    def reset(self, thread: Optional[int] = None) -> None:
        """Forget history for one thread (or all)."""
        if thread is None:
            for recent in self._recent:
                recent.clear()
            for counts in self._addr_counts:
                counts.clear()
        else:
            self._recent[thread].clear()
            self._addr_counts[thread].clear()
