"""Liveness heuristics (the ``is_live`` primitive of Algorithm 2).

Mirrors the SKI-inspired implementation notes of section 4.4.1: a thread
shows low liveness when it keeps fetching the same memory area (a spin
loop), executes HALT/PAUSE-style instructions, or has burned through an
instruction budget without completing a syscall.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

# How many consecutive low-liveness events classify a thread as stuck.
STUCK_WINDOW = 10


class LivenessMonitor:
    """Tracks per-thread progress signals and classifies stuck threads."""

    def __init__(self, nthreads: int, window: int = STUCK_WINDOW):
        self.window = window
        self._recent: Tuple[Deque, ...] = tuple(
            deque(maxlen=window) for _ in range(nthreads)
        )

    def note_access(self, thread: int, ins: str, addr: int) -> None:
        """Record a memory access signature for ``thread``."""
        self._recent[thread].append(("mem", addr))

    def note_pause(self, thread: int) -> None:
        """Record a PAUSE/HALT-style instruction."""
        self._recent[thread].append(("pause", 0))

    def note_progress(self, thread: int) -> None:
        """Record definite progress (e.g. a syscall completed)."""
        self._recent[thread].clear()

    def is_stuck(self, thread: int) -> bool:
        """True when the thread's recent behaviour shows no liveness.

        Stuck means: the window is full and every event is either a pause
        or an access to one single memory area (a spin loop fetching the
        same lock word).
        """
        recent = self._recent[thread]
        if len(recent) < self.window:
            return False
        addrs = {addr for kind, addr in recent if kind == "mem"}
        pauses = sum(1 for kind, _ in recent if kind == "pause")
        if pauses == len(recent):
            return True
        # All non-pause events hitting one address = same-area spinning.
        return len(addrs) <= 1

    def reset(self, thread: Optional[int] = None) -> None:
        """Forget history for one thread (or all)."""
        if thread is None:
            for recent in self._recent:
                recent.clear()
        else:
            self._recent[thread].clear()
