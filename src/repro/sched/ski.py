"""SKI-style schedule exploration baselines.

Two modes from the paper's comparison (section 5.4):

* :class:`SkiScheduler` — yields whenever it observes the write or read
  *instruction* involved in the PMC, regardless of the memory target.
  This is how the paper describes SKI's behaviour when driven by the
  same concurrent tests: it cannot tell whether the access touches the
  communicating object, so it explores many more interleavings.

* :class:`PctScheduler` — the PCT algorithm generalised for kernels (as
  in the SKI paper): random thread priorities with ``depth - 1`` random
  priority-change points over the expected instruction count; the lower
  priority thread only runs after a change point demotes the leader.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Set

from repro.machine.accesses import MemoryAccess

if TYPE_CHECKING:  # break the sched <-> pmc import cycle
    from repro.pmc.model import PMC


class SkiScheduler:
    """Yield at PMC instructions, ignoring memory targets."""

    def __init__(self, pmc: "PMC", seed: int = 0, switch_probability: float = 0.5):
        self.base_seed = seed
        self.switch_probability = switch_probability
        self.instructions: Set[str] = {pmc.write.ins, pmc.read.ins}
        self.rng = random.Random(seed)

    def begin_trial(self, trial: int) -> None:
        self.rng = random.Random(self.base_seed + trial)

    def on_access(self, access: MemoryAccess) -> bool:
        """Non-deterministic switch whenever a PMC instruction executes."""
        if access.ins in self.instructions:
            return self.rng.random() < self.switch_probability
        return False

    def end_trial(self, result) -> None:
        """SKI keeps no cross-trial state."""


class PctScheduler:
    """Probabilistic concurrency testing with priority change points."""

    def __init__(self, seed: int = 0, depth: int = 3, expected_length: int = 2000):
        self.base_seed = seed
        self.depth = depth
        self.expected_length = expected_length
        self._setup(random.Random(seed))

    def _setup(self, rng: random.Random) -> None:
        self.rng = rng
        self.priorities = [rng.random(), rng.random()]
        self.change_points = sorted(
            rng.randrange(1, max(2, self.expected_length))
            for _ in range(max(0, self.depth - 1))
        )
        self.executed = 0

    def begin_trial(self, trial: int) -> None:
        self._setup(random.Random(self.base_seed + trial))

    def on_access(self, access: MemoryAccess) -> bool:
        """Run the highest-priority thread; demote at change points."""
        self.executed += 1
        while self.change_points and self.executed >= self.change_points[0]:
            self.change_points.pop(0)
            current = access.thread
            self.priorities[current] = min(self.priorities) - self.rng.random()
        other = 1 - access.thread
        return self.priorities[other] > self.priorities[access.thread]

    def end_trial(self, result) -> None:
        """PCT keeps no cross-trial state."""
