"""The serialised two-vCPU executor.

This is the reproduction's hypervisor: it restores the fixed VM snapshot,
runs one or two test programs as kernel threads, performs every yielded
kernel op against the machine, traces all memory accesses, feeds
synchronisation events to the race detector, consults the scheduler
after every instruction, and applies the liveness heuristics.  Only one
vCPU executes at any time, exactly like SKI's controlled schedule
enforcement (section 4.4.1 of the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Generator, List, Optional, Sequence

from repro.fuzz.prog import Program, resolve_arg
from repro.kernel.context import KernelContext
from repro.kernel.kernel import Kernel
from repro.kernel.ops import CasOp, MemOp, PanicOp, PauseOp, PrintkOp, SyncOp
from repro.machine.accesses import AccessTrace, AccessType, MemoryAccess
from repro.machine.memory import PageFault
from repro.machine.snapshot import Snapshot
from repro.obs import NULL_OBSERVER
from repro.sched.liveness import LivenessMonitor

DEFAULT_MAX_INSTRUCTIONS = 200_000


@dataclass
class ExecutionResult:
    """Everything observed during one execution (trial).

    ``accesses`` is a columnar :class:`AccessTrace`; iterating it (or
    calling :meth:`shared_accesses`) materialises :class:`MemoryAccess`
    views on demand.
    """

    accesses: AccessTrace = dc_field(default_factory=AccessTrace)
    console: List[str] = dc_field(default_factory=list)
    returns: List[List[int]] = dc_field(default_factory=list)
    panicked: bool = False
    panic_message: str = ""
    deadlocked: bool = False
    budget_exceeded: bool = False
    instructions: int = 0
    switches: int = 0
    # Per-trial reset cost: pages copied back by the snapshot restore that
    # preceded this execution, and the wall time it took.  With dirty-page
    # tracking the page count is O(pages dirtied by the previous run).
    pages_restored: int = 0
    restore_seconds: float = 0.0
    races: List = dc_field(default_factory=list)
    # Instruction indexes at which a vCPU switch occurred (scheduler- or
    # liveness-driven).  Feeding these back via ``replay_switch_points``
    # reproduces the execution bit for bit — the deterministic bug
    # reproduction capability of section 6.
    switch_points: List[int] = dc_field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True when the trial ran to the end without a fatal event."""
        return not (self.panicked or self.deadlocked or self.budget_exceeded)

    def shared_accesses(self, thread: Optional[int] = None) -> List[MemoryAccess]:
        """Non-stack accesses (optionally restricted to one thread)."""
        return [
            a
            for a in self.accesses
            if not a.is_stack and (thread is None or a.thread == thread)
        ]


def run_program(
    kernel: Kernel,
    ctx: KernelContext,
    program: Program,
    start_call: int = 0,
    results: Optional[List[int]] = None,
) -> Generator:
    """Kernel-thread coroutine: run all calls of one test program.

    ``start_call``/``results`` let a memoized prefix rebuild the coroutine
    mid-program: execution resumes at call index ``start_call`` with the
    return values of the completed calls pre-seeded (``Res`` argument
    references resolve against them exactly as in a from-scratch run).
    """
    if results is None:
        results = []
    for call in program.calls[start_call:]:
        ctx.reset_stack()
        args = tuple(resolve_arg(arg, results) for arg in call.args)
        ret = yield from kernel.run_syscall(ctx, call.name, args)
        results.append(ret)
    return results


@dataclass
class ResumeState:
    """Mid-trial thread-0 state for a prefix-forked concurrent run.

    Built by :mod:`repro.sched.prefixfork` from a recorded sequential
    prefix: a delta snapshot of machine memory at the first switch point,
    the re-positioned thread-0 coroutine, and the bookkeeping the
    interpreter loop would have accumulated had it executed the prefix
    itself.  ``trace`` holds the prefix's access rows, of which the first
    ``trace_rows`` are copied into the resumed result.
    """

    snapshot: object  # Snapshot/ForkSnapshot: anything with .restore(machine)
    console_start: int
    gen: Generator
    ctx: KernelContext
    pending: object
    rcu_depth: int
    liveness: LivenessMonitor
    stuck0: bool
    seq: int
    ninstr: int
    trace: AccessTrace
    trace_rows: int


class _Thread:
    """Executor-internal per-vCPU state."""

    __slots__ = ("index", "gen", "ctx", "pending", "done", "returns", "rcu_depth")

    def __init__(self, index: int, gen: Generator, ctx: KernelContext):
        self.index = index
        self.gen = gen
        self.ctx = ctx
        self.pending = None  # value to send into the generator next
        self.done = False
        self.returns: List[int] = []
        self.rcu_depth = 0


class Executor:
    """Runs sequential or concurrent tests from a fixed snapshot."""

    def __init__(
        self,
        kernel: Kernel,
        snapshot: Snapshot,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ):
        self.kernel = kernel
        self.snapshot = snapshot
        self.max_instructions = max_instructions
        # Force a full-copy snapshot restore before every run instead of
        # the dirty-page incremental path (the pre-optimisation behaviour;
        # kept as a knob for the restore-cost benchmarks).
        self.full_restore = False
        # Observability hooks; the shared no-op unless the owning pipeline
        # (or a Stage-4 worker, per task) installs a live observer.
        self.obs = NULL_OBSERVER

    # -- public entry points ---------------------------------------------------

    def run_sequential(self, program: Program, proc: int = 0) -> ExecutionResult:
        """Run one program alone from the snapshot (profiling mode)."""
        return self._run([program], scheduler=None, procs=[proc])

    def run_concurrent(
        self,
        programs: Sequence[Program],
        scheduler=None,
        race_detector=None,
        replay_switch_points: Optional[Sequence[int]] = None,
        resume_from: Optional[ResumeState] = None,
    ) -> ExecutionResult:
        """Run two (or more) programs as concurrent kernel threads.

        With ``replay_switch_points`` (the ``switch_points`` of a prior
        result) the schedule is replayed exactly: the scheduler and the
        liveness heuristics are bypassed and switches happen at precisely
        the recorded instruction indexes, reproducing the execution.

        With ``resume_from`` the run starts at a memoized first switch
        point instead of the boot snapshot: thread 0's coroutine, the
        liveness window, the access trace and the instruction/sequence
        counters are restored from the recorded prefix, and execution
        proceeds on thread 1 exactly as if the prefix had just run.
        """
        max_procs = len(self.kernel.procs)
        if not 2 <= len(programs) <= max_procs:
            raise ValueError(
                f"concurrent execution takes 2..{max_procs} programs"
            )
        return self._run(
            list(programs),
            scheduler=scheduler,
            procs=list(range(len(programs))),
            race_detector=race_detector,
            replay_switch_points=replay_switch_points,
            resume=resume_from,
        )

    # -- the interpreter loop ----------------------------------------------------

    def _run(
        self,
        programs: List[Program],
        scheduler,
        procs: List[int],
        race_detector=None,
        replay_switch_points: Optional[Sequence[int]] = None,
        resume: Optional[ResumeState] = None,
    ) -> ExecutionResult:
        replay = set(replay_switch_points) if replay_switch_points is not None else None
        result = ExecutionResult()
        machine = self.kernel.machine
        if resume is None:
            if self.full_restore:
                machine.invalidate_restore_tracking()
            restore_start = time.perf_counter()
            result.pages_restored = self.snapshot.restore(machine)
            result.restore_seconds = time.perf_counter() - restore_start
            obs = self.obs
            if obs.enabled:
                # Reuses the restore timer above: tracing adds no clock
                # reads to the run path, and none of this executes when
                # disabled.
                obs.record_span(
                    "snapshot.restore",
                    result.restore_seconds,
                    pages=result.pages_restored,
                )
            console_start = len(machine.console)
        else:
            restore_start = time.perf_counter()
            result.pages_restored = resume.snapshot.restore(machine)
            result.restore_seconds = time.perf_counter() - restore_start
            obs = self.obs
            if obs.enabled:
                obs.record_span(
                    "snapshot.fork",
                    result.restore_seconds,
                    pages=result.pages_restored,
                )
            # Prefix printks belong to this trial's console slice: start
            # where the *boot* console ended, not where the fork console
            # ends.
            console_start = resume.console_start

        threads: List[_Thread] = []
        for i, program in enumerate(programs):
            if resume is not None and i == 0:
                thread = _Thread(0, resume.gen, resume.ctx)
                thread.pending = resume.pending
                thread.rcu_depth = resume.rcu_depth
                threads.append(thread)
                continue
            ctx = self.kernel.make_context(thread=i, proc_index=procs[i])
            gen = run_program(self.kernel, ctx, program)
            threads.append(_Thread(i, gen, ctx))

        nthreads = len(threads)
        if resume is None:
            liveness = LivenessMonitor(nthreads)
            # Sticky low-liveness marks: set while a thread looks stuck,
            # cleared as soon as its recent behaviour diversifies again.
            # When every runnable thread is sticky-stuck at once, nothing
            # can make progress: dead-/livelock.
            sticky_stuck = [False] * nthreads
            current = 0
            seq = 0
        else:
            liveness = resume.liveness
            sticky_stuck = [resume.stuck0] + [False] * (nthreads - 1)
            current = 1
            seq = resume.seq
            result.switches = 1
            result.switch_points.append(resume.ninstr)
            result.accesses.extend_prefix(resume.trace, resume.trace_rows)

        # The interpreter inner loop below runs once per instruction over
        # millions of trials, so everything it touches is pre-resolved:
        # bound methods instead of attribute chains, a runnable counter
        # instead of a per-instruction list comprehension, one class
        # dispatch instead of an isinstance chain, and a local instruction
        # counter written back to ``result`` only on exit.  Sequential
        # profiling (no scheduler, no race detector) records accesses
        # straight into the columnar trace — zero per-access objects —
        # while concurrent trials build the MemoryAccess records the
        # scheduler and detector require.
        memory = machine.memory
        read_int = memory.read_int
        write_int = memory.write_int
        in_stack = machine.in_stack
        trace = result.accesses
        append_fields = trace.append_fields
        append_access = trace.append
        note_access = liveness.note_access
        is_stuck = liveness.is_stuck
        switch_points = result.switch_points
        sched_on_access = scheduler.on_access if scheduler is not None else None
        detect_on_access = race_detector.on_access if race_detector is not None else None
        sequential = sched_on_access is None and detect_on_access is None
        max_instructions = self.max_instructions
        READ = AccessType.READ
        runnable = nthreads
        ninstr = 0 if resume is None else resume.ninstr

        while runnable:
            if ninstr >= max_instructions:
                result.budget_exceeded = True
                break

            thread = threads[current]
            if thread.done:
                current = self._other(current, threads)
                continue

            # Advance the coroutine by one instruction.  A fresh generator
            # accepts send(None), so no special start-up case is needed.
            try:
                op = thread.gen.send(thread.pending)
            except StopIteration as stop:
                thread.done = True
                runnable -= 1
                thread.returns = stop.value or []
                liveness.note_progress(thread.index)
                current = self._other(current, threads)
                continue

            thread.pending = None
            ninstr += 1
            switch = False
            cls = op.__class__

            if cls is MemOp:
                addr = op.addr
                size = op.size
                ins = op.ins
                try:
                    if op.type is READ:
                        value = read_int(addr, size)
                        thread.pending = value
                    else:
                        value = op.value
                        write_int(addr, size, value)
                except PageFault as fault:
                    self._page_fault_panic(fault, ins, result)
                    break
                tindex = thread.index
                is_stack = in_stack(tindex, addr, size)
                if sequential:
                    append_fields(seq, tindex, op.type, addr, size, value, ins, is_stack)
                    note_access(tindex, ins, addr)
                else:
                    access = MemoryAccess(
                        seq=seq,
                        thread=tindex,
                        type=op.type,
                        addr=addr,
                        size=size,
                        value=value,
                        ins=ins,
                        is_stack=is_stack,
                    )
                    append_access(access)
                    note_access(tindex, ins, addr)
                    if detect_on_access is not None and not is_stack:
                        detect_on_access(access, atomic=op.atomic)
                    if sched_on_access is not None:
                        switch = sched_on_access(access)
                seq += 1
            elif cls is CasOp:
                switch = self._do_cas(
                    thread, op, seq, result, liveness, scheduler, race_detector
                )
                seq += 2
                if result.panicked:
                    break
            elif cls is SyncOp:
                self._do_sync(thread, threads, op, race_detector)
            elif cls is PrintkOp:
                machine.printk(op.message)
            elif cls is PanicOp:
                self._panic(op.message, result)
                break
            elif cls is PauseOp:
                liveness.note_pause(thread.index)
                switch = True
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown kernel op {op!r}")

            if replay is not None:
                # Replay mode: the recorded switch points fully determine
                # the schedule; scheduler and liveness are bypassed.
                switch = ninstr in replay
            elif is_stuck(thread.index):
                # Liveness: force a switch away from a stuck thread; when
                # every runnable thread is sticky-stuck, the system is
                # dead(/live)locked.  The mark stays set while the thread
                # keeps spinning (windows are not reset, so evidence
                # accumulates).
                sticky_stuck[thread.index] = True
                others = [t for t in threads if not t.done and t.index != current]
                if others and all(sticky_stuck[t.index] for t in others):
                    result.deadlocked = True
                    break
                switch = True
            else:
                sticky_stuck[thread.index] = False

            if switch and nthreads > 1:
                new = self._other(current, threads)
                if new != current:
                    result.switches += 1
                    switch_points.append(ninstr)
                    current = new

        result.instructions = ninstr
        result.console = machine.console[console_start:]
        result.returns = [t.returns for t in threads]
        if race_detector is not None:
            result.races = race_detector.reports()
        return result

    # -- op handlers -----------------------------------------------------------

    def _do_cas(
        self, thread, op: CasOp, seq, result, liveness, scheduler, race_detector
    ) -> bool:
        machine = self.kernel.machine
        memory = machine.memory
        try:
            old = memory.read_int(op.addr, op.size)
            swapped = old == op.expected
            if swapped:
                memory.write_int(op.addr, op.size, op.new)
        except PageFault as fault:
            self._page_fault_panic(fault, op.ins, result)
            return False
        thread.pending = old
        is_stack = machine.in_stack(thread.index, op.addr, op.size)
        trace = result.accesses
        if scheduler is None and race_detector is None:
            # Sequential profiling: columnar append, no record objects.
            trace.append_fields(
                seq, thread.index, AccessType.READ, op.addr, op.size, old, op.ins, is_stack
            )
            if swapped:
                trace.append_fields(
                    seq + 1,
                    thread.index,
                    AccessType.WRITE,
                    op.addr,
                    op.size,
                    op.new,
                    op.ins,
                    is_stack,
                )
            liveness.note_access(thread.index, op.ins, op.addr)
            return False
        read = MemoryAccess(
            seq=seq,
            thread=thread.index,
            type=AccessType.READ,
            addr=op.addr,
            size=op.size,
            value=old,
            ins=op.ins,
            is_stack=is_stack,
        )
        trace.append(read)
        accesses = [read]
        if swapped:
            write = MemoryAccess(
                seq=seq + 1,
                thread=thread.index,
                type=AccessType.WRITE,
                addr=op.addr,
                size=op.size,
                value=op.new,
                ins=op.ins,
                is_stack=is_stack,
            )
            trace.append(write)
            accesses.append(write)
        liveness.note_access(thread.index, op.ins, op.addr)
        switch = False
        for access in accesses:
            if race_detector is not None and not is_stack:
                race_detector.on_access(access, atomic=True)
            if scheduler is not None:
                switch = scheduler.on_access(access) or switch
        return switch

    def _do_sync(self, thread, threads, op: SyncOp, race_detector) -> None:
        if op.kind == "rcu_read_lock":
            thread.rcu_depth += 1
        elif op.kind == "rcu_read_unlock":
            thread.rcu_depth = max(0, thread.rcu_depth - 1)
        elif op.kind == "rcu_synchronize":
            others = [t for t in threads if t.index != thread.index and not t.done]
            thread.pending = all(t.rcu_depth == 0 for t in others)
        if race_detector is not None:
            race_detector.on_sync(thread.index, op)

    # -- failure paths -------------------------------------------------------------

    def _page_fault_panic(self, fault: PageFault, ins: str, result: ExecutionResult) -> None:
        if fault.addr < 4096:
            message = (
                f"BUG: kernel NULL pointer dereference, address: "
                f"{fault.addr:#018x} RIP: {ins}"
            )
        else:
            message = (
                f"BUG: unable to handle page fault for address: "
                f"{fault.addr:#018x} RIP: {ins}"
            )
        self._panic(message, result)

    def _panic(self, message: str, result: ExecutionResult) -> None:
        self.kernel.machine.printk(message)
        self.kernel.machine.printk("Kernel panic - not syncing: Fatal exception")
        result.panicked = True
        result.panic_message = message

    @staticmethod
    def _other(current: int, threads: List[_Thread]) -> int:
        """Index of the next runnable thread after ``current``."""
        n = len(threads)
        for step in range(1, n + 1):
            candidate = (current + step) % n
            if not threads[candidate].done:
                return candidate
        return current
