"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``campaign``  — run one strategy campaign and print the results.
* ``table3``    — run every generation method with an equal budget.
* ``case``      — reproduce one of the paper's case-study figures.
* ``stats``     — aggregate a ``--trace-out`` JSONL trace into tables.
* ``strategies``— list the Table 1 clustering strategies.
* ``bugs``      — list the Table 2 bug catalog.
* ``serve`` / ``submit`` / ``jobs`` / ``job`` / ``watch`` — the
  multi-tenant campaign service (see :mod:`repro.service.cli`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.detect.catalog import BUG_CATALOG, spec_by_id
from repro.orchestrate.pipeline import (
    DUPLICATE_PAIRING,
    RANDOM_PAIRING,
    RANDOM_S_INS_PAIR,
    Snowboard,
    SnowboardConfig,
)
from repro.orchestrate.results import TABLE3_HEADER
from repro.pmc.clustering import ALL_STRATEGIES

ALL_METHODS = tuple(s.name for s in ALL_STRATEGIES) + (
    RANDOM_S_INS_PAIR,
    RANDOM_PAIRING,
    DUPLICATE_PAIRING,
)

CASES = ("l2tp", "mac", "rhashtable")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Snowboard (SOSP 2021) reproduction over a simulated mini-kernel",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run one strategy campaign")
    campaign.add_argument("--strategy", default="S-INS-PAIR", choices=ALL_METHODS)
    campaign.add_argument("--budget", type=int, default=50, help="concurrent tests")
    campaign.add_argument("--trials", type=int, default=16, help="trials per PMC")
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--corpus", type=int, default=260, help="fuzzer budget")
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="Stage-4 worker count (>1 runs the work-queue fleet; "
        "same bug set as serial for the same seed)",
    )
    campaign.add_argument(
        "--fleet",
        choices=("threads", "processes", "sockets"),
        default="threads",
        help="worker substrate for --workers > 1: in-process threads, "
        "spawned worker processes behind the picklable wire format, or "
        "socket workers speaking the same envelopes as length-prefixed "
        "JSON frames over TCP (bit-identical results in every case)",
    )
    campaign.add_argument(
        "--fleet-listen",
        metavar="HOST:PORT",
        default=None,
        help="socket-fleet listen endpoint (default 127.0.0.1:0 = "
        "ephemeral port; requires --fleet sockets)",
    )
    campaign.add_argument(
        "--fleet-token",
        metavar="TOKEN",
        default=None,
        help="shared handshake token for socket workers (default: a "
        "fresh random token per round; requires --fleet sockets)",
    )
    campaign.add_argument(
        "--fleet-external",
        action="store_true",
        help="do not auto-spawn local socket workers; wait for external "
        "'repro fleet-worker --connect' workers instead (requires "
        "--fleet sockets, --fleet-listen and --fleet-token)",
    )
    campaign.add_argument(
        "--fixed",
        action="store_true",
        help="run against the patched kernel (expects zero findings)",
    )
    campaign.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="journal every merged Stage-4 task to this JSONL file "
        "(crash-safe: a killed campaign can be resumed bit-identically)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing --checkpoint journal and execute only "
        "the missing tasks (requires --checkpoint)",
    )
    campaign.add_argument(
        "--checkpoint-fsync",
        action="store_true",
        help="fsync the checkpoint journal after every record: survives "
        "machine crashes, not just process kills (requires --checkpoint)",
    )
    campaign.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a JSONL observability trace (spans, funnel counters, "
        "events) to FILE; render it later with 'repro stats FILE'",
    )
    campaign.add_argument(
        "--rounds",
        type=int,
        default=None,
        metavar="N",
        help="run a round-based incremental campaign: N rounds of corpus "
        "growth, delta PMC identification and selection from clusters "
        "not tested in earlier rounds (1 round == the batch campaign)",
    )
    campaign.add_argument(
        "--round-budget",
        type=int,
        default=None,
        metavar="M",
        help="concurrent tests per round (rounds mode; defaults to --budget)",
    )
    campaign.add_argument(
        "--corpus-growth",
        type=int,
        default=None,
        metavar="K",
        help="fuzzer executions added per round after the first "
        "(rounds mode; defaults to half of --corpus)",
    )
    campaign.add_argument(
        "--pmc-spill-dir",
        metavar="DIR",
        default=None,
        help="spill the PMC access index to append-only segment files in "
        "DIR (created if missing); results stay bit-identical to the "
        "in-memory index, and a killed campaign resumes from the store "
        "manifest",
    )
    campaign.add_argument(
        "--pmc-hot-mb",
        type=float,
        default=None,
        metavar="MB",
        help="bound the in-memory hot tier of the spilled access index "
        "to roughly MB megabytes of records; least-recently-touched "
        "buckets evict to disk (requires --pmc-spill-dir)",
    )
    campaign.add_argument(
        "--no-prefix-fork",
        action="store_true",
        help="disable sequential-prefix fork memoization and restore "
        "every trial from the boot snapshot (results are bit-identical "
        "either way; this only trades away the speedup)",
    )
    campaign.add_argument(
        "--prune-commuting",
        action="store_true",
        help="prune trials whose first-switch candidates commute "
        "(partial-order reduction over the recorded prefix); runs fewer "
        "trials per test, crediting skips to stage4.trials_pruned",
    )

    stats = sub.add_parser("stats", help="summarise a --trace-out trace file")
    stats.add_argument("trace", help="path to a JSONL trace written by --trace-out")
    stats.add_argument(
        "--markdown", action="store_true", help="render GitHub-flavoured tables"
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the report as machine-readable JSON instead of tables",
    )

    table3 = sub.add_parser("table3", help="compare all generation methods")
    table3.add_argument("--budget", type=int, default=40)
    table3.add_argument("--seed", type=int, default=7)
    table3.add_argument("--corpus", type=int, default=260)

    case = sub.add_parser("case", help="reproduce a case-study figure")
    case.add_argument("name", choices=CASES)

    run = sub.add_parser("run", help="run textual program(s) on the kernel")
    run.add_argument("programs", nargs="+", help="1 (sequential) or 2 (concurrent) program files")
    run.add_argument("--seed", type=int, default=0, help="schedule seed (concurrent)")
    run.add_argument("--trials", type=int, default=16, help="interleavings (concurrent)")
    run.add_argument("--fixed", action="store_true", help="use the patched kernel")

    replay = sub.add_parser("replay", help="replay a reproduction package")
    replay.add_argument("package", help="path to a ReproPackage JSON file")
    replay.add_argument(
        "--minimize", action="store_true", help="ddmin the schedule first"
    )

    worker = sub.add_parser(
        "fleet-worker",
        help="join a socket-fleet coordinator as a Stage-4 worker",
    )
    worker.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="coordinator endpoint (the campaign's --fleet-listen)",
    )
    worker.add_argument(
        "--token",
        metavar="TOKEN",
        required=True,
        help="shared handshake token (the campaign's --fleet-token)",
    )
    worker.add_argument(
        "--once",
        action="store_true",
        help="serve a single connection and exit instead of reconnecting "
        "as a fresh worker after a lost link",
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="how long to keep redialing a refused/unreachable endpoint "
        "before giving up (default 20)",
    )

    sub.add_parser("strategies", help="list the clustering strategies")
    sub.add_parser("bugs", help="list the Table 2 bug catalog")

    from repro.service import cli as service_cli

    service_cli.register(sub)
    return parser


def _make_observer(args):
    """Build the campaign Observer for ``--trace-out`` (None when off)."""
    if not getattr(args, "trace_out", None):
        return None
    from repro.obs import JsonlSink, Observer

    header = {
        "strategy": args.strategy,
        "seed": args.seed,
        "budget": args.budget,
        "trials": args.trials,
        "workers": args.workers,
        "fleet": args.fleet,
        "fixed": args.fixed,
    }
    if getattr(args, "rounds", None):
        header["rounds"] = args.rounds
        header["round_budget"] = args.round_budget or args.budget
    return Observer(JsonlSink(args.trace_out, header=header))


def _cmd_campaign(args) -> int:
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.checkpoint_fsync and not args.checkpoint:
        print("error: --checkpoint-fsync requires --checkpoint", file=sys.stderr)
        return 2
    if args.fleet in ("processes", "sockets") and args.workers <= 1:
        print(
            f"error: --fleet {args.fleet} requires --workers > 1 "
            "(one worker runs the serial path)",
            file=sys.stderr,
        )
        return 2
    if args.fleet != "sockets" and (
        args.fleet_listen is not None
        or args.fleet_token is not None
        or args.fleet_external
    ):
        print(
            "error: --fleet-listen/--fleet-token/--fleet-external require "
            "--fleet sockets",
            file=sys.stderr,
        )
        return 2
    if args.fleet_external and (args.fleet_listen is None or args.fleet_token is None):
        print(
            "error: --fleet-external requires --fleet-listen and "
            "--fleet-token (external workers must know where to dial and "
            "what to present)",
            file=sys.stderr,
        )
        return 2
    if args.rounds is not None and args.rounds < 1:
        print("error: --rounds must be at least 1", file=sys.stderr)
        return 2
    if args.rounds is None and (
        args.round_budget is not None or args.corpus_growth is not None
    ):
        print(
            "error: --round-budget/--corpus-growth require --rounds",
            file=sys.stderr,
        )
        return 2
    if args.pmc_hot_mb is not None and not args.pmc_spill_dir:
        print("error: --pmc-hot-mb requires --pmc-spill-dir", file=sys.stderr)
        return 2
    pmc_hot_records = None
    if args.pmc_hot_mb is not None:
        from repro.pmc.store import RECORD_SIZE

        # The hot tier holds parsed tuples, not packed records; the
        # fixed record width is still the natural sizing unit.
        pmc_hot_records = max(1, int(args.pmc_hot_mb * 1024 * 1024) // RECORD_SIZE)
    fleet_knobs = {}
    if args.fleet_listen is not None:
        fleet_knobs["fleet_listen"] = args.fleet_listen
    if args.fleet_token is not None:
        fleet_knobs["fleet_token"] = args.fleet_token
    if args.fleet_external:
        fleet_knobs["fleet_spawn_workers"] = False
    config = SnowboardConfig(
        seed=args.seed,
        corpus_budget=args.corpus,
        trials_per_pmc=args.trials,
        fixed_kernel=args.fixed,
        pmc_spill_dir=args.pmc_spill_dir,
        pmc_hot_records=pmc_hot_records,
        prefix_fork=not args.no_prefix_fork,
        prune_commuting=args.prune_commuting,
        **fleet_knobs,
    )
    observer = _make_observer(args)
    snowboard = Snowboard(config, observer=observer).prepare()
    if args.rounds is not None:
        budget_text = (
            f"rounds={args.rounds}, "
            f"round_budget={args.round_budget or args.budget}"
        )
    else:
        budget_text = f"budget={args.budget}"
    print(
        f"corpus={len(snowboard.corpus)} tests, pmcs={len(snowboard.pmcset)}, "
        f"strategy={args.strategy}, {budget_text}"
    )
    try:
        if args.rounds is not None:
            campaign = snowboard.run_rounds(
                args.rounds,
                round_budget=args.round_budget or args.budget,
                strategy=args.strategy,
                workers=args.workers,
                corpus_growth=args.corpus_growth,
                checkpoint_path=args.checkpoint,
                resume=args.resume,
                fleet=args.fleet,
                checkpoint_fsync=args.checkpoint_fsync,
            )
        else:
            campaign = snowboard.run_campaign(
                args.strategy,
                test_budget=args.budget,
                workers=args.workers,
                checkpoint_path=args.checkpoint,
                resume=args.resume,
                fleet=args.fleet,
                checkpoint_fsync=args.checkpoint_fsync,
            )
    finally:
        if observer is not None:
            observer.close()
    if args.rounds is not None:
        for info in snowboard.state.rounds_log:
            print(
                f"round {info.round}: tests={info.ntests} "
                f"corpus={info.corpus_size} (+{info.new_corpus_tests}) "
                f"pmcs={info.pmcs_total} (+{info.new_pmcs})"
            )
    print(TABLE3_HEADER)
    print(campaign.table_row())
    print(
        f"executed: tests={campaign.tested_pmcs} trials={campaign.trials} "
        f"observations={len(campaign.records)} bugs={campaign.distinct_bugs}"
    )
    print(f"accuracy: {campaign.accuracy:.1%} of tested PMCs exercised")
    print(
        f"throughput: {campaign.executions_per_minute:.0f} executions/min "
        f"({campaign.workers} worker(s), {campaign.pages_per_trial:.1f} pages "
        f"restored/trial, {campaign.restore_fraction:.1%} of time in restore"
        + (f", {campaign.task_failures} task failures" if campaign.task_failures else "")
        + (f", {campaign.task_retries} task retries" if campaign.task_retries else "")
        + (
            f", {campaign.worker_respawns} worker respawns"
            if campaign.worker_respawns
            else ""
        )
        + ")"
    )
    for bug_id, at in sorted(campaign.bugs_found().items()):
        spec = spec_by_id(bug_id)
        print(f"  {bug_id} [{spec.bug_type}/{spec.triage.value}] @{at}: {spec.summary}")
    if args.trace_out:
        print(f"trace written to {args.trace_out} (render: repro stats {args.trace_out})")
    return 0


def _cmd_stats(args) -> int:
    from repro.obs.sink import TraceError
    from repro.obs.stats import load_stats, render_stats, stats_to_obj

    try:
        stats = load_stats(args.trace)
    except FileNotFoundError:
        print(f"error: no such trace file: {args.trace}", file=sys.stderr)
        return 2
    except TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(stats_to_obj(stats), indent=2, sort_keys=False))
        return 0
    print(render_stats(stats, markdown=args.markdown))
    return 0


def _cmd_table3(args) -> int:
    config = SnowboardConfig(seed=args.seed, corpus_budget=args.corpus)
    snowboard = Snowboard(config).prepare()
    print(TABLE3_HEADER)
    for method in ALL_METHODS:
        campaign = snowboard.run_campaign(method, test_budget=args.budget)
        print(campaign.table_row())
    return 0


def _run_case(name: str) -> int:
    """Inline case-study runner (mirrors the examples/ scripts)."""
    from repro.fuzz.prog import Call, Res, prog
    from repro.kernel.kernel import boot_kernel
    from repro.pmc.identify import identify_pmcs
    from repro.profile.profiler import profile_from_result
    from repro.sched.executor import Executor
    from repro.sched.snowboard import SnowboardScheduler

    setups = {
        "l2tp": (
            prog(Call("socket", (2,)), Call("connect", (Res(0), 1))),
            prog(
                Call("socket", (2,)),
                Call("connect", (Res(0), 1)),
                Call("sendmsg", (Res(0), 5)),
            ),
            lambda p: "l2tp_tunnel_register" in p.write.ins,
            lambda result: result.panicked,
        ),
        "mac": (
            prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xFFEEDDCCBBAA))),
            prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0))),
            lambda p: "ioctl_set_mac" in p.write.ins and "ioctl_get_mac" in p.read.ins,
            lambda result: len(result.returns[1]) > 1
            and result.returns[1][1] not in (0x0250_5600_0000, 0xFFEE_DDCC_BBAA),
        ),
        "rhashtable": (
            prog(Call("msgget", (2,)), Call("msgctl", (2, 0))),
            prog(Call("msgget", (2,))),
            lambda p: "rht_insert" in p.write.ins and "rht_ptr" in p.read.ins,
            lambda result: result.panicked,
        ),
    }
    writer, reader, predicate, oracle = setups[name]
    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)
    pw = profile_from_result(0, writer, executor.run_sequential(writer))
    pr = profile_from_result(1, reader, executor.run_sequential(reader))
    pmcset = identify_pmcs([pw, pr])
    pmc = next(p for p in pmcset if (0, 1) in pmcset.pairs(p) and predicate(p))
    print(f"scheduling hint: {pmc}")
    scheduler = SnowboardScheduler(pmc, seed=5)
    for trial in range(128):
        scheduler.begin_trial(trial)
        result = executor.run_concurrent([writer, reader], scheduler=scheduler)
        if oracle(result):
            print(f"exposed at trial {trial}")
            for line in result.console:
                print(f"  {line}")
            if name == "mac":
                print(f"  torn MAC returned to user space: {result.returns[1][1]:#x}")
            return 0
        scheduler.end_trial(result)
    print("not exposed in 128 trials")
    return 1


def _cmd_run(args) -> int:
    from repro.detect.datarace import RaceDetector
    from repro.detect.report import observe
    from repro.fuzz.text import parse_program
    from repro.kernel.kernel import boot_kernel
    from repro.sched.executor import Executor
    from repro.sched.random_sched import RandomScheduler

    programs = []
    for path in args.programs:
        with open(path) as handle:
            programs.append(parse_program(handle.read()))
    kernel, snapshot = boot_kernel(fixed=args.fixed)
    executor = Executor(kernel, snapshot)

    if len(programs) == 1:
        result = executor.run_sequential(programs[0])
        print(f"returns: {result.returns[0]}")
        for line in result.console:
            print(f"console: {line}")
        return 0 if result.completed else 1

    findings = {}
    for trial in range(args.trials):
        scheduler = RandomScheduler(seed=args.seed + trial, switch_probability=0.35)
        scheduler.begin_trial(0)
        detector = RaceDetector(nthreads=len(programs))
        result = executor.run_concurrent(
            programs, scheduler=scheduler, race_detector=detector
        )
        for obs in observe(result):
            findings.setdefault(obs.key, obs)
        if result.panicked:
            break
    print(f"{args.trials} interleavings explored; {len(findings)} distinct findings")
    for obs in findings.values():
        print(f"  {obs}")
    return 0


def _cmd_replay(args) -> int:
    from repro.kernel.kernel import boot_kernel
    from repro.orchestrate.persistence import ReproPackage, reproduce
    from repro.sched.executor import Executor
    from repro.sched.minimize import minimize_schedule

    package = ReproPackage.load(args.package)
    print(package.render_report())
    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)
    if args.minimize:
        minimal = minimize_schedule(
            executor,
            [package.writer, package.reader],
            package.switch_points,
            oracle=lambda r: (
                r.panic_message == package.expected_panic
                if package.expected_panic
                else r.console == package.expected_console
            ),
        )
        print(f"\nminimised schedule: {package.switch_points} -> {minimal}")
        package.switch_points = minimal
        package.expected_console = []  # transcripts differ under the minimal set
    result = reproduce(executor, package)
    print(f"\nreplay: panicked={result.panicked} console={result.console}")
    return 0


def _cmd_strategies(_args) -> int:
    for strategy in ALL_STRATEGIES:
        keys = "two keys (ins_w; ins_r)" if len(strategy.keys) == 2 else "one key"
        print(f"{strategy.name:<16} {keys}")
    print(f"{RANDOM_S_INS_PAIR:<16} S-INS-PAIR clusters, random order")
    print(f"{RANDOM_PAIRING:<16} no analysis: random test pairs")
    print(f"{DUPLICATE_PAIRING:<16} no analysis: identical test pairs")
    return 0


def _cmd_bugs(_args) -> int:
    for spec in BUG_CATALOG:
        print(
            f"{spec.id}  #{spec.paper_id:<3} {spec.bug_type:<3} "
            f"{spec.triage.value:<8} {spec.subsystem:<16} {spec.summary}"
        )
    return 0


def _cmd_fleet_worker(args) -> int:
    from repro.orchestrate.fleet import WireFormatError
    from repro.orchestrate.socketfleet import socket_worker_main

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not (0 < port < 65536):
        print(
            f"error: --connect expects HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    try:
        return socket_worker_main(
            host,
            port,
            args.token,
            reconnect=not args.once,
            connect_deadline=args.connect_timeout,
        )
    except WireFormatError as error:
        print(f"error: handshake rejected: {error}", file=sys.stderr)
        return 2
    except PermissionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except BrokenPipeError:
        # Downstream consumer (e.g. `repro stats ... | head`) closed the
        # pipe early; detach stdout so the interpreter's shutdown flush
        # does not raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args) -> int:
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "table3":
        return _cmd_table3(args)
    if args.command == "case":
        return _run_case(args.name)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "strategies":
        return _cmd_strategies(args)
    if args.command == "bugs":
        return _cmd_bugs(args)
    if args.command == "fleet-worker":
        return _cmd_fleet_worker(args)
    from repro.service import cli as service_cli

    if service_cli.handles(args.command):
        return service_cli.dispatch(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
