"""Snowboard reproduction — systematic inter-thread communication analysis.

A from-scratch Python reproduction of *Snowboard: Finding Kernel
Concurrency Bugs through Systematic Inter-thread Communication Analysis*
(Gong, Altınbüken, Fonseca, Maniatis — SOSP 2021), including every
substrate the paper depends on: a deterministic simulated machine with
instruction-granular scheduling (the modified-QEMU/SKI stand-in), a
miniature kernel with planted concurrency bugs mirroring the paper's
Table 2, a Syzkaller-like coverage-guided sequential fuzzer, the PMC
analysis pipeline (Algorithm 1, the Table 1 clustering strategies,
uncommon-first selection), the PMC-hinted scheduler (Algorithm 2), and
the bug oracles.

Quickstart::

    from repro import Snowboard, SnowboardConfig

    sb = Snowboard(SnowboardConfig(seed=7)).prepare()
    campaign = sb.run_campaign("S-INS-PAIR", test_budget=60)
    print(campaign.summary())
"""

from repro.detect import (
    BUG_CATALOG,
    BugObservation,
    ConsoleChecker,
    RaceDetector,
    RaceReport,
    Triage,
    match_observations,
    observe,
)
from repro.fuzz import Call, Program, ProgramGenerator, Res, build_corpus, prog
from repro.kernel import Kernel, boot_kernel
from repro.machine import Machine, MemoryAccess, Snapshot
from repro.orchestrate import (
    CampaignResult,
    ConcurrentTest,
    Snowboard,
    SnowboardConfig,
)
from repro.pmc import (
    ALL_STRATEGIES,
    PMC,
    STRATEGIES_BY_NAME,
    AccessKey,
    ClusteringStrategy,
    identify_pmcs,
    select_exemplars,
)
from repro.profile import Profiler, TestProfile, profile_corpus
from repro.sched import (
    Executor,
    RandomScheduler,
    SkiScheduler,
    SnowboardScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "BUG_CATALOG",
    "BugObservation",
    "ConsoleChecker",
    "RaceDetector",
    "RaceReport",
    "Triage",
    "match_observations",
    "observe",
    "Call",
    "Program",
    "ProgramGenerator",
    "Res",
    "build_corpus",
    "prog",
    "Kernel",
    "boot_kernel",
    "Machine",
    "MemoryAccess",
    "Snapshot",
    "CampaignResult",
    "ConcurrentTest",
    "Snowboard",
    "SnowboardConfig",
    "ALL_STRATEGIES",
    "PMC",
    "STRATEGIES_BY_NAME",
    "AccessKey",
    "ClusteringStrategy",
    "identify_pmcs",
    "select_exemplars",
    "Profiler",
    "TestProfile",
    "profile_corpus",
    "Executor",
    "RandomScheduler",
    "SkiScheduler",
    "SnowboardScheduler",
    "__version__",
]
