"""The durable job table: an append-only registry journal + per-job dirs.

Layout under the service data directory::

    registry.jsonl            lifecycle journal (submit/state/snapshot)
    endpoint                  "host:port" of the listening daemon
    service.jsonl             daemon-wide obs trace (all jobs teed)
    jobs/<job_id>/
        checkpoint.jsonl      the job's campaign journal (run_rounds)
        trace.jsonl           the job's obs trace (appends across restarts)
        summary.json          final CampaignResult.summary() (terminal jobs)
        packages/<bug>.json   reproduction packages (terminal jobs)
        snapshots/<id>.jsonl  frozen copies of the campaign journal

Every registry record is one flushed, digest-protected JSON line — the
same append-only, torn-tail-tolerant discipline as the campaign
checkpoint journal, and the same crash contract: SIGKILL the daemon at
any point, reopen the registry, and every job is back with its exact
state (jobs that were mid-turn come back ``pending`` and re-enter the
scheduler; their campaign journals make the replay bit-identical).
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, Optional

from repro.orchestrate.persistence import record_digest
from repro.service.jobs import (
    PENDING,
    RUNNING,
    CampaignJob,
    JobSpec,
)


class RegistryError(ValueError):
    """Unknown job, bad snapshot, or a corrupted registry record."""


class JobRegistry:
    """All jobs the service has ever accepted, durably journalled."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(os.path.join(self.root, "jobs"), exist_ok=True)
        self.path = os.path.join(self.root, "registry.jsonl")
        self.jobs: Dict[str, CampaignJob] = {}
        self._next_id = 1
        valid_bytes = self._replay()
        if os.path.exists(self.path) and os.path.getsize(self.path) > valid_bytes:
            # A SIGKILL mid-append left a torn tail.  Cut it off before
            # reopening for append: writing the next record glued onto
            # the partial line would make the *following* replay stop at
            # the mangled line and silently drop every record after it.
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
        self._handle = open(self.path, "a", encoding="utf-8")

    # -- journal ---------------------------------------------------------------

    def _append(self, obj: Dict) -> None:
        obj["digest"] = record_digest(obj)
        self._handle.write(json.dumps(obj, sort_keys=True) + "\n")
        self._handle.flush()

    def _replay(self) -> int:
        """Rebuild the job table from the journal.

        Returns the byte length of the fully-parsed prefix; anything
        past it is a torn tail that ``__init__`` truncates before the
        append handle is opened.
        """
        valid = 0
        if not os.path.exists(self.path):
            return valid
        with open(self.path, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail: keep the valid prefix
                try:
                    line = raw.decode("utf-8").strip()
                except UnicodeDecodeError:
                    break
                if line:
                    try:
                        obj = json.loads(line)
                    except json.JSONDecodeError:
                        break
                    digest = obj.pop("digest", None)
                    if digest != record_digest(obj):
                        raise RegistryError(
                            f"registry {self.path!r}: record failed its digest "
                            f"check ({obj.get('kind')!r})"
                        )
                    self._apply(obj)
                valid += len(raw)
        # Jobs that owned a scheduler turn when the daemon died come
        # back as pending — their campaign journal holds every merged
        # task, so the replayed rounds land bit-identically.
        for job in self.jobs.values():
            if job.state == RUNNING:
                job.state = PENDING
        return valid

    def _apply(self, obj: Dict) -> None:
        kind = obj.get("kind")
        if kind == "submit":
            job = CampaignJob.from_obj(obj["job"])
            self.jobs[job.job_id] = job
            self._next_id = max(self._next_id, job.submit_seq + 1)
        elif kind == "state":
            job = self.jobs.get(str(obj["job_id"]))
            if job is None:
                raise RegistryError(
                    f"registry {self.path!r}: state record for unknown "
                    f"job {obj.get('job_id')!r}"
                )
            job.state = str(obj["state"])
            job.rounds_done = int(obj.get("rounds_done", job.rounds_done))
            job.error = str(obj.get("error", job.error))
        elif kind == "snapshot":
            job = self.jobs.get(str(obj["job_id"]))
            if job is not None:
                job.snapshot_seq = max(
                    job.snapshot_seq, int(obj.get("snapshot_seq", 0))
                )
        # Unknown kinds are skipped: newer daemons may add record types,
        # and an old reader must still recover every job it understands.

    # -- job table -------------------------------------------------------------

    def job(self, job_id: str) -> CampaignJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise RegistryError(f"unknown job {job_id!r}")
        return job

    def list(self, tenant: Optional[str] = None) -> List[CampaignJob]:
        jobs = sorted(self.jobs.values(), key=lambda j: j.submit_seq)
        if tenant is None:
            return jobs
        return [j for j in jobs if j.tenant == tenant]

    def submit(
        self,
        tenant: str,
        spec: JobSpec,
        forked_from: str = "",
        checkpoint_source: str = "",
    ) -> CampaignJob:
        spec.validate()
        if not tenant:
            raise ValueError("tenant must be non-empty")
        seq = self._next_id
        self._next_id += 1
        job = CampaignJob(
            job_id=f"job-{seq:04d}",
            tenant=tenant,
            spec=spec,
            forked_from=forked_from,
            submit_seq=seq,
        )
        os.makedirs(self.job_dir(job.job_id), exist_ok=True)
        # The checkpoint must exist before the submit record is
        # journalled: a crash between the two otherwise recovers a
        # forked child that silently starts from round one while its
        # forked_from provenance claims the snapshot.  The inverse
        # crash (checkpoint copied, record never landed) leaves an
        # orphan under a job id that will be reused — clear it so a
        # fresh submit never adopts another job's journal.
        checkpoint = self.checkpoint_path(job.job_id)
        if os.path.exists(checkpoint):
            os.remove(checkpoint)
        if checkpoint_source and os.path.getsize(checkpoint_source) > 0:
            shutil.copyfile(checkpoint_source, checkpoint)
        self.jobs[job.job_id] = job
        self._append({"kind": "submit", "job": job.to_obj()})
        return job

    def record_state(self, job: CampaignJob) -> None:
        """Journal the job's current lifecycle state (call after every
        transition — this line is what a restarted daemon replays)."""
        self._append(
            {
                "kind": "state",
                "job_id": job.job_id,
                "state": job.state,
                "rounds_done": job.rounds_done,
                "error": job.error,
            }
        )

    # -- per-job paths ---------------------------------------------------------

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.root, "jobs", job_id)

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "checkpoint.jsonl")

    def trace_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "trace.jsonl")

    def summary_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "summary.json")

    def packages_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "packages")

    def snapshots_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "snapshots")

    def snapshot_path(self, job_id: str, snapshot_id: str) -> str:
        return os.path.join(self.snapshots_dir(job_id), f"{snapshot_id}.jsonl")

    # -- snapshots + forks -----------------------------------------------------

    def snapshot(self, job_id: str) -> str:
        """Freeze the job's campaign journal under a new snapshot id.

        Safe at any moment: the journal is append-only and flushed line
        by line, so a copy taken mid-append is a valid prefix (a torn
        final line is discarded by the loader).  A job that has not run
        yet snapshots to an empty journal — forking it starts a sibling
        from round one.
        """
        job = self.job(job_id)
        job.snapshot_seq += 1
        snapshot_id = f"snap-{job.snapshot_seq:04d}"
        os.makedirs(self.snapshots_dir(job_id), exist_ok=True)
        target = self.snapshot_path(job_id, snapshot_id)
        source = self.checkpoint_path(job_id)
        if os.path.exists(source):
            shutil.copyfile(source, target)
        else:
            open(target, "w").close()
        self._append(
            {
                "kind": "snapshot",
                "job_id": job_id,
                "snapshot_id": snapshot_id,
                "snapshot_seq": job.snapshot_seq,
                "rounds_done": job.rounds_done,
            }
        )
        return snapshot_id

    def fork(
        self,
        job_id: str,
        snapshot_id: str,
        tenant: str,
        rounds: Optional[int] = None,
    ) -> CampaignJob:
        """A new job continuing bit-identically from a parent snapshot.

        The child inherits the parent's spec verbatim (the journal
        header guards it) except for an optionally *extended* round
        target, and starts with the snapshot as its campaign journal —
        so its first rounds replay the parent's completed work and its
        remaining rounds run live, exactly as if the parent had kept
        going.
        """
        parent = self.job(job_id)
        source = self.snapshot_path(job_id, snapshot_id)
        if not os.path.exists(source):
            raise RegistryError(
                f"job {job_id!r} has no snapshot {snapshot_id!r}"
            )
        spec = parent.spec
        if rounds is not None:
            spec = spec.extended(rounds)
        return self.submit(
            tenant,
            spec,
            forked_from=f"{job_id}/{snapshot_id}",
            checkpoint_source=source,
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
