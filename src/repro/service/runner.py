"""Executing one job's campaign, one round per scheduler turn.

The runner is a thin wrapper around the existing round engine: each
turn is exactly one ``run_rounds(1, ...)`` call against the job's
checkpoint journal.  That single decision buys every service guarantee
for free:

* **Preemption** — ``run_rounds`` closes the journal writer when it
  returns, so between turns the job is fully persisted and another
  tenant's job can own the Snowboard thread.
* **Resumption** — the next turn opens the same journal with
  ``resume=True``; round numbering, selection RNG streams and Stage-4
  task seeds are all derived from the journal + spec, so a preempted
  job continues bit-identically.
* **Restart** — after a daemon kill the runner starts from a fresh
  :class:`Snowboard`; its first turns *replay* the journalled rounds
  (Stage 1-3 recomputed deterministically, Stage-4 tasks skipped) until
  the live frontier is reached.  The final summary is bit-identical to
  the same spec run solo through ``run_rounds(spec.rounds)``, which the
  service tests pin.

Repeated ``run_rounds(1)`` calls journal a header with ``rounds=1`` —
consistent across every turn of every job, so the header guard holds.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.obs import JsonlSink, Observer, TeeSink, read_trace
from repro.orchestrate.pipeline import Snowboard
from repro.orchestrate.results import CampaignResult
from repro.service.jobs import CampaignJob
from repro.service.registry import JobRegistry


class JobRunner:
    """Owns one job's Snowboard instance and per-job observability."""

    def __init__(
        self, job: CampaignJob, registry: JobRegistry, mirror=None
    ):
        self.job = job
        self.registry = registry
        self._mirror = mirror  # shared daemon-wide sink (never closed here)
        self._snowboard: Optional[Snowboard] = None
        self._observer: Optional[Observer] = None
        self.last_result: Optional[CampaignResult] = None

    # -- lazy construction -----------------------------------------------------

    def _ensure(self) -> Snowboard:
        if self._snowboard is not None:
            return self._snowboard
        job = self.job
        trace_path = self.registry.trace_path(job.job_id)
        resumed = os.path.exists(trace_path) and os.path.getsize(trace_path) > 0
        sink = JsonlSink(
            trace_path,
            header={
                "job_id": job.job_id,
                "tenant": job.tenant,
                **job.spec.to_obj(),
            },
            append=True,
        )
        if self._mirror is not None:
            sink = TeeSink(sink, self._mirror)
        self._observer = Observer(sink)
        if resumed:
            self._restore_metrics(trace_path)
        self._snowboard = Snowboard(job.spec.config(), observer=self._observer)
        return self._snowboard

    def _restore_metrics(self, trace_path: str) -> None:
        """Continue funnel counters from the last pre-restart snapshot."""
        try:
            _, events = read_trace(trace_path)
        except ValueError:
            return  # unreadable trace: counters restart, campaign unaffected
        last = None
        for record in events:
            if record.get("kind") == "metrics":
                last = record
        if last is not None:
            self._observer.metrics.restore(last)

    # -- the turn --------------------------------------------------------------

    def step(self) -> bool:
        """Advance the job by one round; True when the campaign finished.

        A replayed round (post-restart catch-up) and a live round are
        the same call — ``run_rounds`` itself decides which Stage-4
        tasks the journal already holds.
        """
        snowboard = self._ensure()
        spec = self.job.spec
        checkpoint = self.registry.checkpoint_path(self.job.job_id)
        result = snowboard.run_rounds(
            1,
            round_budget=spec.round_budget,
            strategy=spec.strategy,
            scheduler_kind=spec.scheduler_kind,
            trials=spec.trials,
            workers=spec.workers,
            corpus_growth=spec.growth(),
            checkpoint_path=checkpoint,
            resume=os.path.exists(checkpoint),
            fleet=spec.fleet,
        )
        self.last_result = result
        self.job.rounds_done = max(
            self.job.rounds_done, snowboard.state.round
        )
        if snowboard.state.round >= spec.rounds:
            self._finalize(snowboard, result)
            return True
        return False

    def _finalize(self, snowboard: Snowboard, result: CampaignResult) -> None:
        """Persist the terminal artifacts a tenant fetches later."""
        summary_path = self.registry.summary_path(self.job.job_id)
        with open(summary_path, "w", encoding="utf-8") as handle:
            json.dump(result.summary(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        packages_dir = self.registry.packages_dir(self.job.job_id)
        os.makedirs(packages_dir, exist_ok=True)
        for bug_id, package in snowboard.repro_packages.items():
            package.save(os.path.join(packages_dir, f"{bug_id}.json"))

    # -- status ----------------------------------------------------------------

    def status(self) -> Dict:
        """Live counters for the status API (cheap, lock-holder calls it)."""
        out: Dict = {"rounds_done": self.job.rounds_done}
        if self.last_result is not None:
            out["counters"] = self.last_result.counters()
            out["distinct_bugs"] = self.last_result.distinct_bugs
        if self._observer is not None:
            snapshot = self._observer.metrics.snapshot()
            out["funnel"] = snapshot["counters"]
        return out

    def close(self) -> None:
        if self._observer is not None:
            self._observer.close()
            self._observer = None
        self._snowboard = None
