"""A thin stdlib client for the campaign service HTTP API.

The client needs only an *endpoint*: either an explicit ``host:port``
string, or a service data directory — the daemon writes its bound
address to ``<data>/endpoint`` at startup, so

::

    client = ServiceClient.connect("/var/lib/repro-service")
    job = client.submit("alice", {"rounds": 3, "seed": 11})
    client.wait(job["job_id"])
    print(client.summary(job["job_id"]))

works without any port bookkeeping.  One ``http.client`` connection per
request keeps the client state-free (safe across daemon restarts: a new
daemon on the same data dir republishes its endpoint file and every
later call picks it up).
"""

from __future__ import annotations

import http.client
import json
import os
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.service.jobs import TERMINAL_STATES


class ServiceClientError(Exception):
    """An API error response (carries the daemon's HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def resolve_endpoint(target: str) -> Tuple[str, int]:
    """``host:port`` from an address string or a service data dir."""
    if os.path.isdir(target):
        path = os.path.join(target, "endpoint")
        if not os.path.exists(path):
            raise ServiceClientError(
                0, f"no endpoint file in {target!r}; is the daemon running?"
            )
        with open(path, encoding="utf-8") as handle:
            target = handle.read().strip()
    host, _, port = target.rpartition(":")
    if not host or not port.isdigit():
        raise ServiceClientError(0, f"malformed endpoint {target!r}")
    return host, int(port)


class ServiceClient:
    """Verb-per-method wrapper over the daemon's JSON API."""

    #: Exponential-backoff schedule for refused connections: the daemon
    #: publishes its endpoint file just before ``serve_forever`` starts
    #: accepting, so ``repro submit``/``watch`` fired right after
    #: ``repro serve`` can hit a bound-but-not-listening window.
    CONNECT_RETRIES = 4
    CONNECT_BACKOFF = 0.05  # seconds; doubles per attempt

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def connect(cls, target: str, timeout: float = 30.0) -> "ServiceClient":
        host, port = resolve_endpoint(target)
        return cls(host, port, timeout=timeout)

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        # Every verb is idempotent-or-safe to retry *before* any bytes
        # reach the daemon, which is exactly what ConnectionRefusedError
        # guarantees — the TCP connect itself failed.
        for attempt in range(self.CONNECT_RETRIES + 1):
            try:
                return self._request_once(method, path, body)
            except ConnectionRefusedError:
                if attempt == self.CONNECT_RETRIES:
                    raise
                time.sleep(self.CONNECT_BACKOFF * (2**attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read().decode("utf-8")
            obj = json.loads(data) if data else {}
            if response.status >= 400:
                raise ServiceClientError(
                    response.status, obj.get("error", data or "request failed")
                )
            return obj
        finally:
            conn.close()

    # -- verbs -----------------------------------------------------------------

    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def submit(self, tenant: str, spec: Optional[Dict] = None) -> Dict:
        return self._request(
            "POST", "/jobs", {"tenant": tenant, "spec": spec or {}}
        )

    def jobs(self, tenant: Optional[str] = None) -> List[Dict]:
        path = "/jobs" if tenant is None else f"/jobs?tenant={tenant}"
        return self._request("GET", path)["jobs"]

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def pause(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/pause")

    def resume(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/resume")

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def snapshot(self, job_id: str) -> str:
        return self._request("POST", f"/jobs/{job_id}/snapshot")["snapshot"]

    def fork(
        self,
        job_id: str,
        snapshot_id: str,
        tenant: str,
        rounds: Optional[int] = None,
    ) -> Dict:
        body: Dict = {"snapshot": snapshot_id, "tenant": tenant}
        if rounds is not None:
            body["rounds"] = rounds
        return self._request("POST", f"/jobs/{job_id}/fork", body)

    def packages(self, job_id: str) -> Dict[str, Dict]:
        return self._request("GET", f"/jobs/{job_id}/packages")["packages"]

    def summary(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}/summary")

    def trace(
        self, job_id: str, offset: int = 0, limit: int = 1000
    ) -> Tuple[int, List[str]]:
        obj = self._request(
            "GET", f"/jobs/{job_id}/trace?offset={offset}&limit={limit}"
        )
        return obj["offset"], obj["lines"]

    # -- conveniences ----------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.2,
    ) -> Dict:
        """Block until the job reaches a terminal state; returns status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    0,
                    f"job {job_id!r} still {status['state']!r} after "
                    f"{timeout:.0f}s",
                )
            time.sleep(poll)

    def watch(
        self, job_id: str, poll: float = 0.2
    ) -> Iterator[str]:
        """Yield trace lines live until the job is terminal and drained."""
        offset = 0
        while True:
            offset, lines = self.trace(job_id, offset)
            yield from lines
            if lines:
                continue  # drain before re-checking state
            if self.status(job_id)["state"] in TERMINAL_STATES:
                offset, lines = self.trace(job_id, offset)
                yield from lines
                return
            time.sleep(poll)
