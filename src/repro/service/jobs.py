"""Typed campaign-job resources: what one tenant submits to the service.

A :class:`CampaignJob` is the unit of service traffic — one tenant's
round-based campaign, described by an immutable :class:`JobSpec` (the
knobs :meth:`~repro.orchestrate.pipeline.Snowboard.run_rounds` takes)
plus mutable lifecycle state.  The state machine is deliberately small::

    pending ──> running ──> done
       │    ▲      │  ▲       (terminal)
       │    │      ▼  │
       │    └── paused┘
       │           │
       └───────────┴──> cancelled / failed   (terminal)

``pending`` means "queued for its next scheduler turn"; ``running``
means "owns the current turn or is between turns"; pausing takes effect
at the next round boundary (round granularity is the service's
preemption unit).  Terminal states never transition again.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional

from repro.orchestrate.pipeline import SnowboardConfig

# -- lifecycle states --------------------------------------------------------------

PENDING = "pending"
RUNNING = "running"
PAUSED = "paused"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

ALL_STATES = (PENDING, RUNNING, PAUSED, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Legal state-machine edges; anything else is a caller bug (HTTP 409).
VALID_TRANSITIONS: Dict[str, frozenset] = {
    PENDING: frozenset({RUNNING, PAUSED, CANCELLED}),
    RUNNING: frozenset({PENDING, PAUSED, DONE, FAILED, CANCELLED}),
    PAUSED: frozenset({PENDING, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


class InvalidTransition(ValueError):
    """The requested lifecycle edge is not in :data:`VALID_TRANSITIONS`."""


@dataclass(frozen=True)
class JobSpec:
    """The immutable campaign definition of one job.

    Field for field the arguments of :meth:`Snowboard.run_rounds` plus
    the :class:`SnowboardConfig` knobs the service exposes.  The spec is
    frozen at submit time: the job's checkpoint journal header guards
    these values, so editing a spec mid-flight would make the journal
    unreadable — fork a new job instead.
    """

    rounds: int = 1
    round_budget: int = 50
    seed: int = 7
    corpus_budget: int = 260
    trials: int = 16
    corpus_growth: Optional[int] = None
    strategy: str = "S-INS-PAIR"
    scheduler_kind: str = "snowboard"
    workers: int = 1
    fleet: str = "threads"
    fixed_kernel: bool = False
    max_instructions: int = 60_000
    prefix_fork: bool = True
    prune_commuting: bool = False
    # Per-job fleet knobs (None = the pipeline's defaults).  A job with
    # these set runs each turn on its own transport-backed fleet; the
    # knobs are tuning only — summaries stay bit-identical to a solo
    # ``run_rounds`` with the same values, and to the defaults.
    lease_timeout: Optional[float] = None
    heartbeat_interval: Optional[float] = None
    heartbeat_timeout: Optional[float] = None

    def validate(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be at least 1, got {self.rounds}")
        if self.round_budget < 1:
            raise ValueError(
                f"round_budget must be at least 1, got {self.round_budget}"
            )
        if self.trials < 1:
            raise ValueError(f"trials must be at least 1, got {self.trials}")
        if self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.fleet not in ("threads", "processes", "sockets"):
            raise ValueError(f"unknown fleet kind {self.fleet!r}")
        if self.fleet in ("processes", "sockets") and self.workers <= 1:
            raise ValueError(f"fleet {self.fleet!r} requires workers > 1")
        for name in ("lease_timeout", "heartbeat_interval", "heartbeat_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    def config(self) -> SnowboardConfig:
        """The pipeline config this spec describes."""
        fleet_knobs = {}
        if self.lease_timeout is not None:
            fleet_knobs["fleet_lease_timeout"] = self.lease_timeout
        if self.heartbeat_interval is not None:
            fleet_knobs["fleet_heartbeat_interval"] = self.heartbeat_interval
        if self.heartbeat_timeout is not None:
            fleet_knobs["fleet_heartbeat_timeout"] = self.heartbeat_timeout
        return SnowboardConfig(
            seed=self.seed,
            corpus_budget=self.corpus_budget,
            trials_per_pmc=self.trials,
            max_instructions=self.max_instructions,
            fixed_kernel=self.fixed_kernel,
            prefix_fork=self.prefix_fork,
            prune_commuting=self.prune_commuting,
            **fleet_knobs,
        )

    def growth(self) -> int:
        """The resolved per-round corpus growth.

        Matches :meth:`run_rounds`' own default so a job stepped one
        round at a time and a solo ``run_rounds(spec.rounds)`` draw the
        same fuzzing streams.
        """
        if self.corpus_growth is not None:
            return self.corpus_growth
        return max(1, self.corpus_budget // 2)

    def to_obj(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_obj(cls, obj: Dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {sorted(unknown)}")
        spec = cls(**obj)
        spec.validate()
        return spec

    def extended(self, rounds: int) -> "JobSpec":
        """The same spec with a (possibly larger) round target — the
        fork-from-snapshot path, where a child may explore further."""
        if rounds < self.rounds:
            raise ValueError(
                f"forked rounds {rounds} below parent target {self.rounds}"
            )
        return replace(self, rounds=rounds)


@dataclass
class CampaignJob:
    """One tenant's campaign and its lifecycle state."""

    job_id: str
    tenant: str
    spec: JobSpec
    state: str = PENDING
    rounds_done: int = 0
    error: str = ""
    forked_from: str = ""  # "job-0001/snap-0001" provenance, "" for roots
    submit_seq: int = 0  # registry ordering (stable across restarts)
    snapshot_seq: int = field(default=0, repr=False)  # snapshots taken so far

    def transition(self, new_state: str) -> None:
        if new_state not in VALID_TRANSITIONS.get(self.state, frozenset()):
            raise InvalidTransition(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {new_state!r}"
            )
        self.state = new_state

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_obj(self) -> Dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": self.spec.to_obj(),
            "state": self.state,
            "rounds_done": self.rounds_done,
            "error": self.error,
            "forked_from": self.forked_from,
            "submit_seq": self.submit_seq,
        }

    @classmethod
    def from_obj(cls, obj: Dict) -> "CampaignJob":
        return cls(
            job_id=str(obj["job_id"]),
            tenant=str(obj["tenant"]),
            spec=JobSpec.from_obj(obj["spec"]),
            state=str(obj.get("state", PENDING)),
            rounds_done=int(obj.get("rounds_done", 0)),
            error=str(obj.get("error", "")),
            forked_from=str(obj.get("forked_from", "")),
            submit_seq=int(obj.get("submit_seq", 0)),
        )
