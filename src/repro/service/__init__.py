"""Campaign-as-a-service: a multi-tenant daemon over the round engine.

The service turns :meth:`Snowboard.run_rounds` into a long-running,
crash-safe facility: tenants submit :class:`CampaignJob` resources over
a localhost JSON API, a fair round-robin scheduler interleaves their
campaigns at round granularity, and every job rides the existing
checkpoint journal — kill the daemon at any moment, restart it on the
same data directory, and each tenant's campaign resumes bit-identically.

Modules:

* :mod:`repro.service.jobs`      — JobSpec / CampaignJob + state machine
* :mod:`repro.service.registry`  — durable job table (journal + dirs)
* :mod:`repro.service.scheduler` — fair round-robin turn queue
* :mod:`repro.service.runner`    — one ``run_rounds(1)`` call per turn
* :mod:`repro.service.daemon`    — CampaignService engine + HTTP API
* :mod:`repro.service.client`    — stdlib client (and ``repro`` verbs)
"""

from __future__ import annotations

from repro.service.jobs import (
    ALL_STATES,
    CANCELLED,
    DONE,
    FAILED,
    PAUSED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    CampaignJob,
    InvalidTransition,
    JobSpec,
)
from repro.service.registry import JobRegistry, RegistryError
from repro.service.runner import JobRunner
from repro.service.scheduler import FairScheduler

__all__ = [
    "ALL_STATES",
    "CANCELLED",
    "CampaignJob",
    "CampaignService",
    "DONE",
    "FAILED",
    "FairScheduler",
    "InvalidTransition",
    "JobRegistry",
    "JobRunner",
    "JobSpec",
    "PAUSED",
    "PENDING",
    "RegistryError",
    "RUNNING",
    "ServiceClient",
    "ServiceClientError",
    "ServiceDaemon",
    "ServiceError",
    "TERMINAL_STATES",
]


def __getattr__(name):
    # The daemon (http.server) and client are imported lazily so that
    # `import repro.service` stays cheap for library users of jobs/registry.
    if name in ("CampaignService", "ServiceDaemon", "ServiceError"):
        from repro.service import daemon

        return getattr(daemon, name)
    if name in ("ServiceClient", "ServiceClientError"):
        from repro.service import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
