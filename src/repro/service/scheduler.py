"""Fair scheduling: round-robin over runnable jobs at round granularity.

Fairness policy: a FIFO turn queue.  Every runnable job appears at most
once; a turn pops the head, runs exactly one campaign round, and (if
the job is still runnable) re-appends it at the tail.  With N active
jobs each therefore gets every Nth round of engine time regardless of
submit order or campaign size — a tenant's 100-round campaign cannot
starve a 2-round one, and a newly submitted job waits at most one full
rotation for its first round.

The queue itself is bookkeeping, not truth: lifecycle state lives on
the :class:`~repro.service.jobs.CampaignJob`, and the daemon re-checks
it under the service lock when the turn starts (a job cancelled while
queued simply gets dropped when its turn comes).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional


class FairScheduler:
    """Thread-safe FIFO of job ids awaiting their next round."""

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._queued: set = set()
        self._cv = threading.Condition()

    def enqueue(self, job_id: str) -> None:
        """Add a job to the tail (idempotent while already queued)."""
        with self._cv:
            if job_id in self._queued:
                return
            self._queued.add(job_id)
            self._queue.append(job_id)
            self._cv.notify()

    def dequeue(self, job_id: str) -> None:
        """Drop a queued job (pause/cancel); no-op when absent."""
        with self._cv:
            if job_id not in self._queued:
                return
            self._queued.discard(job_id)
            self._queue.remove(job_id)

    def next_turn(self, timeout: Optional[float] = None) -> Optional[str]:
        """Pop the next job id, waiting up to ``timeout`` for one."""
        with self._cv:
            if not self._queue:
                self._cv.wait(timeout)
            if not self._queue:
                return None
            job_id = self._queue.popleft()
            self._queued.discard(job_id)
            return job_id

    def __len__(self) -> int:
        with self._cv:
            return len(self._queue)

    def __contains__(self, job_id: str) -> bool:
        with self._cv:
            return job_id in self._queued
