"""Service verbs for the ``repro`` CLI: serve, submit, jobs, job, watch.

Registered into the main parser by :func:`register` and dispatched by
:func:`dispatch` — ``repro.cli`` stays the single entry point while the
service wiring lives next to the service code.

Every client-side verb takes ``--service TARGET`` where TARGET is the
daemon's data directory (the endpoint file inside it is resolved
automatically) or an explicit ``host:port``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.client import ServiceClient, ServiceClientError

_SPEC_FLAGS = (
    # (flag, JobSpec field, type, help)
    ("--rounds", "rounds", int, "campaign rounds (default 1)"),
    ("--round-budget", "round_budget", int, "concurrent tests per round"),
    ("--seed", "seed", int, "campaign seed"),
    ("--corpus", "corpus_budget", int, "initial fuzzer budget"),
    ("--trials", "trials", int, "trials per PMC"),
    ("--corpus-growth", "corpus_growth", int, "fuzz executions per round"),
    ("--strategy", "strategy", str, "clustering strategy"),
    ("--workers", "workers", int, "Stage-4 worker count"),
    ("--fleet", "fleet", str, "worker substrate: threads, processes or sockets"),
    ("--lease-timeout", "lease_timeout", float, "fleet task lease in seconds"),
    (
        "--heartbeat-interval",
        "heartbeat_interval",
        float,
        "fleet worker heartbeat period in seconds",
    ),
    (
        "--heartbeat-timeout",
        "heartbeat_timeout",
        float,
        "seconds without a heartbeat before a fleet worker is declared dead",
    ),
)


def register(sub: argparse._SubParsersAction) -> None:
    """Add the service subcommands to the main ``repro`` parser."""
    serve = sub.add_parser(
        "serve", help="run the multi-tenant campaign service daemon"
    )
    serve.add_argument(
        "--data",
        required=True,
        metavar="DIR",
        help="service data directory (registry journal, per-job state; "
        "created if missing — restarting on the same DIR resumes every "
        "job bit-identically)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (0 picks a free one; the bound address is "
        "written to DIR/endpoint for clients)",
    )

    submit = sub.add_parser("submit", help="submit a campaign job")
    submit.add_argument(
        "--service",
        required=True,
        metavar="TARGET",
        help="daemon data directory or host:port",
    )
    submit.add_argument("--tenant", required=True, help="tenant identifier")
    submit.add_argument(
        "--spec",
        metavar="JSON",
        default=None,
        help="full JobSpec as a JSON object (flags below override it)",
    )
    for flag, _field, kind, help_text in _SPEC_FLAGS:
        submit.add_argument(flag, type=kind, default=None, help=help_text)
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print its summary",
    )

    jobs = sub.add_parser("jobs", help="list the service's jobs")
    jobs.add_argument("--service", required=True, metavar="TARGET")
    jobs.add_argument("--tenant", default=None, help="filter by tenant")

    job = sub.add_parser("job", help="inspect or steer one job")
    job.add_argument("--service", required=True, metavar="TARGET")
    job.add_argument("job_id")
    action = job.add_mutually_exclusive_group()
    action.add_argument(
        "--pause", action="store_true", help="pause at the round boundary"
    )
    action.add_argument("--resume", action="store_true")
    action.add_argument("--cancel", action="store_true")
    action.add_argument(
        "--snapshot", action="store_true", help="freeze the campaign journal"
    )
    action.add_argument(
        "--fork",
        metavar="SNAPSHOT",
        default=None,
        help="fork a new job from SNAPSHOT (use with --tenant, --rounds)",
    )
    action.add_argument(
        "--summary", action="store_true", help="print the final summary"
    )
    action.add_argument(
        "--packages", action="store_true", help="print repro packages so far"
    )
    job.add_argument("--tenant", default=None, help="tenant for --fork")
    job.add_argument(
        "--rounds", type=int, default=None, help="extended target for --fork"
    )

    watch = sub.add_parser("watch", help="stream a job's live obs trace")
    watch.add_argument("--service", required=True, metavar="TARGET")
    watch.add_argument("job_id")
    watch.add_argument(
        "--follow",
        action="store_true",
        help="keep streaming until the job is terminal (default prints "
        "what exists and exits)",
    )


def handles(command: str) -> bool:
    return command in ("serve", "submit", "jobs", "job", "watch")


def dispatch(args) -> int:
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        client = ServiceClient.connect(args.service)
        if args.command == "submit":
            return _cmd_submit(client, args)
        if args.command == "jobs":
            return _cmd_jobs(client, args)
        if args.command == "job":
            return _cmd_job(client, args)
        if args.command == "watch":
            return _cmd_watch(client, args)
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        raise  # a closed stdout pipe, not a daemon failure: main() handles it
    except ConnectionError as error:
        print(f"error: cannot reach the daemon: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled service command {args.command}")


def _cmd_serve(args) -> int:
    from repro.service.daemon import ServiceDaemon

    daemon = ServiceDaemon(args.data, host=args.host, port=args.port)
    print(f"campaign service on {daemon.endpoint} (data: {args.data})")
    daemon.run()
    return 0


def _cmd_submit(client: ServiceClient, args) -> int:
    if args.spec is not None:
        spec = json.loads(args.spec)
        if not isinstance(spec, dict):
            print("error: --spec must be a JSON object", file=sys.stderr)
            return 2
    else:
        spec = {}
    for flag, field, _kind, _help in _SPEC_FLAGS:
        value = getattr(args, flag.lstrip("-").replace("-", "_"))
        if value is not None:
            spec[field] = value
    job = client.submit(args.tenant, spec)
    print(f"submitted {job['job_id']} (tenant {job['tenant']})")
    if not args.wait:
        return 0
    status = client.wait(job["job_id"])
    if status["state"] != "done":
        print(
            f"{job['job_id']} ended {status['state']}: "
            f"{status.get('error', '')}",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(client.summary(job["job_id"]), indent=2, sort_keys=True))
    return 0


def _cmd_jobs(client: ServiceClient, args) -> int:
    jobs = client.jobs(args.tenant)
    print(f"{'JOB':<10} {'TENANT':<12} {'STATE':<10} {'ROUNDS':<12} FORKED-FROM")
    for job in jobs:
        rounds = f"{job['rounds_done']}/{job['spec']['rounds']}"
        print(
            f"{job['job_id']:<10} {job['tenant']:<12} {job['state']:<10} "
            f"{rounds:<12} {job['forked_from'] or '-'}"
        )
    return 0


def _cmd_job(client: ServiceClient, args) -> int:
    job_id = args.job_id
    if args.pause:
        out = client.pause(job_id)
    elif args.resume:
        out = client.resume(job_id)
    elif args.cancel:
        out = client.cancel(job_id)
    elif args.snapshot:
        print(client.snapshot(job_id))
        return 0
    elif args.fork is not None:
        if not args.tenant:
            print("error: --fork requires --tenant", file=sys.stderr)
            return 2
        out = client.fork(job_id, args.fork, args.tenant, rounds=args.rounds)
    elif args.summary:
        out = client.summary(job_id)
    elif args.packages:
        out = client.packages(job_id)
    else:
        out = client.status(job_id)
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def _cmd_watch(client: ServiceClient, args) -> int:
    if args.follow:
        for line in client.watch(args.job_id):
            print(line)
        return 0
    offset, lines = client.trace(args.job_id, 0)
    while lines:
        for line in lines:
            print(line)
        offset, lines = client.trace(args.job_id, offset)
    return 0
