"""The campaign service: many tenants' campaigns behind one daemon.

:class:`CampaignService` is the engine — registry + fair scheduler +
one :class:`~repro.service.runner.JobRunner` per active job, guarded by
a single service lock.  Campaign rounds execute on the caller of
:meth:`run_turn` (the daemon's scheduler loop) *outside* the lock, so
the API stays responsive while a round runs; every lifecycle mutation
happens under the lock and is journalled to the registry before the
call returns.

:class:`ServiceDaemon` wraps the engine in a localhost HTTP JSON API
(stdlib ``ThreadingHTTPServer``; the bound ``host:port`` is written to
``<data>/endpoint`` so clients need only the data directory):

    ==========  =================================  =======================
    method      path                               action
    ==========  =================================  =======================
    GET         /healthz                           liveness + job counts
    POST        /jobs                              submit {tenant, spec}
    GET         /jobs[?tenant=]                    list jobs
    GET         /jobs/<id>                         status + funnel counters
    POST        /jobs/<id>/pause                   pause at round boundary
    POST        /jobs/<id>/resume                  re-enter the rotation
    POST        /jobs/<id>/cancel                  terminal cancel
    POST        /jobs/<id>/snapshot                freeze campaign journal
    POST        /jobs/<id>/fork                    {snapshot, tenant, rounds?}
    GET         /jobs/<id>/packages                repro packages so far
    GET         /jobs/<id>/summary                 final summary (done jobs)
    GET         /jobs/<id>/trace?offset=N          stream obs JSONL lines
    ==========  =================================  =======================

Crash contract: kill the daemon (SIGKILL included) at any point and
restart it on the same data directory — every job is recovered from the
registry journal, interrupted campaigns resume from their checkpoint
journals bit-identically, and finished jobs keep serving their
persisted summaries and packages.
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs import JsonlSink
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PAUSED,
    PENDING,
    RUNNING,
    CampaignJob,
    InvalidTransition,
    JobSpec,
)
from repro.service.registry import JobRegistry, RegistryError
from repro.service.runner import JobRunner
from repro.service.scheduler import FairScheduler


class ServiceError(Exception):
    """An API-level failure carrying its HTTP status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class CampaignService:
    """Registry + scheduler + runners: the engine behind the API."""

    def __init__(self, root: str, mirror_trace: bool = True):
        self.registry = JobRegistry(root)
        self.scheduler = FairScheduler()
        self._runners: Dict[str, JobRunner] = {}
        self._lock = threading.RLock()
        self._active: Optional[str] = None  # job id currently mid-round
        self._mirror = None
        if mirror_trace:
            self._mirror = JsonlSink(
                os.path.join(self.registry.root, "service.jsonl"),
                header={"service": "repro-campaign-service"},
                append=True,
            )
        # Recovered non-terminal jobs re-enter the rotation in submit
        # order (paused jobs stay parked until their tenant resumes).
        for job in self.registry.list():
            if job.state == PENDING:
                self.scheduler.enqueue(job.job_id)

    # -- lifecycle API ---------------------------------------------------------

    def submit(self, tenant: str, spec_obj: Optional[Dict] = None) -> Dict:
        try:
            spec = JobSpec.from_obj(spec_obj or {})
        except (TypeError, ValueError) as error:
            raise ServiceError(400, f"bad spec: {error}")
        with self._lock:
            try:
                job = self.registry.submit(tenant, spec)
            except ValueError as error:
                raise ServiceError(400, str(error))
            self.scheduler.enqueue(job.job_id)
            return job.to_obj()

    def jobs(self, tenant: Optional[str] = None) -> List[Dict]:
        with self._lock:
            return [job.to_obj() for job in self.registry.list(tenant)]

    def _job(self, job_id: str) -> CampaignJob:
        try:
            return self.registry.job(job_id)
        except RegistryError as error:
            raise ServiceError(404, str(error))

    def status(self, job_id: str) -> Dict:
        with self._lock:
            job = self._job(job_id)
            out = job.to_obj()
            runner = self._runners.get(job_id)
            if runner is not None:
                out.update(runner.status())
            if job.state == DONE:
                summary = self._read_summary(job_id)
                if summary is not None:
                    out["summary"] = summary
            return out

    def pause(self, job_id: str) -> Dict:
        with self._lock:
            job = self._job(job_id)
            self._transition(job, PAUSED)
            self.scheduler.dequeue(job_id)
            self.registry.record_state(job)
            return job.to_obj()

    def resume(self, job_id: str) -> Dict:
        with self._lock:
            job = self._job(job_id)
            self._transition(job, PENDING)
            self.registry.record_state(job)
            self.scheduler.enqueue(job_id)
            return job.to_obj()

    def cancel(self, job_id: str) -> Dict:
        with self._lock:
            job = self._job(job_id)
            self._transition(job, CANCELLED)
            self.scheduler.dequeue(job_id)
            self.registry.record_state(job)
            # Mid-round cancels leave the runner to the turn's epilogue;
            # the round finishes (journalled as always) and is discarded.
            if self._active != job_id:
                self._close_runner(job_id)
            return job.to_obj()

    def snapshot(self, job_id: str) -> Dict:
        with self._lock:
            job = self._job(job_id)
            snapshot_id = self.registry.snapshot(job.job_id)
            return {"job_id": job_id, "snapshot": snapshot_id}

    def fork(
        self,
        job_id: str,
        snapshot_id: str,
        tenant: str,
        rounds: Optional[int] = None,
    ) -> Dict:
        with self._lock:
            self._job(job_id)
            try:
                child = self.registry.fork(job_id, snapshot_id, tenant, rounds)
            except (RegistryError, ValueError) as error:
                raise ServiceError(400, str(error))
            self.scheduler.enqueue(child.job_id)
            return child.to_obj()

    def _transition(self, job: CampaignJob, state: str) -> None:
        try:
            job.transition(state)
        except InvalidTransition as error:
            raise ServiceError(409, str(error))

    def _settle(self, job: CampaignJob, state: str) -> None:
        """Drive a job whose round just finished (or raised) terminal.

        A pause or pause+resume landing while the round executed leaves
        the job PAUSED or PENDING; the round outcome wins that race, so
        route back through the legal edges before the terminal hop, and
        drop any queue entry a concurrent resume may have added.
        """
        if job.state == PAUSED:
            job.transition(PENDING)
        if job.state == PENDING:
            job.transition(RUNNING)
        job.transition(state)
        self.scheduler.dequeue(job.job_id)

    # -- artifacts -------------------------------------------------------------

    def _read_summary(self, job_id: str) -> Optional[Dict]:
        path = self.registry.summary_path(job_id)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def summary(self, job_id: str) -> Dict:
        with self._lock:
            job = self._job(job_id)
            summary = self._read_summary(job_id)
        if summary is None:
            raise ServiceError(
                409, f"job {job_id!r} is {job.state!r}; summary exists "
                f"only for done jobs"
            )
        return summary

    def packages(self, job_id: str) -> Dict[str, Dict]:
        """Reproduction packages captured so far, straight from the
        job's campaign journal (works mid-flight and after restarts)."""
        from repro.orchestrate.persistence import load_checkpoint

        with self._lock:
            self._job(job_id)
            path = self.registry.checkpoint_path(job_id)
        if not os.path.exists(path):
            return {}
        _, task_records = load_checkpoint(path)
        packages: Dict[str, Dict] = {}
        for record in task_records:
            for bug_id, obj in record.get("packages", {}).items():
                packages.setdefault(bug_id, obj)
        return packages

    def trace(
        self, job_id: str, offset: int = 0, limit: int = 1000
    ) -> Tuple[int, List[str]]:
        """Complete trace lines from byte ``offset`` (live streaming).

        Returns ``(new_offset, lines)``; a partially written final line
        is left for the next poll, so every returned line is valid JSON.
        """
        with self._lock:
            self._job(job_id)
            path = self.registry.trace_path(job_id)
        if not os.path.exists(path):
            return offset, []
        lines: List[str] = []
        with open(path, "rb") as handle:
            handle.seek(offset)
            while len(lines) < limit:
                line = handle.readline()
                if not line or not line.endswith(b"\n"):
                    break
                offset += len(line)
                lines.append(line.decode("utf-8").rstrip("\n"))
        return offset, lines

    # -- the scheduler turn ----------------------------------------------------

    def _runner(self, job: CampaignJob) -> JobRunner:
        runner = self._runners.get(job.job_id)
        if runner is None:
            runner = self._runners[job.job_id] = JobRunner(
                job, self.registry, mirror=self._mirror
            )
        return runner

    def _close_runner(self, job_id: str) -> None:
        runner = self._runners.pop(job_id, None)
        if runner is not None:
            runner.close()

    def run_turn(self, timeout: Optional[float] = 0.2) -> bool:
        """Give the next queued job one campaign round.

        Returns True when a turn ran (even if it failed), False when the
        queue stayed empty for ``timeout``.  The round itself executes
        outside the service lock; lifecycle changes requested mid-round
        (pause/cancel) are honoured in the epilogue, at the round
        boundary — the service's preemption granularity.
        """
        job_id = self.scheduler.next_turn(timeout)
        if job_id is None:
            return False
        with self._lock:
            job = self.registry.jobs.get(job_id)
            if job is None or job.state not in (PENDING, RUNNING):
                return True  # cancelled/paused while queued: drop the turn
            if job.state == PENDING:
                self._transition(job, RUNNING)
                self.registry.record_state(job)
            runner = self._runner(job)
            self._active = job_id
        done = False
        error: Optional[str] = None
        try:
            done = runner.step()
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        with self._lock:
            self._active = None
            try:
                if job.state == CANCELLED:
                    self._close_runner(job_id)
                elif error is not None:
                    job.error = error
                    self._settle(job, FAILED)
                    self.registry.record_state(job)
                    self._close_runner(job_id)
                elif done:
                    self._settle(job, DONE)
                    self.registry.record_state(job)
                    self._close_runner(job_id)
                elif job.state == PAUSED:
                    self.registry.record_state(job)  # parked, progress recorded
                else:
                    self.registry.record_state(job)
                    self.scheduler.enqueue(job_id)
            except Exception as exc:  # pragma: no cover - defensive backstop
                # One job's epilogue must never take the scheduler loop
                # (and every other tenant) down: force the job terminal
                # and keep serving.
                job.error = job.error or f"{type(exc).__name__}: {exc}"
                job.state = FAILED
                self.scheduler.dequeue(job_id)
                self._close_runner(job_id)
                try:
                    self.registry.record_state(job)
                except Exception:
                    pass
        return True

    def stop(self) -> None:
        """Graceful shutdown: close runners, journals and the mirror."""
        with self._lock:
            for job_id in list(self._runners):
                self._close_runner(job_id)
            if self._mirror is not None:
                self._mirror.close()
            self.registry.close()


# -- HTTP layer --------------------------------------------------------------------

_ROUTES: List[Tuple[str, "re.Pattern", str]] = [
    ("GET", re.compile(r"^/healthz$"), "health"),
    ("POST", re.compile(r"^/jobs$"), "submit"),
    ("GET", re.compile(r"^/jobs$"), "jobs"),
    ("GET", re.compile(r"^/jobs/([\w.-]+)$"), "status"),
    ("POST", re.compile(r"^/jobs/([\w.-]+)/pause$"), "pause"),
    ("POST", re.compile(r"^/jobs/([\w.-]+)/resume$"), "resume"),
    ("POST", re.compile(r"^/jobs/([\w.-]+)/cancel$"), "cancel"),
    ("POST", re.compile(r"^/jobs/([\w.-]+)/snapshot$"), "snapshot"),
    ("POST", re.compile(r"^/jobs/([\w.-]+)/fork$"), "fork"),
    ("GET", re.compile(r"^/jobs/([\w.-]+)/packages$"), "packages"),
    ("GET", re.compile(r"^/jobs/([\w.-]+)/summary$"), "summary"),
    ("GET", re.compile(r"^/jobs/([\w.-]+)/trace$"), "trace"),
]


def _make_handler(service: CampaignService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # quiet by default
            pass

        def _reply(self, status: int, obj) -> None:
            body = json.dumps(obj).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _int_param(self, value, name: str, minimum: int = 0) -> int:
            """Parse a client-supplied integer; out-of-range or
            non-numeric values are the client's fault (400, not 500)."""
            try:
                number = int(value)
            except (TypeError, ValueError):
                raise ServiceError(
                    400, f"{name} must be an integer, got {value!r}"
                )
            if number < minimum:
                raise ServiceError(
                    400, f"{name} must be >= {minimum}, got {number}"
                )
            return number

        def _body(self) -> Dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length == 0:
                return {}
            try:
                obj = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServiceError(400, "request body is not valid JSON")
            if not isinstance(obj, dict):
                raise ServiceError(400, "request body must be a JSON object")
            return obj

        def _dispatch(self, method: str) -> None:
            parsed = urlparse(self.path)
            query = parse_qs(parsed.query)
            try:
                for verb, pattern, name in _ROUTES:
                    if verb != method:
                        continue
                    match = pattern.match(parsed.path)
                    if match is None:
                        continue
                    self._route(name, match.groups(), query)
                    return
                raise ServiceError(404, f"no route for {method} {parsed.path}")
            except ServiceError as error:
                self._reply(error.status, {"error": str(error)})
            except Exception as error:  # never take the daemon down
                self._reply(500, {"error": f"{type(error).__name__}: {error}"})

        def _route(self, name: str, groups, query) -> None:
            if name == "health":
                jobs = service.jobs()
                states: Dict[str, int] = {}
                for job in jobs:
                    states[job["state"]] = states.get(job["state"], 0) + 1
                self._reply(200, {"ok": True, "jobs": len(jobs), "states": states})
            elif name == "submit":
                body = self._body()
                tenant = str(body.get("tenant") or "")
                self._reply(201, service.submit(tenant, body.get("spec")))
            elif name == "jobs":
                tenant = query.get("tenant", [None])[0]
                self._reply(200, {"jobs": service.jobs(tenant)})
            elif name == "status":
                self._reply(200, service.status(groups[0]))
            elif name == "pause":
                self._reply(200, service.pause(groups[0]))
            elif name == "resume":
                self._reply(200, service.resume(groups[0]))
            elif name == "cancel":
                self._reply(200, service.cancel(groups[0]))
            elif name == "snapshot":
                self._reply(201, service.snapshot(groups[0]))
            elif name == "fork":
                body = self._body()
                snapshot = str(body.get("snapshot") or "")
                tenant = str(body.get("tenant") or "")
                rounds = body.get("rounds")
                if rounds is not None:
                    rounds = self._int_param(rounds, "rounds", minimum=1)
                self._reply(
                    201,
                    service.fork(groups[0], snapshot, tenant, rounds=rounds),
                )
            elif name == "packages":
                self._reply(200, {"packages": service.packages(groups[0])})
            elif name == "summary":
                self._reply(200, service.summary(groups[0]))
            elif name == "trace":
                offset = self._int_param(query.get("offset", ["0"])[0], "offset")
                limit = self._int_param(
                    query.get("limit", ["1000"])[0], "limit", minimum=1
                )
                new_offset, lines = service.trace(groups[0], offset, limit)
                self._reply(200, {"offset": new_offset, "lines": lines})
            else:  # pragma: no cover - route table and names stay in sync
                raise ServiceError(500, f"unwired route {name!r}")

        def do_GET(self):
            self._dispatch("GET")

        def do_POST(self):
            self._dispatch("POST")

    return Handler


class ServiceDaemon:
    """The long-running process: HTTP front end + scheduler loop."""

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0):
        self.service = CampaignService(root)
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(self.service)
        )
        self.host, self.port = self._httpd.server_address[:2]
        self.endpoint_path = os.path.join(self.service.registry.root, "endpoint")
        with open(self.endpoint_path, "w", encoding="utf-8") as handle:
            handle.write(f"{self.host}:{self.port}\n")
        self._stop = threading.Event()

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def request_stop(self, *_args) -> None:
        self._stop.set()

    def run(self, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_stop`)."""
        if install_signals:
            signal.signal(signal.SIGTERM, self.request_stop)
            signal.signal(signal.SIGINT, self.request_stop)
        http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True,
        )
        http_thread.start()
        try:
            while not self._stop.is_set():
                self.service.run_turn(timeout=0.2)
        finally:
            self._httpd.shutdown()
            http_thread.join(timeout=5)
            self.service.stop()
            if os.path.exists(self.endpoint_path):
                os.remove(self.endpoint_path)
