"""Campaign observability: spans, metrics and the JSONL event stream.

The pipeline is instrumented against the :class:`Observer` facade — one
object bundling a :class:`~repro.obs.tracer.Tracer`, a
:class:`~repro.obs.metrics.Metrics` registry and an event sink.  The
module-level :data:`NULL_OBSERVER` is the disabled path: every call is a
no-op against shared singletons, so instrumented code costs nothing when
observability is off (the golden-equivalence tests additionally pin that
enabling it changes no campaign result).

Typical use::

    from repro.obs import Observer, JsonlSink

    obs = Observer(JsonlSink("trace.jsonl", header={"seed": 7}))
    snowboard = Snowboard(config, observer=obs)
    snowboard.run_campaign(...)
    obs.close()

and ``python -m repro stats trace.jsonl`` renders the funnel afterwards.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NullMetrics,
)
from repro.obs.sink import (
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
    TraceError,
    read_trace,
)
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "buffering_observer",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "Metrics",
    "NULL_METRICS",
    "NULL_OBSERVER",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullMetrics",
    "NullObserver",
    "NullSink",
    "NullTracer",
    "Observer",
    "Span",
    "TeeSink",
    "TraceError",
    "Tracer",
    "read_trace",
]


class Observer:
    """Tracer + metrics + sink, threaded through the pipeline as one."""

    enabled = True

    def __init__(self, sink=None, epoch: Optional[float] = None):
        self.sink = sink if sink is not None else NullSink()
        self.tracer = Tracer(self.sink, epoch=epoch)
        self.metrics = Metrics()

    # -- tracing --------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return self.tracer.span(name, **attrs)

    def record_span(self, name: str, duration: float, **attrs) -> None:
        self.tracer.record(name, duration, **attrs)

    def event(self, name: str, **attrs) -> None:
        """Emit a point event (no duration) to the sink."""
        self.sink.emit({"kind": "event", "name": name, "attrs": attrs})

    # -- metrics --------------------------------------------------------------

    def count(self, name: str, n=1) -> None:
        self.metrics.count(name, n)

    def gauge(self, name: str, value) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value) -> None:
        self.metrics.observe(name, value)

    def flush_metrics(self) -> None:
        """Emit a cumulative ``metrics`` snapshot record to the sink.

        Called after every merged Stage-4 task (and at campaign end), so
        a killed campaign's trace still carries near-current funnel
        totals — readers keep the last snapshot.
        """
        record: Dict = {"kind": "metrics"}
        record.update(self.metrics.snapshot())
        self.sink.emit(record)

    def replay(self, events) -> None:
        """Re-emit buffered records (worker buffers, merged in task order)."""
        emit = self.sink.emit
        for record in events:
            emit(record)

    def close(self) -> None:
        self.flush_metrics()
        self.sink.close()


class NullObserver:
    """Disabled observability: every operation is a shared no-op."""

    enabled = False

    __slots__ = ()

    sink = NullSink()
    tracer = NULL_TRACER
    metrics = NULL_METRICS

    def span(self, name: str, **attrs):
        return NULL_SPAN

    def record_span(self, name: str, duration: float, **attrs) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def count(self, name: str, n=1) -> None:
        pass

    def gauge(self, name: str, value) -> None:
        pass

    def observe(self, name: str, value) -> None:
        pass

    def flush_metrics(self) -> None:
        pass

    def replay(self, events) -> None:
        pass

    def close(self) -> None:
        pass


NULL_OBSERVER = NullObserver()


def buffering_observer(epoch: float):
    """A worker-side ``(Observer, MemorySink)`` pair for deferred replay.

    Fleet workers (threads or processes) must not write to the campaign
    sink directly — their events are buffered in a private
    :class:`MemorySink` and replayed by the merger in task order.  The
    observer shares the campaign tracer's ``epoch`` so replayed
    timestamps are comparable with coordinator-side spans
    (``time.perf_counter`` is machine-global on Linux, so the epoch is
    meaningful across process boundaries too).
    """
    sink = MemorySink()
    return Observer(sink, epoch=epoch), sink
