"""Typed metrics: counters, gauges and histograms for funnel quantities.

The funnel quantities of the paper's evaluation (PMCs identified,
clusters kept, tests deduplicated, trials executed, races flagged, …)
are monotone counts; wall-clock style quantities (campaign wall time,
distinct bugs so far) are gauges; per-trial distributions (instructions,
latency) are histograms.

A :class:`Metrics` registry snapshots to one JSON-ready dict (the
``metrics`` trace record) and merges with another registry — the
operation parallel Stage 4 uses to fold per-worker registries into the
campaign one in task order.  Counter merge is addition, gauge merge is
last-writer-wins, histogram merge is concatenation, so the merged totals
are independent of worker scheduling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotone additive count."""

    __slots__ = ("value",)

    def __init__(self, value: Number = 0):
        self.value = value

    def add(self, n: Number = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self, value: Number = 0):
        self.value = value

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A value distribution with nearest-rank percentiles.

    Raw observations are kept (campaign-scale cardinality is small); the
    snapshot emits summary statistics only, so trace files stay compact.
    """

    __slots__ = ("values",)

    def __init__(self, values: Optional[List[Number]] = None):
        self.values: List[Number] = list(values) if values else []

    def observe(self, value: Number) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> Number:
        return sum(self.values)

    def percentile(self, p: float) -> Number:
        """Nearest-rank percentile, ``0 <= p <= 100``; 0 when empty."""
        if not self.values:
            return 0
        ordered = sorted(self.values)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without math
        return ordered[int(rank) - 1]

    def summary(self) -> Dict[str, Number]:
        if not self.values:
            return {"count": 0, "sum": 0, "min": 0, "max": 0, "p50": 0, "p95": 0}
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class Metrics:
    """A registry of named counters, gauges and histograms."""

    enabled = True

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- write side -----------------------------------------------------------

    def count(self, name: str, n: Number = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.add(n)

    def gauge(self, name: str, value: Number) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)

    def observe(self, name: str, value: Number) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- read side ------------------------------------------------------------

    def counter_value(self, name: str, default: Number = 0) -> Number:
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-ready cumulative snapshot (the ``metrics`` record body).

        Iterates over point-in-time copies of the registries (``list``
        on a dict is atomic under the GIL), so a concurrent reader —
        the campaign service's status API polling mid-round — never
        trips "dictionary changed size during iteration".
        """
        return {
            "counters": {
                k: c.value for k, c in sorted(list(self.counters.items()))
            },
            "gauges": {
                k: g.value for k, g in sorted(list(self.gauges.items()))
            },
            "histograms": {
                k: Histogram(list(h.values)).summary()
                for k, h in sorted(list(self.histograms.items()))
            },
        }

    def restore(self, snapshot: Dict[str, Dict]) -> None:
        """Prime counters and gauges from a :meth:`snapshot` dict.

        The campaign-service restart path: a restarted job's registry
        reads the last ``metrics`` record out of the job trace and
        restores it here, so cumulative funnel counters continue across
        daemon lifetimes instead of resetting to zero.  Histograms are
        *not* restorable — snapshots keep only their summaries — so
        post-restart distributions cover the new session only.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = Counter(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = Gauge(value)

    def merge(self, other: "Metrics") -> None:
        """Fold another registry into this one (worker -> campaign).

        Counters add, gauges take the other's value, histograms
        concatenate — all order-independent except gauges, which parallel
        Stage 4 merges in task order to stay deterministic.
        """
        for name, counter in other.counters.items():
            self.count(name, counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name, gauge.value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.values.extend(histogram.values)


class NullMetrics:
    """Disabled registry: every write is a no-op."""

    enabled = False

    __slots__ = ()

    counters: Dict[str, Counter] = {}
    gauges: Dict[str, Gauge] = {}
    histograms: Dict[str, Histogram] = {}

    def count(self, name: str, n: Number = 1) -> None:
        pass

    def gauge(self, name: str, value: Number) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def counter_value(self, name: str, default: Number = 0) -> Number:
        return default

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
