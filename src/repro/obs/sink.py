"""Event sinks: where observability records go.

One record is one JSON-ready dict with a ``kind`` discriminator:

* ``header``  — first line of a trace file; carries ``schema`` (the
  event-schema version) plus free-form campaign parameters.
* ``span``    — one closed tracer span (name, start, duration, depth,
  parent, attrs).
* ``metrics`` — a cumulative snapshot of all counters/gauges/histogram
  summaries.  Readers keep the *last* one, mirroring the cumulative
  counter records of the checkpoint journal.
* ``event``   — a point event (no duration), e.g. a worker respawn.

:class:`JsonlSink` appends records to a JSONL trace file in the same
append-only, torn-tail-tolerant style as the checkpoint journal: each
record is flushed as one line, so a killed campaign leaves a valid
prefix behind and :func:`read_trace` silently discards a torn final
line.  :class:`MemorySink` buffers records in a list (the per-worker
buffer of parallel Stage 4).  :class:`NullSink` drops everything — the
disabled-observability fast path.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

#: Version of the event schema; bumped on incompatible record changes.
SCHEMA_VERSION = 1


class TraceError(ValueError):
    """The trace file is unreadable: no header or wrong schema."""


class NullSink:
    """Drops every record; the disabled-observability sink."""

    enabled = False

    __slots__ = ()

    def emit(self, record: Dict) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Buffers records in memory (per-worker buffering in Stage 4)."""

    enabled = True

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.events.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends records to a JSONL trace file, one flushed line each.

    The header record is written eagerly on construction so that even a
    campaign killed during Stage 1 leaves an identifiable trace behind.

    ``append=True`` reopens an existing trace instead of truncating it
    and writes the header only when the file is empty or missing — the
    campaign-service restart path, where one job's trace spans several
    daemon lifetimes and must stay a single-header stream for
    :func:`read_trace`.
    """

    enabled = True

    def __init__(
        self, path: str, header: Optional[Dict] = None, append: bool = False
    ):
        self.path = path
        resumed = append and os.path.exists(path) and os.path.getsize(path) > 0
        self._handle = open(path, "a" if append else "w", encoding="utf-8")
        if not resumed:
            record = {"kind": "header", "schema": SCHEMA_VERSION}
            record.update(header or {})
            self.emit(record)

    def emit(self, record: Dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class TeeSink:
    """Mirrors every record to one owned sink plus any number of shared ones.

    The campaign service tees each job's events into the job's own trace
    file (the owned ``primary``) and the daemon-wide operations trace
    (shared across jobs).  ``close()`` closes only the primary — the
    shared mirrors outlive any single job.
    """

    enabled = True

    __slots__ = ("primary", "mirrors")

    def __init__(self, primary, *mirrors):
        self.primary = primary
        self.mirrors = mirrors

    def emit(self, record: Dict) -> None:
        self.primary.emit(record)
        for mirror in self.mirrors:
            mirror.emit(record)

    def close(self) -> None:
        self.primary.close()


def read_trace(path: str) -> Tuple[Dict, List[Dict]]:
    """Read a JSONL trace: (header, records after the header).

    Tolerates a torn final line (the writing campaign was killed
    mid-record) by discarding it, exactly like the checkpoint loader.
    Raises :class:`TraceError` when the file has no header record or the
    header's schema version is unknown.
    """
    header: Optional[Dict] = None
    events: List[Dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: keep the valid prefix
            if header is None:
                if record.get("kind") != "header":
                    raise TraceError(
                        f"trace {path!r}: first record is not a header"
                    )
                if record.get("schema") != SCHEMA_VERSION:
                    raise TraceError(
                        f"trace {path!r}: schema {record.get('schema')!r} "
                        f"not supported (expected {SCHEMA_VERSION})"
                    )
                header = record
            else:
                events.append(record)
    if header is None:
        raise TraceError(f"trace {path!r} has no header record")
    return header, events
