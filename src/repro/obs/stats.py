"""Trace-file aggregation behind ``repro stats``.

Reads a JSONL trace (written via ``--trace-out``), keeps the last
cumulative ``metrics`` snapshot, aggregates spans by name, and shapes
the three views the CLI renders:

* the Stage-1→4 funnel table (the paper's evaluation quantities),
* the per-stage wall-time breakdown (span totals),
* trial-latency percentiles (from ``stage4.trial`` span durations).

Rendering itself lives in :mod:`repro.orchestrate.reporting` next to
the other table renderers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.sink import read_trace

Number = Union[int, float]


@dataclass
class SpanAgg:
    """All closed spans of one name, aggregated."""

    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    durations: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration > self.max:
            self.max = duration
        self.durations.append(duration)


@dataclass
class TraceStats:
    """Everything ``repro stats`` needs, distilled from one trace file."""

    header: Dict
    counters: Dict[str, Number] = field(default_factory=dict)
    gauges: Dict[str, Number] = field(default_factory=dict)
    histograms: Dict[str, Dict] = field(default_factory=dict)
    spans: Dict[str, SpanAgg] = field(default_factory=dict)
    nevents: int = 0
    wall: float = 0.0  # observed span extent (max t0+dur − min t0)


def aggregate_trace(header: Dict, events: List[Dict]) -> TraceStats:
    """Fold raw trace records into :class:`TraceStats`."""
    stats = TraceStats(header=header)
    t_min: Optional[float] = None
    t_max = 0.0
    for record in events:
        kind = record.get("kind")
        if kind == "span":
            name = record.get("name", "?")
            agg = stats.spans.get(name)
            if agg is None:
                agg = stats.spans[name] = SpanAgg(name)
            dur = float(record.get("dur", 0.0))
            agg.add(dur)
            t0 = float(record.get("t0", 0.0))
            t_min = t0 if t_min is None or t0 < t_min else t_min
            t_max = max(t_max, t0 + dur)
        elif kind == "metrics":
            # Snapshots are cumulative; the last one wins.
            stats.counters = dict(record.get("counters", {}))
            stats.gauges = dict(record.get("gauges", {}))
            stats.histograms = dict(record.get("histograms", {}))
        elif kind == "event":
            stats.nevents += 1
    if t_min is not None:
        stats.wall = max(0.0, t_max - t_min)
    return stats


def load_stats(path: str) -> TraceStats:
    """Read and aggregate one trace file."""
    header, events = read_trace(path)
    return aggregate_trace(header, events)


# -- the funnel table ----------------------------------------------------------

#: (stage label, metric label, counter/gauge name) in funnel order.  A
#: row whose name is missing from the trace renders as "-" — older or
#: partial traces stay readable.
FUNNEL_LAYOUT: Tuple[Tuple[str, str, str], ...] = (
    ("1 profiling", "corpus tests kept", "stage1.corpus_tests"),
    ("1 profiling", "tests profiled", "stage1.profiles"),
    ("1 profiling", "instructions profiled", "stage1.instructions"),
    ("2 PMC identification", "overlaps scanned", "stage2.overlaps"),
    ("2 PMC identification", "PMCs identified", "stage2.pmcs"),
    ("2 PMC identification", "(writer, reader) pairs", "stage2.pairs"),
    ("2 PMC identification", "store hot-tier hits", "store.hot_hits"),
    ("2 PMC identification", "store cold probes", "store.cold_probes"),
    ("2 PMC identification", "store bucket evictions", "store.evictions"),
    ("3 selection", "PMCs filtered out", "stage3.filtered"),
    ("3 selection", "clusters kept", "stage3.clusters"),
    ("3 selection", "duplicate exemplars skipped", "stage3.duplicates"),
    ("3 selection", "clusters tested in earlier rounds", "stage3.tested_before"),
    ("3 selection", "tests generated", "stage3.tests"),
    ("4 execution", "tests executed", "stage4.tests"),
    ("4 execution", "trials executed", "stage4.trials"),
    ("4 execution", "instructions executed", "stage4.instructions"),
    ("4 execution", "PMC channels exercised", "stage4.exercised"),
    ("4 execution", "races flagged", "stage4.races"),
    ("4 execution", "distinct observations", "stage4.observations"),
    ("4 execution", "catalogued bugs", "stage4.bugs"),
    ("4 execution", "snapshot pages restored", "restore.pages"),
    ("4 execution", "prefix fork hits", "stage4.prefix_fork_hits"),
    ("4 execution", "commuting trials pruned", "stage4.trials_pruned"),
    ("4 execution", "task failures", "fleet.task_failures"),
    ("4 execution", "task retries", "fleet.task_retries"),
    ("4 execution", "worker respawns", "fleet.worker_respawns"),
)


def funnel_rows(stats: TraceStats) -> List[List[str]]:
    """Rows for the Stage-1→4 funnel table."""
    rows: List[List[str]] = []
    for stage, label, name in FUNNEL_LAYOUT:
        value = stats.counters.get(name, stats.gauges.get(name))
        rows.append([stage, label, "-" if value is None else f"{value:,}"])
    return rows


#: Funnel rows that depend on executor history rather than the campaign
#: definition: dirty-page restore counts differ between a serial run
#: (one warm executor) and a fleet (each worker's first restore copies
#: the full snapshot) — the same reason ``restore_seconds`` is kept out
#: of ``CampaignResult.summary()``.  The PMC-store tier counters are the
#: same class of fact: hot hits, cold probes and evictions describe the
#: cache configuration, not the campaign, and a spilled run must compare
#: equal to an in-memory one.  Prefix-fork hits and pruned-trial credits
#: are likewise execution-strategy facts: a fleet re-records each task's
#: prefix per worker (different hit pattern than one warm serial
#: executor), and ``--prune-commuting`` deliberately runs fewer trials —
#: neither may break funnel equivalence.  Displayed, but not compared.
HISTORY_DEPENDENT = frozenset(
    {
        "restore.pages",
        "store.hot_hits",
        "store.cold_probes",
        "store.evictions",
        "stage4.prefix_fork_hits",
        "stage4.trials_pruned",
    }
)


def funnel_totals(stats: TraceStats) -> Dict[str, Number]:
    """The funnel counters/gauges keyed by name (equivalence checks).

    History-dependent quantities (:data:`HISTORY_DEPENDENT`) are left
    out: serial and parallel campaigns of the same seed must agree on
    every returned value."""
    totals: Dict[str, Number] = {}
    for _stage, _label, name in FUNNEL_LAYOUT:
        if name in HISTORY_DEPENDENT:
            continue
        value = stats.counters.get(name, stats.gauges.get(name))
        if value is not None:
            totals[name] = value
    return totals


# -- the PMC-store tier table --------------------------------------------------

def store_tiers(stats: TraceStats) -> Optional[Dict[str, Number]]:
    """Hot/cold tier traffic of the out-of-core PMC store.

    ``None`` for in-memory traces (no ``store.*`` counters); otherwise
    the probe counts, the hot-tier hit rate, and the eviction count.
    """
    hot = stats.counters.get("store.hot_hits")
    cold = stats.counters.get("store.cold_probes")
    evictions = stats.counters.get("store.evictions")
    if hot is None and cold is None and evictions is None:
        return None
    hot = hot or 0
    cold = cold or 0
    probes = hot + cold
    return {
        "hot_hits": hot,
        "cold_probes": cold,
        "probes": probes,
        "hot_rate": (hot / probes) if probes else 0.0,
        "evictions": evictions or 0,
    }


# -- the per-round funnel ------------------------------------------------------

#: ``round.N.<metric>`` counter names emitted by ``run_rounds``.
_ROUND_COUNTER = re.compile(r"^round\.(\d+)\.([a-z_]+)$")

#: Per-round metrics in display order (column label, counter suffix).
ROUND_METRICS: Tuple[Tuple[str, str], ...] = (
    ("tests", "tests"),
    ("trials", "trials"),
    ("new corpus", "corpus_tests"),
    ("new profiles", "profiles"),
    ("new PMCs", "new_pmcs"),
    ("new bugs", "bugs"),
)


def round_counters(stats: TraceStats) -> Dict[int, Dict[str, Number]]:
    """Per-round funnel deltas, keyed by round number.

    Empty for batch traces — the presence of ``round.N.*`` counters is
    what makes a trace round-based."""
    rounds: Dict[int, Dict[str, Number]] = {}
    for name, value in stats.counters.items():
        match = _ROUND_COUNTER.match(name)
        if match is not None:
            rounds.setdefault(int(match.group(1)), {})[match.group(2)] = value
    return rounds


def round_rows(stats: TraceStats) -> List[List[str]]:
    """Rows for the per-round funnel table (empty for batch traces)."""
    rounds = round_counters(stats)
    rows: List[List[str]] = []
    for number in sorted(rounds):
        data = rounds[number]
        row = [str(number)]
        for _label, suffix in ROUND_METRICS:
            value = data.get(suffix)
            row.append("-" if value is None else f"{value:,}")
        rows.append(row)
    return rows


# -- the per-worker fleet table ------------------------------------------------

#: ``fleet.wN.<metric>`` counter names emitted at campaign finish.
_FLEET_WORKER_COUNTER = re.compile(
    r"^fleet\.w(\d+)\.(tasks|retries|respawns|missed_heartbeats)$"
)

#: Per-worker metrics in display order (column label, counter suffix).
FLEET_WORKER_METRICS: Tuple[Tuple[str, str], ...] = (
    ("tasks", "tasks"),
    ("retries", "retries"),
    ("respawns", "respawns"),
    ("missed heartbeats", "missed_heartbeats"),
)


def fleet_worker_counters(stats: TraceStats) -> Dict[int, Dict[str, Number]]:
    """Per-worker fleet health, keyed by worker id.

    Empty for serial traces — only campaigns that ran a worker fleet
    emit ``fleet.wN.*`` counters."""
    workers: Dict[int, Dict[str, Number]] = {}
    for name, value in stats.counters.items():
        match = _FLEET_WORKER_COUNTER.match(name)
        if match is not None:
            workers.setdefault(int(match.group(1)), {})[match.group(2)] = value
    return workers


def fleet_worker_rows(stats: TraceStats) -> List[List[str]]:
    """Rows for the per-worker fleet table (empty for serial traces)."""
    workers = fleet_worker_counters(stats)
    rows: List[List[str]] = []
    for worker_id in sorted(workers):
        data = workers[worker_id]
        row = [f"w{worker_id}"]
        for _label, suffix in FLEET_WORKER_METRICS:
            value = data.get(suffix)
            row.append("-" if value is None else f"{value:,}")
        rows.append(row)
    return rows


# -- the per-stage time breakdown ----------------------------------------------

def stage_time_rows(stats: TraceStats) -> List[List[str]]:
    """Per-span-name wall-time rows, largest total first.

    Share is relative to the observed trace extent; nested spans
    (``stage4.trial`` inside ``stage4.test``, ``snapshot.restore``
    inside both) overlap their parents, so shares do not sum to 100%.
    """
    rows: List[List[str]] = []
    for agg in sorted(stats.spans.values(), key=lambda a: -a.total):
        share = agg.total / stats.wall if stats.wall > 0 else 0.0
        rows.append(
            [
                agg.name,
                str(agg.count),
                f"{agg.total:.3f}",
                f"{agg.mean * 1e3:.2f}",
                f"{agg.max * 1e3:.2f}",
                f"{share:.1%}",
            ]
        )
    return rows


# -- trial latency -------------------------------------------------------------

def percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile; 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * p // 100))
    return ordered[int(rank) - 1]


def trial_latency(stats: TraceStats) -> Dict[str, float]:
    """p50/p95/mean/max trial latency in milliseconds, plus the count."""
    agg = stats.spans.get("stage4.trial")
    durations = agg.durations if agg is not None else []
    return {
        "count": len(durations),
        "p50_ms": percentile(durations, 50) * 1e3,
        "p95_ms": percentile(durations, 95) * 1e3,
        "mean_ms": (sum(durations) / len(durations) * 1e3) if durations else 0.0,
        "max_ms": max(durations) * 1e3 if durations else 0.0,
    }


def stats_to_obj(stats: TraceStats) -> Dict:
    """The machine-readable shape of the report (``repro stats --json``).

    Everything the rendered tables show, as raw numbers: the funnel (by
    counter name), the per-round deltas when the trace is round-based,
    per-span wall times, and the trial-latency percentiles.
    """
    funnel: Dict[str, Number] = {}
    for _stage, _label, name in FUNNEL_LAYOUT:
        value = stats.counters.get(name, stats.gauges.get(name))
        if value is not None:
            funnel[name] = value
    rounds = round_counters(stats)
    workers = fleet_worker_counters(stats)
    return {
        "header": dict(stats.header),
        "funnel": funnel,
        "store_tiers": store_tiers(stats),
        "rounds": [{"round": n, **rounds[n]} for n in sorted(rounds)],
        "fleet_workers": [{"worker": n, **workers[n]} for n in sorted(workers)],
        "stage_times": [
            {
                "name": agg.name,
                "count": agg.count,
                "total_s": agg.total,
                "mean_ms": agg.mean * 1e3,
                "max_ms": agg.max * 1e3,
            }
            for agg in sorted(stats.spans.values(), key=lambda a: -a.total)
        ],
        "trial_latency": trial_latency(stats),
        "counters": dict(stats.counters),
        "gauges": dict(stats.gauges),
        "events": stats.nevents,
        "wall_seconds": stats.wall,
    }


def render_stats(stats: TraceStats, markdown: bool = False) -> str:
    """The full ``repro stats`` report: funnel, stage times, latency —
    plus the per-round funnel when the trace came from ``run_rounds``."""
    from repro.orchestrate.reporting import (
        render_fleet_workers,
        render_funnel,
        render_rounds,
        render_stage_times,
        render_store_tiers,
        render_trial_latency,
    )

    header = stats.header
    described = ", ".join(
        f"{key}={header[key]}"
        for key in ("strategy", "seed", "budget", "trials", "workers", "rounds")
        if key in header
    )
    parts = []
    if described:
        parts.append(f"campaign: {described}")
    parts.append("== Stage 1 -> 4 funnel ==")
    parts.append(render_funnel(funnel_rows(stats), markdown=markdown))
    tiers = store_tiers(stats)
    if tiers is not None:
        parts.append("")
        parts.append("== PMC store tiers ==")
        parts.append(render_store_tiers(tiers, markdown=markdown))
    rounds = round_rows(stats)
    if rounds:
        parts.append("")
        parts.append("== Per-round funnel ==")
        parts.append(render_rounds(rounds, markdown=markdown))
    workers = fleet_worker_rows(stats)
    if workers:
        parts.append("")
        parts.append("== Fleet workers ==")
        parts.append(render_fleet_workers(workers, markdown=markdown))
    parts.append("")
    parts.append("== Per-stage wall time ==")
    parts.append(render_stage_times(stage_time_rows(stats), markdown=markdown))
    parts.append("")
    parts.append("== Trial latency ==")
    parts.append(render_trial_latency(trial_latency(stats), markdown=markdown))
    return "\n".join(parts)
