"""Trace-file aggregation behind ``repro stats``.

Reads a JSONL trace (written via ``--trace-out``), keeps the last
cumulative ``metrics`` snapshot, aggregates spans by name, and shapes
the three views the CLI renders:

* the Stage-1→4 funnel table (the paper's evaluation quantities),
* the per-stage wall-time breakdown (span totals),
* trial-latency percentiles (from ``stage4.trial`` span durations).

Rendering itself lives in :mod:`repro.orchestrate.reporting` next to
the other table renderers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.sink import read_trace

Number = Union[int, float]


@dataclass
class SpanAgg:
    """All closed spans of one name, aggregated."""

    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    durations: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration > self.max:
            self.max = duration
        self.durations.append(duration)


@dataclass
class TraceStats:
    """Everything ``repro stats`` needs, distilled from one trace file."""

    header: Dict
    counters: Dict[str, Number] = field(default_factory=dict)
    gauges: Dict[str, Number] = field(default_factory=dict)
    histograms: Dict[str, Dict] = field(default_factory=dict)
    spans: Dict[str, SpanAgg] = field(default_factory=dict)
    nevents: int = 0
    wall: float = 0.0  # observed span extent (max t0+dur − min t0)


def aggregate_trace(header: Dict, events: List[Dict]) -> TraceStats:
    """Fold raw trace records into :class:`TraceStats`."""
    stats = TraceStats(header=header)
    t_min: Optional[float] = None
    t_max = 0.0
    for record in events:
        kind = record.get("kind")
        if kind == "span":
            name = record.get("name", "?")
            agg = stats.spans.get(name)
            if agg is None:
                agg = stats.spans[name] = SpanAgg(name)
            dur = float(record.get("dur", 0.0))
            agg.add(dur)
            t0 = float(record.get("t0", 0.0))
            t_min = t0 if t_min is None or t0 < t_min else t_min
            t_max = max(t_max, t0 + dur)
        elif kind == "metrics":
            # Snapshots are cumulative; the last one wins.
            stats.counters = dict(record.get("counters", {}))
            stats.gauges = dict(record.get("gauges", {}))
            stats.histograms = dict(record.get("histograms", {}))
        elif kind == "event":
            stats.nevents += 1
    if t_min is not None:
        stats.wall = max(0.0, t_max - t_min)
    return stats


def load_stats(path: str) -> TraceStats:
    """Read and aggregate one trace file."""
    header, events = read_trace(path)
    return aggregate_trace(header, events)


# -- the funnel table ----------------------------------------------------------

#: (stage label, metric label, counter/gauge name) in funnel order.  A
#: row whose name is missing from the trace renders as "-" — older or
#: partial traces stay readable.
FUNNEL_LAYOUT: Tuple[Tuple[str, str, str], ...] = (
    ("1 profiling", "corpus tests kept", "stage1.corpus_tests"),
    ("1 profiling", "tests profiled", "stage1.profiles"),
    ("1 profiling", "instructions profiled", "stage1.instructions"),
    ("2 PMC identification", "overlaps scanned", "stage2.overlaps"),
    ("2 PMC identification", "PMCs identified", "stage2.pmcs"),
    ("2 PMC identification", "(writer, reader) pairs", "stage2.pairs"),
    ("3 selection", "PMCs filtered out", "stage3.filtered"),
    ("3 selection", "clusters kept", "stage3.clusters"),
    ("3 selection", "duplicate exemplars skipped", "stage3.duplicates"),
    ("3 selection", "tests generated", "stage3.tests"),
    ("4 execution", "tests executed", "stage4.tests"),
    ("4 execution", "trials executed", "stage4.trials"),
    ("4 execution", "instructions executed", "stage4.instructions"),
    ("4 execution", "PMC channels exercised", "stage4.exercised"),
    ("4 execution", "races flagged", "stage4.races"),
    ("4 execution", "distinct observations", "stage4.observations"),
    ("4 execution", "catalogued bugs", "stage4.bugs"),
    ("4 execution", "snapshot pages restored", "restore.pages"),
    ("4 execution", "task failures", "fleet.task_failures"),
    ("4 execution", "task retries", "fleet.task_retries"),
    ("4 execution", "worker respawns", "fleet.worker_respawns"),
)


def funnel_rows(stats: TraceStats) -> List[List[str]]:
    """Rows for the Stage-1→4 funnel table."""
    rows: List[List[str]] = []
    for stage, label, name in FUNNEL_LAYOUT:
        value = stats.counters.get(name, stats.gauges.get(name))
        rows.append([stage, label, "-" if value is None else f"{value:,}"])
    return rows


#: Funnel rows that depend on executor history rather than the campaign
#: definition: dirty-page restore counts differ between a serial run
#: (one warm executor) and a fleet (each worker's first restore copies
#: the full snapshot) — the same reason ``restore_seconds`` is kept out
#: of ``CampaignResult.summary()``.  Displayed, but not compared.
HISTORY_DEPENDENT = frozenset({"restore.pages"})


def funnel_totals(stats: TraceStats) -> Dict[str, Number]:
    """The funnel counters/gauges keyed by name (equivalence checks).

    History-dependent quantities (:data:`HISTORY_DEPENDENT`) are left
    out: serial and parallel campaigns of the same seed must agree on
    every returned value."""
    totals: Dict[str, Number] = {}
    for _stage, _label, name in FUNNEL_LAYOUT:
        if name in HISTORY_DEPENDENT:
            continue
        value = stats.counters.get(name, stats.gauges.get(name))
        if value is not None:
            totals[name] = value
    return totals


# -- the per-stage time breakdown ----------------------------------------------

def stage_time_rows(stats: TraceStats) -> List[List[str]]:
    """Per-span-name wall-time rows, largest total first.

    Share is relative to the observed trace extent; nested spans
    (``stage4.trial`` inside ``stage4.test``, ``snapshot.restore``
    inside both) overlap their parents, so shares do not sum to 100%.
    """
    rows: List[List[str]] = []
    for agg in sorted(stats.spans.values(), key=lambda a: -a.total):
        share = agg.total / stats.wall if stats.wall > 0 else 0.0
        rows.append(
            [
                agg.name,
                str(agg.count),
                f"{agg.total:.3f}",
                f"{agg.mean * 1e3:.2f}",
                f"{agg.max * 1e3:.2f}",
                f"{share:.1%}",
            ]
        )
    return rows


# -- trial latency -------------------------------------------------------------

def percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile; 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * p // 100))
    return ordered[int(rank) - 1]


def trial_latency(stats: TraceStats) -> Dict[str, float]:
    """p50/p95/mean/max trial latency in milliseconds, plus the count."""
    agg = stats.spans.get("stage4.trial")
    durations = agg.durations if agg is not None else []
    return {
        "count": len(durations),
        "p50_ms": percentile(durations, 50) * 1e3,
        "p95_ms": percentile(durations, 95) * 1e3,
        "mean_ms": (sum(durations) / len(durations) * 1e3) if durations else 0.0,
        "max_ms": max(durations) * 1e3 if durations else 0.0,
    }


def render_stats(stats: TraceStats, markdown: bool = False) -> str:
    """The full ``repro stats`` report: funnel, stage times, latency."""
    from repro.orchestrate.reporting import (
        render_funnel,
        render_stage_times,
        render_trial_latency,
    )

    header = stats.header
    described = ", ".join(
        f"{key}={header[key]}"
        for key in ("strategy", "seed", "budget", "trials", "workers")
        if key in header
    )
    parts = []
    if described:
        parts.append(f"campaign: {described}")
    parts.append("== Stage 1 -> 4 funnel ==")
    parts.append(render_funnel(funnel_rows(stats), markdown=markdown))
    parts.append("")
    parts.append("== Per-stage wall time ==")
    parts.append(render_stage_times(stage_time_rows(stats), markdown=markdown))
    parts.append("")
    parts.append("== Trial latency ==")
    parts.append(render_trial_latency(trial_latency(stats), markdown=markdown))
    return "\n".join(parts)
