"""Nestable wall-time spans over an event sink.

A span names one unit of pipeline work (``stage1.profile``,
``stage4.trial``, ``snapshot.restore``) and carries its start offset,
duration, nesting depth, parent span name and free-form attributes.
Spans are context managers; the record is emitted to the sink when the
span closes, so a trace is always ordered by completion time within one
tracer.

Timing is ``time.perf_counter`` relative to the tracer's ``epoch``.
Worker tracers in parallel Stage 4 are constructed with the campaign
tracer's epoch so their offsets stay on the campaign clock.

The :class:`NullTracer` is the disabled path: ``span()`` returns a
shared no-op singleton, so instrumented code costs two attribute loads
and no allocations when observability is off.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.obs.sink import NullSink


class Span:
    """One live span; emitted to the sink when the context exits."""

    __slots__ = ("name", "attrs", "depth", "parent", "duration", "_tracer", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict):
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.parent: Optional[str] = None
        self.duration = 0.0
        self._tracer = tracer
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        self.duration = end - self._t0
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._emit(self, self._t0)
        return False


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    name = ""
    attrs: Dict = {}
    depth = 0
    parent = None
    duration = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span — identity-stable so hot paths never allocate.
NULL_SPAN = _NullSpan()


class Tracer:
    """Factory and stack of nested spans over one sink."""

    enabled = True

    def __init__(self, sink=None, epoch: Optional[float] = None):
        self.sink = sink if sink is not None else NullSink()
        self.epoch = time.perf_counter() if epoch is None else epoch
        self._stack: List[Span] = []

    def span(self, name: str, **attrs) -> Span:
        """A new span, entered via ``with``; nests under the open span."""
        return Span(self, name, attrs)

    def record(self, name: str, duration: float, **attrs) -> None:
        """Emit a span for work that was already timed externally.

        Used where the duration is measured anyway (e.g. the executor's
        snapshot-restore timer) so instrumentation adds no second clock
        read.  The record nests under the currently open span.
        """
        stack = self._stack
        self.sink.emit(
            {
                "kind": "span",
                "name": name,
                "t0": round(time.perf_counter() - duration - self.epoch, 6),
                "dur": round(duration, 6),
                "depth": len(stack),
                "parent": stack[-1].name if stack else None,
                "attrs": attrs,
            }
        )

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def _emit(self, span: Span, t0: float) -> None:
        self.sink.emit(
            {
                "kind": "span",
                "name": span.name,
                "t0": round(t0 - self.epoch, 6),
                "dur": round(span.duration, 6),
                "depth": span.depth,
                "parent": span.parent,
                "attrs": span.attrs,
            }
        )


class NullTracer:
    """Disabled tracer: every span is the shared no-op singleton."""

    enabled = False

    __slots__ = ()

    sink = NullSink()
    epoch = 0.0
    depth = 0

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def record(self, name: str, duration: float, **attrs) -> None:
        pass


NULL_TRACER = NullTracer()
