"""Out-of-core tiered storage for the access index (the 169B-PMC problem).

The paper's real deployment identified 169 *billion* PMCs (§6); an
access corpus of that size cannot live in Python dictionaries.  This
module is the disk tier behind :class:`~repro.pmc.index.AccessIndex`:
an **append-only, seq-stamped** record store, sharded by start-address
range into mmap-friendly fixed-width segment files, with a manifest
checkpoint that makes a killed campaign resumable bit for bit.

Design (DESIGN.md §2.14):

* **Write-through** — every indexed access is appended to its shard's
  pending buffer the moment it is inserted.  Evicting a hot bucket is
  therefore free: the records are already owned by the store, and the
  index merely drops its in-memory copy.
* **Fixed-width records** — 36 little-endian bytes per access
  (:data:`RECORD`): addr, value and seq as u64, test id and interned
  instruction id as u32, size and flags as u8 (+2 pad).  Values are
  machine words (``size <= 8``), so u64 is lossless.
* **Sharding by start address** — ``addr >> shard_shift`` names the
  segment file.  A cold probe therefore reads one bounded file, not the
  whole corpus; segment parses are cached in an LRU of recently probed
  shards.
* **Seq order on disk** — appends happen in insertion order, so each
  shard file is sorted by seq.  Replaying a shard's records for one
  address through ``_Bucket.insert`` reconstructs the exact nested
  iteration order of the in-memory bucket — the property that makes a
  spilled campaign bit-identical to an in-memory one.
* **Manifest checkpoints** — ``checkpoint(seq)`` flushes pending
  buffers and writes ``manifest.json``: per-shard durable lengths and
  chained content digests, the interned string table, the seq
  watermark, and the history of previous checkpoints.  Reopening a
  store truncates each segment to its manifest length (discarding torn
  appends), and re-inserted records with ``seq < durable_seq`` are
  skipped instead of duplicated — the resume path of a killed campaign
  recomputes its insert stream and converges on byte-identical
  segments.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.machine.accesses import AccessType
from repro.profile.profiler import ProfiledAccess

STORE_VERSION = 1

#: One access on disk: addr, value, seq (u64), test_id, ins_id (u32),
#: size, flags (u8), 2 pad bytes.  Little-endian, 36 bytes.
RECORD = struct.Struct("<QQQIIBBxx")
RECORD_SIZE = RECORD.size

FLAG_WRITE = 0x01
FLAG_DF_LEADER = 0x02

#: Default shard granularity: one segment file per 4 KiB of address
#: space, the natural page-sized probe window.
DEFAULT_SHARD_SHIFT = 12
#: Pending records buffered in memory before an automatic flush.
DEFAULT_PENDING_LIMIT = 65_536
#: Parsed segment files kept in the recently-probed-shard LRU.
DEFAULT_SHARD_CACHE = 16

MANIFEST_NAME = "manifest.json"
_U64_MAX = (1 << 64) - 1
_U32_MAX = (1 << 32) - 1


class StoreError(RuntimeError):
    """The store cannot satisfy a request (corruption or misuse)."""


def _chain(digest: str, chunk_digest: str) -> str:
    """Advance a shard's chained content digest by one checkpoint."""
    return hashlib.sha256((digest + chunk_digest).encode()).hexdigest()


def _canonical_digest(obj: Dict) -> str:
    canon = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


class _Shard:
    """One segment file: durable extent, record count, digest chain."""

    __slots__ = ("name", "length", "records", "digest", "_since_checkpoint")

    def __init__(self, name: str, length: int = 0, records: int = 0, digest: str = ""):
        self.name = name
        self.length = length
        self.records = records
        self.digest = digest
        # Streaming hash of bytes appended since the last checkpoint;
        # chunk boundaries (auto-flush points) do not affect it.
        self._since_checkpoint: Optional["hashlib._Hash"] = None

    def absorb(self, chunk: bytes) -> None:
        if self._since_checkpoint is None:
            self._since_checkpoint = hashlib.sha256()
        self._since_checkpoint.update(chunk)

    def seal(self) -> None:
        """Fold the since-checkpoint hash into the digest chain."""
        if self._since_checkpoint is not None:
            self.digest = _chain(self.digest, self._since_checkpoint.hexdigest())
            self._since_checkpoint = None

    def to_obj(self) -> Dict:
        return {
            "file": self.name,
            "length": self.length,
            "records": self.records,
            "digest": self.digest,
        }


class AccessStore:
    """The disk tier: append-only seq-stamped access records in shards.

    Use :meth:`open` — it adopts an existing manifest (truncating torn
    segment tails) or initialises a fresh directory.  All appends go
    through in-memory pending buffers; :meth:`flush` makes them durable
    and :meth:`checkpoint` additionally writes the manifest.
    """

    def __init__(
        self,
        root: str,
        shard_shift: int = DEFAULT_SHARD_SHIFT,
        pending_limit: int = DEFAULT_PENDING_LIMIT,
        shard_cache_size: int = DEFAULT_SHARD_CACHE,
        fingerprint: Optional[Dict] = None,
    ):
        self.root = root
        self.shard_shift = shard_shift
        self.pending_limit = pending_limit
        self.shard_cache_size = max(1, shard_cache_size)
        self.fingerprint = dict(fingerprint) if fingerprint else {}
        # (is_write, shard_id) -> _Shard
        self._shards: Dict[Tuple[bool, int], _Shard] = {}
        # (is_write, shard_id) -> {addr: [(access, test_id, seq), ...]}
        self._pending: Dict[Tuple[bool, int], Dict[int, List]] = {}
        self._pending_records = 0
        # Interned instruction strings: id order == first-seen order.
        self._strings: List[str] = []
        self._string_ids: Dict[str, int] = {}
        # Parsed durable segments, keyed like _shards; LRU by probe.
        self._cache: "OrderedDict[Tuple[bool, int], Dict[int, List]]" = OrderedDict()
        # Records with seq below this are already durable (resume skip).
        self.durable_seq = 0
        # Highest seq appended + 1; the next checkpoint's watermark.
        self._seq_watermark = 0
        # [(seq, digest), ...] — one entry per checkpoint ever taken.
        self._checkpoints: List[Tuple[int, str]] = []
        self._manifest_digest = ""
        # Tier traffic counters, surfaced as store.* obs counters.
        self.stats: Dict[str, int] = {
            "hot_hits": 0,
            "cold_probes": 0,
            "evictions": 0,
            "shard_loads": 0,
            "spilled_records": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: str,
        fingerprint: Optional[Dict] = None,
        shard_shift: int = DEFAULT_SHARD_SHIFT,
        pending_limit: int = DEFAULT_PENDING_LIMIT,
        shard_cache_size: int = DEFAULT_SHARD_CACHE,
    ) -> "AccessStore":
        """Open ``root``, adopting a matching manifest or starting fresh.

        A manifest written by a campaign with a different fingerprint
        (seed, corpus budget, kernel variant) or shard geometry describes
        a different insert stream; adopting it would silently skip
        re-appends of records that are *not* on disk, so the directory is
        wiped instead.
        """
        store = cls(
            root,
            shard_shift=shard_shift,
            pending_limit=pending_limit,
            shard_cache_size=shard_cache_size,
            fingerprint=fingerprint,
        )
        os.makedirs(root, exist_ok=True)
        manifest_path = os.path.join(root, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            with open(manifest_path) as handle:
                manifest = json.load(handle)
            if (
                manifest.get("version") == STORE_VERSION
                and manifest.get("record_bytes") == RECORD_SIZE
                and manifest.get("shard_shift") == shard_shift
                and manifest.get("fingerprint") == store.fingerprint
            ):
                store._adopt(manifest)
                return store
        store._wipe()
        return store

    def _wipe(self) -> None:
        for name in os.listdir(self.root):
            if name == MANIFEST_NAME or name.endswith(".seg"):
                os.remove(os.path.join(self.root, name))

    def _adopt(self, manifest: Dict) -> None:
        """Resume from a manifest: truncate segments to durable extents."""
        self._strings = list(manifest.get("strings", []))
        self._string_ids = {s: i for i, s in enumerate(self._strings)}
        self.durable_seq = int(manifest.get("seq", 0))
        self._seq_watermark = self.durable_seq
        self._checkpoints = [
            (int(seq), digest) for seq, digest in manifest.get("checkpoints", [])
        ]
        self._manifest_digest = manifest.get("digest", "")
        for obj in manifest.get("shards", []):
            shard = _Shard(
                obj["file"],
                length=int(obj["length"]),
                records=int(obj["records"]),
                digest=obj["digest"],
            )
            if shard.length % RECORD_SIZE:
                raise StoreError(
                    f"store {self.root!r}: shard {shard.name} manifest length "
                    f"{shard.length} is not a whole number of records"
                )
            path = os.path.join(self.root, shard.name)
            actual = os.path.getsize(path) if os.path.exists(path) else 0
            if actual < shard.length:
                raise StoreError(
                    f"store {self.root!r}: shard {shard.name} is shorter "
                    f"({actual} bytes) than its manifest extent ({shard.length})"
                )
            if actual > shard.length:
                # Torn appends past the last checkpoint: discard.
                with open(path, "r+b") as handle:
                    handle.truncate(shard.length)
            is_write, shard_id = self._parse_name(shard.name)
            self._shards[(is_write, shard_id)] = shard
        self.stats["spilled_records"] = sum(
            s.records for s in self._shards.values()
        )

    # -- naming -------------------------------------------------------------

    def _shard_name(self, is_write: bool, shard_id: int) -> str:
        side = "w" if is_write else "r"
        return f"shard_{side}_{shard_id:08x}.seg"

    @staticmethod
    def _parse_name(name: str) -> Tuple[bool, int]:
        stem = name[len("shard_") : -len(".seg")]
        side, _, shard_hex = stem.partition("_")
        return side == "w", int(shard_hex, 16)

    def shard_of(self, addr: int) -> int:
        return addr >> self.shard_shift

    # -- the write path -----------------------------------------------------

    def intern(self, ins: str) -> int:
        ins_id = self._string_ids.get(ins)
        if ins_id is None:
            ins_id = len(self._strings)
            if ins_id > _U32_MAX:
                raise StoreError("instruction string table overflow")
            self._string_ids[ins] = ins_id
            self._strings.append(ins)
        return ins_id

    def append(self, access: ProfiledAccess, test_id: int, seq: int) -> None:
        """Own one indexed access (write-through from the index).

        Appends with ``seq < durable_seq`` are the resume path replaying
        an insert stream whose prefix is already on disk — skipped, not
        duplicated.  The string table is still advanced so interned ids
        stay aligned with the durable records.
        """
        self.intern(access.ins)
        if seq >= self._seq_watermark:
            self._seq_watermark = seq + 1
        if seq < self.durable_seq:
            return
        if not 0 <= access.value <= _U64_MAX or not 0 <= access.addr <= _U64_MAX:
            raise StoreError(
                f"access at {access.addr:#x} does not fit the fixed-width "
                f"record (value={access.value!r})"
            )
        if not 0 <= test_id <= _U32_MAX:
            raise StoreError(f"test id {test_id} does not fit u32")
        is_write = access.is_write
        key = (is_write, self.shard_of(access.addr))
        pending = self._pending.get(key)
        if pending is None:
            pending = self._pending[key] = {}
        holders = pending.get(access.addr)
        if holders is None:
            pending[access.addr] = [(access, test_id, seq)]
        else:
            holders.append((access, test_id, seq))
        self._pending_records += 1
        self.stats["spilled_records"] += 1
        if self._pending_records >= self.pending_limit:
            self.flush()

    def flush(self) -> None:
        """Write every pending buffer to its segment file."""
        if not self._pending_records:
            return
        for (is_write, shard_id), by_addr in self._pending.items():
            shard = self._shards.get((is_write, shard_id))
            if shard is None:
                shard = self._shards[(is_write, shard_id)] = _Shard(
                    self._shard_name(is_write, shard_id)
                )
            # Pending is grouped by addr; disk order must be seq order.
            records = [rec for holders in by_addr.values() for rec in holders]
            records.sort(key=lambda rec: rec[2])
            chunk = b"".join(
                RECORD.pack(
                    access.addr,
                    access.value,
                    seq,
                    test_id,
                    self._string_ids[access.ins],
                    access.size,
                    (FLAG_WRITE if access.is_write else 0)
                    | (FLAG_DF_LEADER if access.df_leader else 0),
                )
                for access, test_id, seq in records
            )
            path = os.path.join(self.root, shard.name)
            with open(path, "ab") as handle:
                handle.write(chunk)
            shard.length += len(chunk)
            shard.records += len(records)
            shard.absorb(chunk)
            # The parsed-segment cache no longer matches the file.
            self._cache.pop((is_write, shard_id), None)
        self._pending.clear()
        self._pending_records = 0

    def checkpoint(self, seq: int) -> str:
        """Make everything durable and write the manifest; returns its digest.

        ``seq`` is the index's insertion watermark at the checkpoint.  A
        resumed campaign re-requesting a checkpoint the manifest already
        records (``seq <= durable_seq``) gets the recorded digest back —
        re-deriving it from current disk state would fold in data from
        *later* rounds and break the round-record equality check.
        """
        if seq < self.durable_seq or (seq == self.durable_seq and self._checkpoints):
            # A resumed campaign re-deriving a round the manifest already
            # covers: hand back the digest recorded *at that round*, not
            # one recomputed over the later rounds' durable data.  (A
            # fresh store has durable_seq == 0 and no history: a first
            # checkpoint at seq 0 — an empty round — falls through.)
            for recorded_seq, digest in self._checkpoints:
                if recorded_seq == seq:
                    return digest
            raise StoreError(
                f"store {self.root!r} has no checkpoint at seq {seq}: the "
                f"resumed campaign's insert stream diverges from the one "
                f"that wrote the manifest (wipe the spill dir to restart)"
            )
        if seq < self._seq_watermark:
            raise StoreError(
                f"checkpoint at seq {seq} but records up to "
                f"{self._seq_watermark - 1} were already appended"
            )
        self.flush()
        for shard in self._shards.values():
            shard.seal()
        self.durable_seq = seq
        self._seq_watermark = max(self._seq_watermark, seq)
        body = {
            "version": STORE_VERSION,
            "record_bytes": RECORD_SIZE,
            "shard_shift": self.shard_shift,
            "fingerprint": self.fingerprint,
            "seq": seq,
            "strings": self._strings,
            "shards": [
                shard.to_obj()
                for _key, shard in sorted(
                    self._shards.items(), key=lambda item: item[1].name
                )
            ],
        }
        digest = _canonical_digest(body)
        self._checkpoints.append((seq, digest))
        manifest = dict(body)
        manifest["checkpoints"] = [list(entry) for entry in self._checkpoints]
        manifest["digest"] = digest
        tmp = os.path.join(self.root, MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as handle:
            json.dump(manifest, handle)
        os.replace(tmp, os.path.join(self.root, MANIFEST_NAME))
        self._manifest_digest = digest
        return digest

    @property
    def manifest_digest(self) -> str:
        """Digest of the most recent manifest ("" before any checkpoint)."""
        return self._manifest_digest

    # -- the read path ------------------------------------------------------

    def _segment_records(self, is_write: bool, shard_id: int) -> Dict[int, List]:
        """Parse one durable segment into {addr: [(access, test, seq)]}.

        Cached in the recently-probed-shard LRU; the cache entry is
        dropped whenever :meth:`flush` appends to the segment.
        """
        key = (is_write, shard_id)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        by_addr: Dict[int, List] = {}
        shard = self._shards.get(key)
        if shard is not None and shard.length:
            path = os.path.join(self.root, shard.name)
            with open(path, "rb") as handle:
                data = handle.read(shard.length)
            if len(data) < shard.length:
                raise StoreError(
                    f"store {self.root!r}: shard {shard.name} truncated "
                    f"below its durable extent"
                )
            strings = self._strings
            read_t, write_t = AccessType.READ, AccessType.WRITE
            for addr, value, seq, test_id, ins_id, size, flags in RECORD.iter_unpack(
                data
            ):
                access = ProfiledAccess(
                    type=write_t if flags & FLAG_WRITE else read_t,
                    addr=addr,
                    size=size,
                    value=value,
                    ins=strings[ins_id],
                    df_leader=bool(flags & FLAG_DF_LEADER),
                )
                holders = by_addr.get(addr)
                if holders is None:
                    by_addr[addr] = [(access, test_id, seq)]
                else:
                    holders.append((access, test_id, seq))
            self.stats["shard_loads"] += 1
        self._cache[key] = by_addr
        while len(self._cache) > self.shard_cache_size:
            self._cache.popitem(last=False)
        return by_addr

    def load_bucket(self, is_write: bool, addr: int) -> List:
        """All records of one (side, start address), in seq order.

        Merges the durable segment with the pending buffer; segment
        records come first (appends are monotone in seq), so the result
        replays through ``_Bucket.insert`` in original insertion order.
        """
        shard_id = self.shard_of(addr)
        records = list(self._segment_records(is_write, shard_id).get(addr, ()))
        pending = self._pending.get((is_write, shard_id))
        if pending is not None:
            records.extend(pending.get(addr, ()))
        return records

    def close(self) -> None:
        self.flush()
