"""PMC identification — Algorithm 1 of the paper.

Index every profiled shared access of every sequential test, scan the
read/write overlaps, project both values onto the overlap window, and
classify pairs with differing projected values as PMCs.  Each PMC maps
to the (writer test, reader test) pairs that exhibit it — the raw
material for concurrent test generation.

Identification is *incremental*: :func:`identify_delta` folds a batch
of newly profiled tests into an existing :class:`PmcSet` by scanning
only the overlaps that involve at least one new access
(:meth:`~repro.pmc.index.AccessIndex.read_write_overlaps_since`).  The
batch :func:`identify_pmcs` is the degenerate one-round case — an empty
index plus one delta — so the two paths cannot drift; a property test
pins that any split of the profiles into deltas yields the same PmcSet
as the one-shot identification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.machine.accesses import project_value
from repro.obs import NULL_OBSERVER
from repro.pmc.index import AccessIndex
from repro.pmc.model import PMC, AccessKey
from repro.profile.profiler import TestProfile


@dataclass
class PmcSet:
    """The identified PMCs and the tests exhibiting each (the ``C`` map)."""

    pmcs: Dict[PMC, List[Tuple[int, int]]] = field(default_factory=dict)
    overlaps_scanned: int = 0
    profiles: Sequence[TestProfile] = ()
    # Lazily built test_id -> profile index: profile_by_id is called per
    # exemplar in the composition/inspection paths, and a linear scan
    # over all profiles there is quadratic in corpus size.
    _profile_index: Optional[Dict[int, TestProfile]] = field(
        default=None, repr=False, compare=False
    )
    # Per-PMC pair dedup sets, mirroring ``pmcs``.  Kept on the set (not
    # local to one identify call) so delta rounds keep deduplicating
    # against everything classified before.
    _seen_pairs: Dict[PMC, Set[Tuple[int, int]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.pmcs)

    def __iter__(self):
        return iter(self.pmcs)

    def pairs(self, pmc: PMC) -> List[Tuple[int, int]]:
        """(writer test id, reader test id) pairs exhibiting ``pmc``."""
        return self.pmcs[pmc]

    def all_pmcs(self) -> List[PMC]:
        return list(self.pmcs)

    def total_pairs(self) -> int:
        """Total (writer, reader) pairs across all PMCs."""
        return sum(len(pairs) for pairs in self.pmcs.values())

    def profile_by_id(self, test_id: int) -> TestProfile:
        index = self._profile_index
        if index is None:
            index = {}
            for profile in self.profiles:
                # First profile wins, like the linear scan it replaces.
                index.setdefault(profile.test_id, profile)
            self._profile_index = index
        try:
            return index[test_id]
        except KeyError:
            raise KeyError(test_id) from None

    def extend_profiles(self, new_profiles: Sequence[TestProfile]) -> None:
        """Append a round's profiles in amortised O(len(new_profiles)).

        The old per-round ``profiles = tuple(profiles) + tuple(new)``
        re-copied the whole corpus every round — O(corpus²) across a
        campaign — and discarded ``_profile_index``, re-paying an
        O(corpus) rebuild on the next ``profile_by_id``.  Instead the
        profiles live in an internal list that is extended in place, and
        an already-built index is extended incrementally (first profile
        still wins, as in the full rebuild).
        """
        if not isinstance(self.profiles, list):
            self.profiles = list(self.profiles)
        self.profiles.extend(new_profiles)
        index = self._profile_index
        if index is not None:
            for profile in new_profiles:
                index.setdefault(profile.test_id, profile)


def identify_pmcs(profiles: Sequence[TestProfile], obs=NULL_OBSERVER) -> PmcSet:
    """Algorithm 1: index all tests, scan overlaps, classify PMCs."""
    result = PmcSet()
    identify_delta(result, AccessIndex(), profiles, obs=obs)
    return result


def identify_delta(
    pmcset: PmcSet,
    index: AccessIndex,
    new_profiles: Sequence[TestProfile],
    obs=NULL_OBSERVER,
) -> Tuple[int, int]:
    """Fold newly profiled tests into ``pmcset``, scanning only the delta.

    Inserts ``new_profiles`` into ``index``, classifies every overlap
    involving at least one new access, and extends ``pmcset`` in place
    (new PMCs appended, new pairs appended to existing PMCs, dedup
    preserved across calls).  Returns ``(new_pmcs, new_pairs)`` — the
    counts this delta contributed.

    The union over any sequence of deltas equals the one-shot
    :func:`identify_pmcs` over the concatenated profiles: each
    overlapping (read, write) pair is scanned exactly once, in the delta
    where its later access arrived, and classification is per-pair.
    """
    store = getattr(index, "store", None)
    tier_before = dict(store.stats) if store is not None else None
    with obs.span("stage2.identify", profiles=len(new_profiles)) as span:
        mark = index.mark()
        for profile in new_profiles:
            index.insert_profile(profile)

        pmcs = pmcset.pmcs
        seen_pairs = pmcset._seen_pairs
        new_pmcs = 0
        new_pairs = 0
        delta_overlaps = 0

        for overlap in index.read_write_overlaps_since(mark):
            delta_overlaps += 1
            read, write = overlap.read, overlap.write
            read_value = project_value(
                read.addr, read.size, read.value, overlap.lo, overlap.hi
            )
            write_value = project_value(
                write.addr, write.size, write.value, overlap.lo, overlap.hi
            )
            if read_value == write_value:
                continue
            pmc = PMC(
                write=AccessKey.of(write),
                read=AccessKey.of(read),
                df_leader=read.df_leader,
            )
            pair = (overlap.write_test, overlap.read_test)
            holders = seen_pairs.setdefault(pmc, set())
            if pair not in holders:
                holders.add(pair)
                if pmc in pmcs:
                    pmcs[pmc].append(pair)
                else:
                    pmcs[pmc] = [pair]
                    new_pmcs += 1
                new_pairs += 1
        pmcset.overlaps_scanned += delta_overlaps
        pmcset.extend_profiles(new_profiles)
        span.set(pmcs=len(pmcs), new_pmcs=new_pmcs, overlaps=delta_overlaps)
    if obs.enabled:
        obs.count("stage2.overlaps", delta_overlaps)
        obs.count("stage2.pmcs", new_pmcs)
        obs.count("stage2.pairs", new_pairs)
        if tier_before is not None:
            # Tier traffic this delta contributed (store.stats is
            # cumulative across the store's lifetime).
            for key in ("hot_hits", "cold_probes", "evictions"):
                delta = store.stats[key] - tier_before[key]
                if delta:
                    obs.count(f"store.{key}", delta)
    return new_pmcs, new_pairs
