"""PMC identification — Algorithm 1 of the paper.

Index every profiled shared access of every sequential test, scan the
read/write overlaps, project both values onto the overlap window, and
classify pairs with differing projected values as PMCs.  Each PMC maps
to the (writer test, reader test) pairs that exhibit it — the raw
material for concurrent test generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.machine.accesses import project_value
from repro.obs import NULL_OBSERVER
from repro.pmc.index import AccessIndex
from repro.pmc.model import PMC, AccessKey
from repro.profile.profiler import TestProfile


@dataclass
class PmcSet:
    """The identified PMCs and the tests exhibiting each (the ``C`` map)."""

    pmcs: Dict[PMC, List[Tuple[int, int]]] = field(default_factory=dict)
    overlaps_scanned: int = 0
    profiles: Sequence[TestProfile] = ()
    # Lazily built test_id -> profile index: profile_by_id is called per
    # exemplar in the composition/inspection paths, and a linear scan
    # over all profiles there is quadratic in corpus size.
    _profile_index: Optional[Dict[int, TestProfile]] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.pmcs)

    def __iter__(self):
        return iter(self.pmcs)

    def pairs(self, pmc: PMC) -> List[Tuple[int, int]]:
        """(writer test id, reader test id) pairs exhibiting ``pmc``."""
        return self.pmcs[pmc]

    def all_pmcs(self) -> List[PMC]:
        return list(self.pmcs)

    def profile_by_id(self, test_id: int) -> TestProfile:
        index = self._profile_index
        if index is None:
            index = {}
            for profile in self.profiles:
                # First profile wins, like the linear scan it replaces.
                index.setdefault(profile.test_id, profile)
            self._profile_index = index
        try:
            return index[test_id]
        except KeyError:
            raise KeyError(test_id) from None


def identify_pmcs(profiles: Sequence[TestProfile], obs=NULL_OBSERVER) -> PmcSet:
    """Algorithm 1: index all tests, scan overlaps, classify PMCs."""
    with obs.span("stage2.identify", profiles=len(profiles)) as span:
        index = AccessIndex()
        for profile in profiles:
            index.insert_profile(profile)

        result = PmcSet(profiles=tuple(profiles))
        pmcs = result.pmcs
        seen_pairs: Dict[PMC, Set[Tuple[int, int]]] = {}

        for overlap in index.read_write_overlaps():
            result.overlaps_scanned += 1
            read, write = overlap.read, overlap.write
            read_value = project_value(
                read.addr, read.size, read.value, overlap.lo, overlap.hi
            )
            write_value = project_value(
                write.addr, write.size, write.value, overlap.lo, overlap.hi
            )
            if read_value == write_value:
                continue
            pmc = PMC(
                write=AccessKey.of(write),
                read=AccessKey.of(read),
                df_leader=read.df_leader,
            )
            pair = (overlap.write_test, overlap.read_test)
            holders = seen_pairs.setdefault(pmc, set())
            if pair not in holders:
                holders.add(pair)
                pmcs.setdefault(pmc, []).append(pair)
        span.set(pmcs=len(pmcs), overlaps=result.overlaps_scanned)
    if obs.enabled:
        obs.count("stage2.overlaps", result.overlaps_scanned)
        obs.count("stage2.pmcs", len(pmcs))
        obs.count("stage2.pairs", sum(len(pairs) for pairs in pmcs.values()))
    return result
