"""The PMC clustering strategies of Table 1.

A strategy is a clustering key plus a filter predicate over PMC
features: PMCs sharing a key land in one cluster; clusters whose PMCs
fail the filter are discarded.  S-INS is the paper's "strategy pair"
(one clustering by write instruction, one by read instruction): each PMC
contributes to two clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.pmc.model import PMC


@dataclass(frozen=True)
class PmcFeatures:
    """The eight features of Table 1 plus the double-fetch flag."""

    ins_w: str
    addr_w: int
    byte_w: int
    value_w: int
    ins_r: str
    addr_r: int
    byte_r: int
    value_r: int
    df_leader: bool


def pmc_features(pmc: PMC) -> PmcFeatures:
    """Extract the Table 1 feature vector from a PMC."""
    return PmcFeatures(
        ins_w=pmc.write.ins,
        addr_w=pmc.write.addr,
        byte_w=pmc.write.size,
        value_w=pmc.write.value,
        ins_r=pmc.read.ins,
        addr_r=pmc.read.addr,
        byte_r=pmc.read.size,
        value_r=pmc.read.value,
        df_leader=pmc.df_leader,
    )


KeyFn = Callable[[PmcFeatures], Tuple]
FilterFn = Callable[[PmcFeatures], bool]


@dataclass(frozen=True)
class ClusteringStrategy:
    """One row of Table 1: a name, clustering key(s) and a filter."""

    name: str
    keys: Tuple[KeyFn, ...]  # S-INS has two key functions; the rest one
    filter: FilterFn

    def cluster_keys(self, pmc: PMC) -> List[Tuple]:
        """The cluster key(s) this PMC belongs to (empty if filtered)."""
        features = pmc_features(pmc)
        if not self.filter(features):
            return []
        return [(i,) + key(features) for i, key in enumerate(self.keys)]

    def accepts(self, pmc: PMC) -> bool:
        """True when the PMC passes this strategy's filter predicate.

        The cheap membership probe behind the Stage-3 ``filtered``
        funnel counter: it evaluates the filter without building the
        cluster keys.
        """
        return self.filter(pmc_features(pmc))


def _true(_: PmcFeatures) -> bool:
    return True


_CH_KEY: KeyFn = lambda f: (f.ins_w, f.addr_w, f.byte_w, f.ins_r, f.addr_r, f.byte_r)

S_FULL = ClusteringStrategy(
    name="S-FULL",
    keys=(
        lambda f: (
            f.ins_w,
            f.addr_w,
            f.byte_w,
            f.value_w,
            f.ins_r,
            f.addr_r,
            f.byte_r,
            f.value_r,
        ),
    ),
    filter=_true,
)

S_CH = ClusteringStrategy(name="S-CH", keys=(_CH_KEY,), filter=_true)

S_CH_NULL = ClusteringStrategy(
    name="S-CH-NULL",
    keys=(_CH_KEY,),
    filter=lambda f: f.value_w == 0,
)

S_CH_UNALIGNED = ClusteringStrategy(
    name="S-CH-UNALIGNED",
    keys=(_CH_KEY,),
    filter=lambda f: f.addr_r != f.addr_w or f.byte_r != f.byte_w,
)

S_CH_DOUBLE = ClusteringStrategy(
    name="S-CH-DOUBLE",
    keys=(_CH_KEY,),
    filter=lambda f: f.df_leader,
)

S_INS = ClusteringStrategy(
    name="S-INS",
    keys=(lambda f: (f.ins_w,), lambda f: (f.ins_r,)),
    filter=_true,
)

S_INS_PAIR = ClusteringStrategy(
    name="S-INS-PAIR",
    keys=(lambda f: (f.ins_w, f.ins_r),),
    filter=_true,
)

S_MEM = ClusteringStrategy(
    name="S-MEM",
    keys=(lambda f: (f.addr_w, f.byte_w, f.addr_r, f.byte_r),),
    filter=_true,
)

ALL_STRATEGIES: Tuple[ClusteringStrategy, ...] = (
    S_FULL,
    S_CH,
    S_CH_NULL,
    S_CH_UNALIGNED,
    S_CH_DOUBLE,
    S_INS,
    S_INS_PAIR,
    S_MEM,
)

STRATEGIES_BY_NAME: Dict[str, ClusteringStrategy] = {
    strategy.name: strategy for strategy in ALL_STRATEGIES
}
