"""The ordered nested access index of Algorithm 1 (the ``A`` structure).

As in section 4.2.1: the outer index orders accesses by range start
address; for one start address, a nested index orders them by range
length; for one range, accesses are indexed by instruction address.
``read_write_overlaps()`` scans the index and yields every read/write
pair with intersecting ranges — without the naive quadratic scan over
all access pairs, because a read only probes the bounded start-address
window that can still overlap it.

The index is *incremental*: every insert is stamped with a monotone
sequence number, and ``read_write_overlaps_since(mark)`` yields exactly
the overlaps involving at least one access inserted at or after
``mark`` (``mark()`` snapshots the current position).  A continuously
running campaign (§4.3, §6) profiles new sequential tests round after
round and re-classifies only the delta instead of rescanning the whole
corpus; the union of the per-round delta scans provably equals the full
scan, because each overlapping (read, write) pair is yielded exactly
once — in the round where its *later* access arrived.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.profile.profiler import ProfiledAccess

# The largest access the kernel context can emit (one word-sized chunk).
MAX_ACCESS_SIZE = 8


@dataclass(frozen=True, slots=True)
class Overlap:
    """One read/write pair with intersecting memory ranges."""

    write: ProfiledAccess
    write_test: int
    read: ProfiledAccess
    read_test: int
    lo: int
    hi: int


class _Bucket:
    """All accesses of one kind sharing a start address.

    Nested ordering: by range length, then instruction address; each
    (length, ins) slot keeps the distinct values seen and the tests that
    produced them, each stamped with its insertion sequence number.
    """

    __slots__ = ("entries",)

    def __init__(self):
        # (size, ins) -> {value -> [(access, test_id, seq), ...]}
        self.entries: Dict[
            Tuple[int, str], Dict[int, List[Tuple[ProfiledAccess, int, int]]]
        ] = {}

    def insert(self, access: ProfiledAccess, test_id: int, seq: int) -> None:
        # .get instead of setdefault: setdefault allocates a fresh
        # default dict/list on every call, hit or miss; this path runs
        # once per profiled access of every test.
        entries = self.entries
        key = (access.size, access.ins)
        slot = entries.get(key)
        if slot is None:
            slot = entries[key] = {}
        holders = slot.get(access.value)
        if holders is None:
            slot[access.value] = [(access, test_id, seq)]
        else:
            holders.append((access, test_id, seq))

    def iter_entries(self) -> Iterator[Tuple[ProfiledAccess, int, int]]:
        for by_value in self.entries.values():
            for holders in by_value.values():
                yield from holders


class AccessIndex:
    """Ordered nested index over profiled accesses of one kind per side."""

    def __init__(self):
        self._writes: Dict[int, _Bucket] = {}
        self._reads: Dict[int, _Bucket] = {}
        self._write_starts: List[int] = []
        self._read_starts: List[int] = []
        self._starts_dirty = False
        self._read_starts_dirty = False
        # Monotone insertion stamp: the delta scan's notion of "new".
        self._seq = 0
        # Running totals, maintained on insert so counts() is O(1)
        # instead of a full re-iteration of every bucket.
        self._nwrites = 0
        self._nreads = 0

    # -- construction -------------------------------------------------------

    def insert(self, access: ProfiledAccess, test_id: int) -> None:
        """Index one profiled access of one test."""
        if access.is_write:
            side = self._writes
            self._nwrites += 1
        else:
            side = self._reads
            self._nreads += 1
        bucket = side.get(access.addr)
        if bucket is None:
            bucket = side[access.addr] = _Bucket()
            if access.is_write:
                self._starts_dirty = True
            else:
                self._read_starts_dirty = True
        bucket.insert(access, test_id, self._seq)
        self._seq += 1

    def insert_profile(self, profile) -> None:
        """Index every access of a test profile."""
        for access in profile.accesses:
            self.insert(access, profile.test_id)

    def mark(self) -> int:
        """Watermark for :meth:`read_write_overlaps_since`.

        Snapshot before inserting a round's new profiles; accesses
        inserted afterwards count as "new" relative to the mark.
        """
        return self._seq

    # -- the overlap scan ------------------------------------------------------

    def read_write_overlaps(self) -> Iterator[Overlap]:
        """Yield every read/write pair whose ranges intersect.

        For each read at [a, a+s), candidate writes start in
        (a - MAX_ACCESS_SIZE, a + s): a bounded window found by bisection
        over the ordered write start addresses.
        """
        return self.read_write_overlaps_since(0)

    def read_write_overlaps_since(self, mark: int) -> Iterator[Overlap]:
        """Yield every overlap involving at least one access with
        insertion stamp ``>= mark``.

        Two passes: new reads against *all* writes, then new writes
        against *old* reads only (new-read/new-write pairs were already
        yielded by the first pass), so each qualifying pair appears
        exactly once.  With ``mark == 0`` the first pass degenerates to
        the full scan — in the identical iteration order — and the
        second pass is skipped entirely.
        """
        self._refresh_starts()
        starts = self._write_starts
        writes = self._writes
        for read_start, read_bucket in self._reads.items():
            for read, read_test, read_seq in read_bucket.iter_entries():
                if read_seq < mark:
                    continue
                lo_bound = read.addr - MAX_ACCESS_SIZE + 1
                first = bisect.bisect_left(starts, lo_bound)
                last = bisect.bisect_left(starts, read.end)
                for i in range(first, last):
                    write_bucket = writes[starts[i]]
                    for write, write_test, _ in write_bucket.iter_entries():
                        lo = max(write.addr, read.addr)
                        hi = min(write.end, read.end)
                        if lo < hi:
                            yield Overlap(
                                write=write,
                                write_test=write_test,
                                read=read,
                                read_test=read_test,
                                lo=lo,
                                hi=hi,
                            )
        if mark <= 0:
            return
        self._refresh_read_starts()
        rstarts = self._read_starts
        reads = self._reads
        for write_start, write_bucket in self._writes.items():
            for write, write_test, write_seq in write_bucket.iter_entries():
                if write_seq < mark:
                    continue
                lo_bound = write.addr - MAX_ACCESS_SIZE + 1
                first = bisect.bisect_left(rstarts, lo_bound)
                last = bisect.bisect_left(rstarts, write.end)
                for i in range(first, last):
                    read_bucket = reads[rstarts[i]]
                    for read, read_test, read_seq in read_bucket.iter_entries():
                        if read_seq >= mark:
                            continue  # already paired in the first pass
                        lo = max(write.addr, read.addr)
                        hi = min(write.end, read.end)
                        if lo < hi:
                            yield Overlap(
                                write=write,
                                write_test=write_test,
                                read=read,
                                read_test=read_test,
                                lo=lo,
                                hi=hi,
                            )

    # -- stats -------------------------------------------------------------------

    def counts(self) -> Tuple[int, int]:
        """(number of indexed writes, number of indexed reads) — O(1)."""
        return self._nwrites, self._nreads

    def _refresh_starts(self) -> None:
        if self._starts_dirty or len(self._write_starts) != len(self._writes):
            self._write_starts = sorted(self._writes)
            self._starts_dirty = False

    def _refresh_read_starts(self) -> None:
        if self._read_starts_dirty or len(self._read_starts) != len(self._reads):
            self._read_starts = sorted(self._reads)
            self._read_starts_dirty = False
