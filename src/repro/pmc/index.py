"""The ordered nested access index of Algorithm 1 (the ``A`` structure).

As in section 4.2.1: the outer index orders accesses by range start
address; for one start address, a nested index orders them by range
length; for one range, accesses are indexed by instruction address.
``read_write_overlaps()`` scans the index and yields every read/write
pair with intersecting ranges — without the naive quadratic scan over
all access pairs, because a read only probes the bounded start-address
window that can still overlap it.

The index is *incremental*: every insert is stamped with a monotone
sequence number, and ``read_write_overlaps_since(mark)`` yields exactly
the overlaps involving at least one access inserted at or after
``mark`` (``mark()`` snapshots the current position).  A continuously
running campaign (§4.3, §6) profiles new sequential tests round after
round and re-classifies only the delta instead of rescanning the whole
corpus; the union of the per-round delta scans provably equals the full
scan, because each overlapping (read, write) pair is yielded exactly
once — in the round where its *later* access arrived.

The index is also *tiered* (DESIGN.md §2.14): constructed with a
``store=`` (or ``spill_dir=``) it writes every insert through to an
:class:`~repro.pmc.store.AccessStore`, and with ``hot_capacity=`` it
evicts least-recently-touched buckets from RAM once the hot tier
exceeds that many records.  Evicted buckets leave their key in the
outer dict (a sentinel preserves outer iteration order — the property
the golden-equivalence tests pin); a probe of a cold bucket
reconstructs it by replaying the store's records in seq order, which
reproduces the exact nested first-occurrence iteration order of the
in-memory bucket.  A spilled scan therefore yields overlaps in the
bit-identical order of an unspilled one.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.profile.profiler import ProfiledAccess

# The largest access the kernel context can emit (one word-sized chunk).
MAX_ACCESS_SIZE = 8

#: Reconstructed cold buckets kept in RAM between probes.
DEFAULT_COLD_CACHE = 64

#: Outer-dict slot of a bucket whose records live only in the store.
#: A sentinel (not deletion) so the dict keeps the bucket's position in
#: insertion order — outer scan order must survive eviction.
_COLD = object()

_MUTATED = "index mutated during overlap scan"


@dataclass(frozen=True, slots=True)
class Overlap:
    """One read/write pair with intersecting memory ranges."""

    write: ProfiledAccess
    write_test: int
    read: ProfiledAccess
    read_test: int
    lo: int
    hi: int


class _Bucket:
    """All accesses of one kind sharing a start address.

    Nested ordering: by range length, then instruction address; each
    (length, ins) slot keeps the distinct values seen and the tests that
    produced them, each stamped with its insertion sequence number.
    """

    __slots__ = ("entries", "nrecords")

    def __init__(self):
        # (size, ins) -> {value -> [(access, test_id, seq), ...]}
        self.entries: Dict[
            Tuple[int, str], Dict[int, List[Tuple[ProfiledAccess, int, int]]]
        ] = {}
        self.nrecords = 0

    def insert(self, access: ProfiledAccess, test_id: int, seq: int) -> None:
        # .get instead of setdefault: setdefault allocates a fresh
        # default dict/list on every call, hit or miss; this path runs
        # once per profiled access of every test.
        entries = self.entries
        key = (access.size, access.ins)
        slot = entries.get(key)
        if slot is None:
            slot = entries[key] = {}
        holders = slot.get(access.value)
        if holders is None:
            slot[access.value] = [(access, test_id, seq)]
        else:
            holders.append((access, test_id, seq))
        self.nrecords += 1

    def iter_entries(self) -> Iterator[Tuple[ProfiledAccess, int, int]]:
        for by_value in self.entries.values():
            for holders in by_value.values():
                yield from holders


class AccessIndex:
    """Ordered nested index over profiled accesses of one kind per side.

    With no arguments the index is fully in-memory, exactly as before.
    ``store=`` (an :class:`~repro.pmc.store.AccessStore`) or
    ``spill_dir=`` (a directory; a store is opened there) turns on
    write-through spilling, and ``hot_capacity=`` bounds the number of
    records the hot tier may hold before least-recently-touched buckets
    are evicted to their segments.
    """

    def __init__(
        self,
        store=None,
        spill_dir: Optional[str] = None,
        hot_capacity: Optional[int] = None,
        cold_cache_size: int = DEFAULT_COLD_CACHE,
    ):
        if store is None and spill_dir is not None:
            from repro.pmc.store import AccessStore

            store = AccessStore.open(spill_dir)
        if hot_capacity is not None and store is None:
            raise ValueError("hot_capacity requires a store (or spill_dir)")
        self.store = store
        self.hot_capacity = hot_capacity
        self._writes: Dict[int, object] = {}
        self._reads: Dict[int, object] = {}
        self._write_starts: List[int] = []
        self._read_starts: List[int] = []
        self._starts_dirty = False
        self._read_starts_dirty = False
        # Monotone insertion stamp: the delta scan's notion of "new".
        self._seq = 0
        # Bumped on every insert; a running overlap scan that observes a
        # bump raises instead of silently using stale start lists.
        self._generation = 0
        # Running totals, maintained on insert so counts() is O(1)
        # instead of a full re-iteration of every bucket.
        self._nwrites = 0
        self._nreads = 0
        # Spill bookkeeping (all empty/unused in pure-memory mode):
        # hot-tier LRU of (is_write, addr) -> _Bucket, total hot records,
        # per-(side, addr) max seq zone map so delta scans can skip cold
        # buckets with no new records without loading them, and a small
        # cache of reconstructed cold buckets.
        self._hot_lru: "OrderedDict[Tuple[bool, int], _Bucket]" = OrderedDict()
        self._hot_records = 0
        self._write_maxseq: Dict[int, int] = {}
        self._read_maxseq: Dict[int, int] = {}
        self._cold_cache: "OrderedDict[Tuple[bool, int], _Bucket]" = OrderedDict()
        self._cold_cache_size = max(1, cold_cache_size)

    # -- construction -------------------------------------------------------

    def insert(self, access: ProfiledAccess, test_id: int) -> None:
        """Index one profiled access of one test.

        Raises ``ValueError`` for sizes outside ``1..MAX_ACCESS_SIZE``:
        the overlap scan's bisect window assumes no access is wider than
        :data:`MAX_ACCESS_SIZE`, so an oversized access would be indexed
        but its overlaps silently never scanned, and a zero/negative
        size can never overlap anything yet would still bump counts().
        """
        if not 0 < access.size <= MAX_ACCESS_SIZE:
            raise ValueError(
                f"access size {access.size} at {access.addr:#x} is outside "
                f"1..{MAX_ACCESS_SIZE}; the overlap scan window cannot see it"
            )
        self._generation += 1
        is_write = access.is_write
        if is_write:
            side = self._writes
            self._nwrites += 1
        else:
            side = self._reads
            self._nreads += 1
        bucket = side.get(access.addr)
        if bucket is None:
            bucket = side[access.addr] = _Bucket()
            if is_write:
                self._starts_dirty = True
            else:
                self._read_starts_dirty = True
            if self.store is not None:
                self._hot_lru[(is_write, access.addr)] = bucket
        elif bucket is _COLD:
            bucket = self._rehydrate(is_write, access.addr)
        seq = self._seq
        bucket.insert(access, test_id, seq)
        self._seq = seq + 1
        if self.store is not None:
            self.store.append(access, test_id, seq)
            if is_write:
                self._write_maxseq[access.addr] = seq
            else:
                self._read_maxseq[access.addr] = seq
            self._hot_records += 1
            self._hot_lru.move_to_end((is_write, access.addr))
            if self.hot_capacity is not None and self._hot_records > self.hot_capacity:
                self._evict()

    def insert_profile(self, profile) -> None:
        """Index every access of a test profile."""
        for access in profile.accesses:
            self.insert(access, profile.test_id)

    def mark(self) -> int:
        """Watermark for :meth:`read_write_overlaps_since`.

        Snapshot before inserting a round's new profiles; accesses
        inserted afterwards count as "new" relative to the mark.
        """
        return self._seq

    # -- the spill tier -----------------------------------------------------

    def _evict(self) -> None:
        """Drop least-recently-touched hot buckets down to capacity.

        Write-through makes eviction free: every record of the bucket is
        already owned by the store (durable segment or pending buffer),
        so the hot copy is simply dropped and its outer-dict slot turns
        into the cold sentinel.  At least one bucket — the one just
        inserted into — always stays hot.
        """
        stats = self.store.stats
        while self._hot_records > self.hot_capacity and len(self._hot_lru) > 1:
            (is_write, addr), bucket = self._hot_lru.popitem(last=False)
            side = self._writes if is_write else self._reads
            side[addr] = _COLD
            self._hot_records -= bucket.nrecords
            stats["evictions"] += 1

    def _rehydrate(self, is_write: bool, addr: int) -> _Bucket:
        """Bring a cold bucket back hot before inserting into it.

        Inserting into a partial bucket would make later probes miss the
        spilled prefix, so the invariant is: hot buckets are complete.
        """
        bucket = self._cold_cache.pop((is_write, addr), None)
        if bucket is None:
            bucket = self._build_bucket(is_write, addr)
        side = self._writes if is_write else self._reads
        side[addr] = bucket
        self._hot_lru[(is_write, addr)] = bucket
        self._hot_records += bucket.nrecords
        return bucket

    def _build_bucket(self, is_write: bool, addr: int) -> _Bucket:
        """Reconstruct one bucket from the store.

        Records come back in seq (= original insertion) order, so
        replaying them through ``_Bucket.insert`` reproduces the exact
        nested first-occurrence iteration order the in-memory bucket
        had — the property that keeps spilled scans bit-identical.

        Records at or past the index's own insertion stamp are *future*
        records: a resumed campaign replays its insert stream against a
        store whose durable extent already covers later rounds, and a
        bucket probed mid-replay must contain exactly what the index has
        re-inserted so far, not what the killed run eventually spilled.
        """
        bucket = _Bucket()
        seq_limit = self._seq
        for access, test_id, seq in self.store.load_bucket(is_write, addr):
            if seq >= seq_limit:
                break  # seq-ordered: everything after is future too
            bucket.insert(access, test_id, seq)
        return bucket

    def _cold_bucket(self, is_write: bool, addr: int) -> _Bucket:
        """A probe of an evicted bucket: cold-cache hit or store load."""
        key = (is_write, addr)
        cache = self._cold_cache
        bucket = cache.get(key)
        if bucket is not None:
            cache.move_to_end(key)
            return bucket
        bucket = self._build_bucket(is_write, addr)
        cache[key] = bucket
        while len(cache) > self._cold_cache_size:
            cache.popitem(last=False)
        return bucket

    def flush(self) -> None:
        """Flush write-through buffers to the store (no-op in memory mode)."""
        if self.store is not None:
            self.store.flush()

    def checkpoint(self) -> str:
        """Make the spilled state durable; returns the manifest digest.

        Returns ``""`` in pure-memory mode so round records stay
        byte-identical to pre-spill journals.
        """
        if self.store is None:
            return ""
        return self.store.checkpoint(self._seq)

    # -- the overlap scan ------------------------------------------------------

    def read_write_overlaps(self) -> Iterator[Overlap]:
        """Yield every read/write pair whose ranges intersect.

        For each read at [a, a+s), candidate writes start in
        (a - MAX_ACCESS_SIZE, a + s): a bounded window found by bisection
        over the ordered write start addresses.
        """
        return self.read_write_overlaps_since(0)

    def read_write_overlaps_since(self, mark: int) -> Iterator[Overlap]:
        """Yield every overlap involving at least one access with
        insertion stamp ``>= mark``.

        Two passes: new reads against *all* writes, then new writes
        against *old* reads only (new-read/new-write pairs were already
        yielded by the first pass), so each qualifying pair appears
        exactly once.  With ``mark == 0`` the first pass degenerates to
        the full scan — in the identical iteration order — and the
        second pass is skipped entirely.

        The generator snapshots the bisect start lists; an ``insert``
        while the scan is live would silently probe a stale snapshot, so
        it is detected via a generation counter and raises
        ``RuntimeError``, matching dict-iteration semantics.
        """
        self._refresh_starts()
        gen = self._generation
        spilled = self.store is not None
        stats = self.store.stats if spilled else None
        starts = self._write_starts
        writes = self._writes
        for read_start, read_bucket in self._reads.items():
            if read_bucket is _COLD:
                if self._read_maxseq.get(read_start, -1) < mark:
                    continue  # zone map: no new reads spilled here
                stats["cold_probes"] += 1
                read_bucket = self._cold_bucket(False, read_start)
            for read, read_test, read_seq in read_bucket.iter_entries():
                if read_seq < mark:
                    continue
                lo_bound = read.addr - MAX_ACCESS_SIZE + 1
                first = bisect.bisect_left(starts, lo_bound)
                last = bisect.bisect_left(starts, read.end)
                for i in range(first, last):
                    write_bucket = writes[starts[i]]
                    if spilled:
                        if write_bucket is _COLD:
                            stats["cold_probes"] += 1
                            write_bucket = self._cold_bucket(True, starts[i])
                        else:
                            stats["hot_hits"] += 1
                    for write, write_test, _ in write_bucket.iter_entries():
                        lo = max(write.addr, read.addr)
                        hi = min(write.end, read.end)
                        if lo < hi:
                            yield Overlap(
                                write=write,
                                write_test=write_test,
                                read=read,
                                read_test=read_test,
                                lo=lo,
                                hi=hi,
                            )
                            # The generator only resumes here (or at the
                            # second pass's yield), so this is the one
                            # place a consumer's insert can first be
                            # seen — before it corrupts the scan.
                            if self._generation != gen:
                                raise RuntimeError(_MUTATED)
        if mark <= 0:
            return
        self._refresh_read_starts()
        rstarts = self._read_starts
        reads = self._reads
        for write_start, write_bucket in self._writes.items():
            if write_bucket is _COLD:
                if self._write_maxseq.get(write_start, -1) < mark:
                    continue  # zone map: no new writes spilled here
                stats["cold_probes"] += 1
                write_bucket = self._cold_bucket(True, write_start)
            for write, write_test, write_seq in write_bucket.iter_entries():
                if write_seq < mark:
                    continue
                lo_bound = write.addr - MAX_ACCESS_SIZE + 1
                first = bisect.bisect_left(rstarts, lo_bound)
                last = bisect.bisect_left(rstarts, write.end)
                for i in range(first, last):
                    read_bucket = reads[rstarts[i]]
                    if spilled:
                        if read_bucket is _COLD:
                            stats["cold_probes"] += 1
                            read_bucket = self._cold_bucket(False, rstarts[i])
                        else:
                            stats["hot_hits"] += 1
                    for read, read_test, read_seq in read_bucket.iter_entries():
                        if read_seq >= mark:
                            continue  # already paired in the first pass
                        lo = max(write.addr, read.addr)
                        hi = min(write.end, read.end)
                        if lo < hi:
                            yield Overlap(
                                write=write,
                                write_test=write_test,
                                read=read,
                                read_test=read_test,
                                lo=lo,
                                hi=hi,
                            )
                            if self._generation != gen:
                                raise RuntimeError(_MUTATED)

    # -- stats -------------------------------------------------------------------

    def counts(self) -> Tuple[int, int]:
        """(number of indexed writes, number of indexed reads) — O(1)."""
        return self._nwrites, self._nreads

    def tier_counts(self) -> Tuple[int, int]:
        """(hot-tier records, spill-eligible records) — O(1).

        In pure-memory mode everything is "hot": returns
        ``(total, total)``.
        """
        total = self._nwrites + self._nreads
        if self.store is None:
            return total, total
        return self._hot_records, total

    def _refresh_starts(self) -> None:
        if self._starts_dirty or len(self._write_starts) != len(self._writes):
            self._write_starts = sorted(self._writes)
            self._starts_dirty = False

    def _refresh_read_starts(self) -> None:
        if self._read_starts_dirty or len(self._read_starts) != len(self._reads):
            self._read_starts = sorted(self._reads)
            self._read_starts_dirty = False
