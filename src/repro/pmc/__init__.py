"""Potential memory communication (PMC) analysis — the paper's core.

A PMC is a pair of a write access (from one test's sequential profile)
and a read access (from another's) whose memory ranges overlap and whose
values, projected onto the overlap, differ: a data-flow channel that
*may* occur when the two tests run concurrently (section 2.2).

This package implements Algorithm 1 (identification over an ordered
nested access index), the eight clustering strategies of Table 1, and
the uncommon-first exemplar selection of section 4.3.
"""

from repro.pmc.clustering import (
    ALL_STRATEGIES,
    STRATEGIES_BY_NAME,
    ClusteringStrategy,
    pmc_features,
)
from repro.pmc.composition import (
    iterative_exemplars,
    subdivide_clusters,
    subdivided_exemplars,
)
from repro.pmc.identify import PmcSet, identify_pmcs
from repro.pmc.index import AccessIndex, Overlap
from repro.pmc.model import PMC, AccessKey
from repro.pmc.selection import cluster_pmcs, ordered_exemplars, select_exemplars

__all__ = [
    "ALL_STRATEGIES",
    "STRATEGIES_BY_NAME",
    "ClusteringStrategy",
    "pmc_features",
    "PmcSet",
    "identify_pmcs",
    "AccessIndex",
    "Overlap",
    "PMC",
    "AccessKey",
    "cluster_pmcs",
    "ordered_exemplars",
    "select_exemplars",
    "iterative_exemplars",
    "subdivide_clusters",
    "subdivided_exemplars",
]
