"""PMC data model.

A PMC's identity follows Algorithm 1: the read key and the write key,
each a (memory range, instruction address, value) triple.  The
``df_leader`` flag carries the double-fetch annotation from profiling
into the S-CH-DOUBLE clustering filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.profile.profiler import ProfiledAccess


@dataclass(frozen=True, slots=True)
class AccessKey:
    """One side of a PMC: (mem range, instruction, value)."""

    addr: int
    size: int
    ins: str
    value: int

    @classmethod
    def of(cls, access: ProfiledAccess) -> "AccessKey":
        return cls(addr=access.addr, size=access.size, ins=access.ins, value=access.value)

    @property
    def end(self) -> int:
        return self.addr + self.size


@dataclass(frozen=True, slots=True)
class PMC:
    """A potential memory communication: write key + read key."""

    write: AccessKey
    read: AccessKey
    df_leader: bool = False

    @property
    def overlap(self) -> Tuple[int, int]:
        """The common byte window [lo, hi) of the two ranges."""
        lo = max(self.write.addr, self.read.addr)
        hi = min(self.write.end, self.read.end)
        return (lo, hi)

    @property
    def unaligned(self) -> bool:
        """True when the two ranges are not identical (S-CH-UNALIGNED)."""
        return self.write.addr != self.read.addr or self.write.size != self.read.size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PMC(W {self.write.ins} [{self.write.addr:#x}+{self.write.size}]="
            f"{self.write.value:#x} -> R {self.read.ins} "
            f"[{self.read.addr:#x}+{self.read.size}]={self.read.value:#x})"
        )
