"""Strategy composition (section 4.3, final paragraph).

Two composition modes the paper describes:

* **Iterative application** — "Choose predicate A, test one exemplar from
  each A-cluster, then choose predicate B, test one exemplar from each
  B-cluster excluding those tested before, etc."
* **Subdivision** — "it is possible to use one strategy to subdivide
  large clusters produced by another": clusters above a size threshold
  are re-clustered with a finer strategy, yielding multiple exemplars
  from behaviours a single coarse cluster would have collapsed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.pmc.clustering import ClusteringStrategy
from repro.pmc.model import PMC
from repro.pmc.selection import SelectionHistory, cluster_pmcs


def iterative_exemplars(
    pmcs: Sequence[PMC],
    strategies: Sequence[ClusteringStrategy],
    rng: random.Random,
    limit_per_strategy: Optional[int] = None,
    history: Optional[SelectionHistory] = None,
) -> List[Tuple[str, PMC]]:
    """Apply strategies in order, never re-selecting a PMC.

    Returns (strategy name, exemplar) pairs in testing order: all of
    strategy A's exemplars (uncommon-first), then strategy B's over the
    remaining PMCs, and so on.

    With a ``history`` (round-based campaigns) the "never re-select"
    rule extends across rounds: PMCs tested in earlier rounds are
    excluded up front, clusters already drawn from under the same
    strategy are skipped, and selections made here are recorded back —
    so a composed strategy schedule can run round after round without
    repeating work, exactly the §4.3 loop.
    """
    chosen: List[Tuple[str, PMC]] = []
    taken: Set[PMC] = set(history.pmcs) if history is not None else set()
    for strategy in strategies:
        clusters = cluster_pmcs(pmcs, strategy)
        items = sorted(clusters.items(), key=lambda kv: (len(kv[1]), repr(kv[0])))
        count = 0
        for key, members in items:
            if history is not None and history.tested_cluster(strategy.name, key):
                continue
            candidates = [p for p in members if p not in taken]
            if not candidates:
                continue
            exemplar = rng.choice(candidates)
            taken.add(exemplar)
            chosen.append((strategy.name, exemplar))
            if history is not None:
                history.record(strategy.name, key, exemplar)
            count += 1
            if limit_per_strategy is not None and count >= limit_per_strategy:
                break
    return chosen


def subdivide_clusters(
    pmcs: Sequence[PMC],
    outer: ClusteringStrategy,
    inner: ClusteringStrategy,
    threshold: int,
) -> Dict[Tuple, List[PMC]]:
    """Re-cluster outer clusters larger than ``threshold`` with ``inner``.

    The result maps composite keys to members: small outer clusters keep
    their key ``("outer", key)``; large ones split into
    ``("outer+inner", outer_key, inner_key)`` sub-clusters.  PMCs of a
    large cluster that the inner strategy filters out stay together in a
    residual ``("outer-rest", key)`` cluster, so nothing is lost.
    """
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    out: Dict[Tuple, List[PMC]] = {}
    for key, members in cluster_pmcs(pmcs, outer).items():
        if len(members) <= threshold:
            out[("outer", key)] = list(members)
            continue
        subdivided = cluster_pmcs(members, inner)
        placed: Set[int] = set()
        for inner_key, inner_members in subdivided.items():
            out[("outer+inner", key, inner_key)] = list(inner_members)
            placed.update(id(p) for p in inner_members)
        rest = [p for p in members if id(p) not in placed]
        if rest:
            out[("outer-rest", key)] = rest
    return out


def subdivided_exemplars(
    pmcs: Sequence[PMC],
    outer: ClusteringStrategy,
    inner: ClusteringStrategy,
    threshold: int,
    rng: random.Random,
    limit: Optional[int] = None,
) -> List[PMC]:
    """Uncommon-first exemplars over the subdivided cluster map."""
    clusters = subdivide_clusters(pmcs, outer, inner, threshold)
    items = sorted(clusters.items(), key=lambda kv: (len(kv[1]), repr(kv[0])))
    chosen: List[PMC] = []
    taken: Set[PMC] = set()
    for _, members in items:
        candidates = [p for p in members if p not in taken]
        if not candidates:
            continue
        exemplar = rng.choice(candidates)
        taken.add(exemplar)
        chosen.append(exemplar)
        if limit is not None and len(chosen) >= limit:
            break
    return chosen
