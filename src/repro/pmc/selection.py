"""PMC selection: clustering, uncommon-first ordering, exemplar draws.

Section 4.3: cluster all PMCs under a strategy, count cluster
cardinalities, and test one randomly drawn exemplar per cluster from the
*least* to the *most* populous cluster — uncommon communication first.
``Random S-INS-PAIR`` (Table 3) keeps the per-cluster exemplar draw but
randomises the cluster order instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import NULL_OBSERVER
from repro.pmc.clustering import ClusteringStrategy
from repro.pmc.model import PMC


@dataclass
class SelectionHistory:
    """Cross-round memory of what has already been tested (§4.3).

    The paper's continuous deployment selects exemplars "from each
    cluster *excluding those tested before*": a cluster whose key was
    drawn from in an earlier round is skipped (until a later strategy
    change gives it a new key), and a PMC that was an exemplar before is
    never a candidate again.  Cluster keys are namespaced by strategy
    name, so switching strategies between rounds re-opens the space the
    way iterative composition prescribes.
    """

    clusters: Set[Tuple] = field(default_factory=set)
    pmcs: Set[PMC] = field(default_factory=set)

    def record(self, strategy_name: str, key: Tuple, pmc: PMC) -> None:
        self.clusters.add((strategy_name, key))
        self.pmcs.add(pmc)

    def tested_cluster(self, strategy_name: str, key: Tuple) -> bool:
        return (strategy_name, key) in self.clusters

    def __len__(self) -> int:
        return len(self.pmcs)


def cluster_pmcs(
    pmcs: Sequence[PMC], strategy: ClusteringStrategy
) -> Dict[Tuple, List[PMC]]:
    """Group PMCs by the strategy's cluster key(s), applying its filter."""
    clusters: Dict[Tuple, List[PMC]] = {}
    for pmc in pmcs:
        for key in strategy.cluster_keys(pmc):
            clusters.setdefault(key, []).append(pmc)
    return clusters


def ordered_exemplars(
    pmcs: Sequence[PMC],
    strategy: ClusteringStrategy,
    rng: random.Random,
    random_order: bool = False,
    limit: Optional[int] = None,
    obs=NULL_OBSERVER,
    history: Optional[SelectionHistory] = None,
) -> List[PMC]:
    """One exemplar per cluster, uncommon (smallest) clusters first.

    With ``random_order`` the cluster order is shuffled instead (the
    Random S-INS-PAIR baseline).  A PMC already chosen as another
    cluster's exemplar is skipped, so the result has no duplicates (this
    matters for S-INS, where every PMC sits in two clusters).

    With a ``history`` (round-based campaigns), clusters tested in an
    earlier round are skipped outright, previously tested PMCs are
    removed from the candidate pools, and every exemplar chosen here is
    recorded back into the history — the §4.3 "excluding those tested
    before" rule.  An *empty* history filters nothing, so round one is
    bit-identical to the history-free batch path.

    Stage-3 funnel quantities — clusters kept, PMCs dropped by the
    strategy filter, clusters deduplicated away because their candidates
    were already exemplars elsewhere, clusters skipped as already tested
    — land on ``obs``.
    """
    with obs.span("stage3.select", strategy=strategy.name) as span:
        clusters = cluster_pmcs(pmcs, strategy)
        items = list(clusters.items())
        if random_order:
            # Stable order first so the shuffle is reproducible from the seed.
            items.sort(key=lambda kv: repr(kv[0]))
            rng.shuffle(items)
        else:
            items.sort(key=lambda kv: (len(kv[1]), repr(kv[0])))

        chosen: List[PMC] = []
        taken = set()
        deduped = 0
        skipped_tested = 0
        for key, members in items:
            if history is not None and history.tested_cluster(strategy.name, key):
                skipped_tested += 1
                continue
            if history is not None:
                tested = history.pmcs
                candidates = [
                    p for p in members if p not in taken and p not in tested
                ]
            else:
                candidates = [p for p in members if p not in taken]
            if not candidates:
                deduped += 1
                continue
            exemplar = rng.choice(candidates)
            taken.add(exemplar)
            chosen.append(exemplar)
            if history is not None:
                history.record(strategy.name, key, exemplar)
            if limit is not None and len(chosen) >= limit:
                break
        span.set(
            clusters=len(clusters),
            exemplars=len(chosen),
            deduped=deduped,
            tested_before=skipped_tested,
        )
    if obs.enabled:
        obs.count("stage3.clusters", len(clusters))
        obs.count("stage3.filtered", sum(1 for p in pmcs if not strategy.accepts(p)))
        obs.count("stage3.duplicates", deduped)
        obs.count("stage3.tested_before", skipped_tested)
        obs.count("stage3.exemplars", len(chosen))
    return chosen


def select_exemplars(
    pmcs: Sequence[PMC],
    strategy: ClusteringStrategy,
    seed: int = 0,
    random_order: bool = False,
    limit: Optional[int] = None,
) -> List[PMC]:
    """Convenience wrapper seeding its own RNG."""
    return ordered_exemplars(
        pmcs, strategy, random.Random(seed), random_order=random_order, limit=limit
    )


def cluster_stats(
    pmcs: Sequence[PMC], strategy: ClusteringStrategy
) -> Tuple[int, int]:
    """(number of clusters == exemplar PMCs, number of clustered PMCs)."""
    clusters = cluster_pmcs(pmcs, strategy)
    members = sum(len(v) for v in clusters.values())
    return len(clusters), members
