"""PMC selection: clustering, uncommon-first ordering, exemplar draws.

Section 4.3: cluster all PMCs under a strategy, count cluster
cardinalities, and test one randomly drawn exemplar per cluster from the
*least* to the *most* populous cluster — uncommon communication first.
``Random S-INS-PAIR`` (Table 3) keeps the per-cluster exemplar draw but
randomises the cluster order instead.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import NULL_OBSERVER
from repro.pmc.clustering import ClusteringStrategy
from repro.pmc.model import PMC


def cluster_pmcs(
    pmcs: Sequence[PMC], strategy: ClusteringStrategy
) -> Dict[Tuple, List[PMC]]:
    """Group PMCs by the strategy's cluster key(s), applying its filter."""
    clusters: Dict[Tuple, List[PMC]] = {}
    for pmc in pmcs:
        for key in strategy.cluster_keys(pmc):
            clusters.setdefault(key, []).append(pmc)
    return clusters


def ordered_exemplars(
    pmcs: Sequence[PMC],
    strategy: ClusteringStrategy,
    rng: random.Random,
    random_order: bool = False,
    limit: Optional[int] = None,
    obs=NULL_OBSERVER,
) -> List[PMC]:
    """One exemplar per cluster, uncommon (smallest) clusters first.

    With ``random_order`` the cluster order is shuffled instead (the
    Random S-INS-PAIR baseline).  A PMC already chosen as another
    cluster's exemplar is skipped, so the result has no duplicates (this
    matters for S-INS, where every PMC sits in two clusters).

    Stage-3 funnel quantities — clusters kept, PMCs dropped by the
    strategy filter, clusters deduplicated away because their candidates
    were already exemplars elsewhere — land on ``obs``.
    """
    with obs.span("stage3.select", strategy=strategy.name) as span:
        clusters = cluster_pmcs(pmcs, strategy)
        items = list(clusters.items())
        if random_order:
            # Stable order first so the shuffle is reproducible from the seed.
            items.sort(key=lambda kv: repr(kv[0]))
            rng.shuffle(items)
        else:
            items.sort(key=lambda kv: (len(kv[1]), repr(kv[0])))

        chosen: List[PMC] = []
        taken = set()
        deduped = 0
        for _, members in items:
            candidates = [p for p in members if p not in taken]
            if not candidates:
                deduped += 1
                continue
            exemplar = rng.choice(candidates)
            taken.add(exemplar)
            chosen.append(exemplar)
            if limit is not None and len(chosen) >= limit:
                break
        span.set(clusters=len(clusters), exemplars=len(chosen), deduped=deduped)
    if obs.enabled:
        obs.count("stage3.clusters", len(clusters))
        obs.count("stage3.filtered", sum(1 for p in pmcs if not strategy.accepts(p)))
        obs.count("stage3.duplicates", deduped)
        obs.count("stage3.exemplars", len(chosen))
    return chosen


def select_exemplars(
    pmcs: Sequence[PMC],
    strategy: ClusteringStrategy,
    seed: int = 0,
    random_order: bool = False,
    limit: Optional[int] = None,
) -> List[PMC]:
    """Convenience wrapper seeding its own RNG."""
    return ordered_exemplars(
        pmcs, strategy, random.Random(seed), random_order=random_order, limit=limit
    )


def cluster_stats(
    pmcs: Sequence[PMC], strategy: ClusteringStrategy
) -> Tuple[int, int]:
    """(number of clusters == exemplar PMCs, number of clustered PMCs)."""
    clusters = cluster_pmcs(pmcs, strategy)
    members = sum(len(v) for v in clusters.values())
    return len(clusters), members
