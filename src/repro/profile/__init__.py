"""Sequential test profiling (section 4.1 of the paper).

Runs each sequential test alone from the fixed boot snapshot and distills
its memory trace into the shared-memory access set used for PMC
identification: stack accesses pruned (ESP-filter analogue), duplicate
accesses collapsed, and double-fetch leaders annotated.
"""

from repro.profile.profiler import ProfiledAccess, Profiler, TestProfile, profile_corpus

__all__ = ["ProfiledAccess", "Profiler", "TestProfile", "profile_corpus"]
