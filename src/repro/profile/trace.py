"""Trace analysis utilities.

Helpers for understanding what a profile or execution touched: hot
addresses, per-subsystem access breakdowns, and shared-object summaries.
These power the inspection example and are what a developer uses when
deciding which PMC clusters deserve attention.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.machine.accesses import MemoryAccess
from repro.profile.profiler import TestProfile


def subsystem_of(ins: str) -> str:
    """The kernel subsystem an instruction address belongs to (its file)."""
    return ins.split(":", 1)[0].removesuffix(".py")


def access_breakdown(
    accesses: Iterable[MemoryAccess],
) -> Dict[str, Tuple[int, int]]:
    """Per-subsystem (reads, writes) counts over a trace."""
    reads: Counter = Counter()
    writes: Counter = Counter()
    for access in accesses:
        subsystem = subsystem_of(access.ins)
        if access.is_write:
            writes[subsystem] += 1
        else:
            reads[subsystem] += 1
    out = {}
    for subsystem in sorted(set(reads) | set(writes)):
        out[subsystem] = (reads[subsystem], writes[subsystem])
    return out


def hot_addresses(
    accesses: Iterable[MemoryAccess], top: int = 10
) -> List[Tuple[int, int]]:
    """The ``top`` most accessed addresses as (addr, count)."""
    counts: Counter = Counter()
    for access in accesses:
        counts[access.addr] += 1
    return counts.most_common(top)


@dataclass(frozen=True)
class SharedObject:
    """A contiguous run of shared accesses: one kernel object's footprint."""

    start: int
    end: int
    readers: int
    writers: int

    @property
    def size(self) -> int:
        return self.end - self.start


def shared_objects(
    profiles: Sequence[TestProfile], gap: int = 8
) -> List[SharedObject]:
    """Coalesce profiled access ranges into object-like regions.

    Ranges closer than ``gap`` bytes merge — a cheap reconstruction of
    "which kernel objects do tests communicate through", the intuition
    behind the S-MEM clustering strategy.
    """
    spans: List[Tuple[int, int, bool]] = []
    for profile in profiles:
        for access in profile.accesses:
            spans.append((access.addr, access.end, access.is_write))
    spans.sort()
    objects: List[SharedObject] = []
    current: Optional[List] = None  # [start, end, readers, writers]
    for start, end, is_write in spans:
        if current is not None and start <= current[1] + gap:
            current[1] = max(current[1], end)
            current[2] += 0 if is_write else 1
            current[3] += 1 if is_write else 0
        else:
            if current is not None:
                objects.append(
                    SharedObject(current[0], current[1], current[2], current[3])
                )
            current = [start, end, 0 if is_write else 1, 1 if is_write else 0]
    if current is not None:
        objects.append(SharedObject(current[0], current[1], current[2], current[3]))
    return objects


def communication_matrix(
    profiles: Sequence[TestProfile],
) -> Dict[Tuple[str, str], int]:
    """How many (writer subsystem, reader subsystem) range overlaps exist.

    A coarse, human-readable view of the inter-subsystem communication
    structure the PMC analysis explores at byte granularity.
    """
    from repro.pmc.index import AccessIndex

    index = AccessIndex()
    for profile in profiles:
        index.insert_profile(profile)
    matrix: Counter = Counter()
    for overlap in index.read_write_overlaps():
        key = (subsystem_of(overlap.write.ins), subsystem_of(overlap.read.ins))
        matrix[key] += 1
    return dict(matrix)
