"""Shared-memory access profiling of sequential tests.

For every test the profiler records the *unique* shared (non-stack)
memory accesses — (type, range, value, instruction) tuples — and marks
double-fetch leaders: the first of two reads by different instructions
that fetch the same region with equal values and no intervening write
(the ``df_leader`` feature of section 4.3, consumed by S-CH-DOUBLE).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fuzz.corpus import Corpus
from repro.fuzz.prog import Program
from repro.machine.accesses import AccessType, iter_access_fields
from repro.obs import NULL_OBSERVER
from repro.sched.executor import ExecutionResult, Executor


@dataclass(frozen=True, slots=True)
class ProfiledAccess:
    """One unique shared access of a test's sequential profile."""

    type: AccessType
    addr: int
    size: int
    value: int
    ins: str
    df_leader: bool = False

    @property
    def end(self) -> int:
        return self.addr + self.size

    @property
    def is_write(self) -> bool:
        return self.type is AccessType.WRITE

    def key(self) -> Tuple:
        """Identity without the df_leader annotation."""
        return (self.type, self.addr, self.size, self.value, self.ins)


@dataclass(frozen=True)
class TestProfile:
    """The distilled profile of one sequential test."""

    __test__ = False  # starts with "Test" but is not a pytest class

    test_id: int
    program: Program
    accesses: Tuple[ProfiledAccess, ...]
    instructions: int

    @property
    def writes(self) -> Tuple[ProfiledAccess, ...]:
        return tuple(a for a in self.accesses if a.is_write)

    @property
    def reads(self) -> Tuple[ProfiledAccess, ...]:
        return tuple(a for a in self.accesses if not a.is_write)


class _DirtyIntervals:
    """Disjoint, sorted byte intervals — the ``dirty`` set of the
    double-fetch scan, without per-byte set churn.

    Accesses are at most one word, but a busy profile performs tens of
    thousands of them; tracking ``[lo, hi)`` intervals keeps each write
    (add), read (subtract) and leader check (overlaps) logarithmic in
    the number of live intervals instead of linear in touched bytes.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def add(self, lo: int, hi: int) -> None:
        """Mark ``[lo, hi)`` dirty, merging adjacent/overlapping spans."""
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, lo)
        if i and ends[i - 1] >= lo:
            i -= 1
            lo = starts[i]
        j = i
        n = len(starts)
        while j < n and starts[j] <= hi:
            if ends[j] > hi:
                hi = ends[j]
            j += 1
        starts[i:j] = [lo]
        ends[i:j] = [hi]

    def subtract(self, lo: int, hi: int) -> None:
        """Clear ``[lo, hi)``, trimming or splitting covering spans."""
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, lo) - 1
        if i < 0 or ends[i] <= lo:
            i += 1
        j = i
        n = len(starts)
        keep_starts: List[int] = []
        keep_ends: List[int] = []
        while j < n and starts[j] < hi:
            if starts[j] < lo:
                keep_starts.append(starts[j])
                keep_ends.append(lo)
            if ends[j] > hi:
                keep_starts.append(hi)
                keep_ends.append(ends[j])
            j += 1
        starts[i:j] = keep_starts
        ends[i:j] = keep_ends

    def overlaps(self, lo: int, hi: int) -> bool:
        """True when any byte of ``[lo, hi)`` is dirty."""
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, lo) - 1
        if i >= 0 and ends[i] > lo:
            return True
        i += 1
        return i < len(starts) and starts[i] < hi


def _find_df_leaders(accesses) -> Set[Tuple]:
    """Keys of read accesses that lead a double fetch.

    A read leads a double fetch when a later read by a *different*
    instruction covers the same range, returns the same value, and no
    write touched any byte of the range in between.  Consumes the trace
    columnar — no record objects are materialised.
    """
    leaders: Set[Tuple] = set()
    # Per exact range: the previous read (ins, value, access key).
    last_read: Dict[Tuple[int, int], Tuple[str, int, Tuple]] = {}
    dirty = _DirtyIntervals()  # byte spans written since each range's last read
    READ = AccessType.READ
    WRITE = AccessType.WRITE

    for _seq, _thread, type_, addr, size, value, ins, is_stack in iter_access_fields(
        accesses
    ):
        if is_stack:
            continue
        end = addr + size
        if type_ is WRITE:
            dirty.add(addr, end)
            continue
        span = (addr, size)
        prev = last_read.get(span)
        if prev is not None:
            prev_ins, prev_value, prev_key = prev
            if prev_ins != ins and prev_value == value and not dirty.overlaps(addr, end):
                leaders.add(prev_key)
        key = (READ, addr, size, value, ins)
        last_read[span] = (ins, value, key)
        dirty.subtract(addr, end)
    return leaders


def profile_from_result(
    test_id: int, program: Program, result: ExecutionResult
) -> TestProfile:
    """Distill an execution result into a test profile.

    Iterates the columnar trace directly: the only objects built are the
    unique :class:`ProfiledAccess` records that survive deduplication.
    """
    leaders = _find_df_leaders(result.accesses)
    unique: Dict[Tuple, ProfiledAccess] = {}
    for _seq, thread, type_, addr, size, value, ins, is_stack in iter_access_fields(
        result.accesses
    ):
        if is_stack or thread != 0:
            continue
        key = (type_, addr, size, value, ins)
        if key not in unique:
            unique[key] = ProfiledAccess(
                type=type_,
                addr=addr,
                size=size,
                value=value,
                ins=ins,
                df_leader=key in leaders,
            )
    return TestProfile(
        test_id=test_id,
        program=program,
        accesses=tuple(unique.values()),
        instructions=result.instructions,
    )


class Profiler:
    """Profiles sequential tests from the fixed snapshot."""

    def __init__(self, executor: Executor):
        self.executor = executor

    def profile(self, test_id: int, program: Program) -> TestProfile:
        """Run one test alone and distill its profile."""
        result = self.executor.run_sequential(program)
        return profile_from_result(test_id, program, result)


def profile_new(
    entries, executor: Optional[Executor] = None, obs=NULL_OBSERVER
) -> List[TestProfile]:
    """Profile a batch of corpus entries (the per-round delta).

    A continuous campaign keeps a profiled-test watermark into the
    growing corpus and hands only the unprofiled tail here; the batch
    :func:`profile_corpus` is the degenerate whole-corpus call.  Corpus
    entries already carry their sequential execution results, so no
    re-execution is needed unless an executor is passed explicitly.
    The Stage-1 funnel quantities (tests profiled, instructions covered,
    unique shared accesses, double-fetch leaders) land on ``obs`` —
    counting only this batch, so cumulative round totals equal the batch
    path's.
    """
    entries = list(entries)
    profiles = []
    with obs.span("stage1.profile", tests=len(entries)):
        for entry in entries:
            if executor is not None:
                result = executor.run_sequential(entry.program)
            else:
                result = entry.result
            profiles.append(
                profile_from_result(entry.test_id, entry.program, result)
            )
    if obs.enabled:
        obs.count("stage1.profiles", len(profiles))
        obs.count("stage1.instructions", sum(p.instructions for p in profiles))
        obs.count("stage1.accesses", sum(len(p.accesses) for p in profiles))
        obs.count(
            "stage1.df_leaders",
            sum(1 for p in profiles for a in p.accesses if a.df_leader),
        )
    return profiles


def profile_corpus(
    corpus: Corpus, executor: Optional[Executor] = None, obs=NULL_OBSERVER
) -> List[TestProfile]:
    """Profile every corpus entry — one whole-corpus :func:`profile_new`."""
    return profile_new(corpus.entries, executor=executor, obs=obs)
