"""Shared-memory access profiling of sequential tests.

For every test the profiler records the *unique* shared (non-stack)
memory accesses — (type, range, value, instruction) tuples — and marks
double-fetch leaders: the first of two reads by different instructions
that fetch the same region with equal values and no intervening write
(the ``df_leader`` feature of section 4.3, consumed by S-CH-DOUBLE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.fuzz.corpus import Corpus
from repro.fuzz.prog import Program
from repro.machine.accesses import AccessType, MemoryAccess
from repro.sched.executor import ExecutionResult, Executor


@dataclass(frozen=True, slots=True)
class ProfiledAccess:
    """One unique shared access of a test's sequential profile."""

    type: AccessType
    addr: int
    size: int
    value: int
    ins: str
    df_leader: bool = False

    @property
    def end(self) -> int:
        return self.addr + self.size

    @property
    def is_write(self) -> bool:
        return self.type is AccessType.WRITE

    def key(self) -> Tuple:
        """Identity without the df_leader annotation."""
        return (self.type, self.addr, self.size, self.value, self.ins)


@dataclass(frozen=True)
class TestProfile:
    """The distilled profile of one sequential test."""

    __test__ = False  # starts with "Test" but is not a pytest class

    test_id: int
    program: Program
    accesses: Tuple[ProfiledAccess, ...]
    instructions: int

    @property
    def writes(self) -> Tuple[ProfiledAccess, ...]:
        return tuple(a for a in self.accesses if a.is_write)

    @property
    def reads(self) -> Tuple[ProfiledAccess, ...]:
        return tuple(a for a in self.accesses if not a.is_write)


def _find_df_leaders(accesses: Sequence[MemoryAccess]) -> Set[Tuple]:
    """Keys of read accesses that lead a double fetch.

    A read leads a double fetch when a later read by a *different*
    instruction covers the same range, returns the same value, and no
    write touched any byte of the range in between.
    """
    leaders: Set[Tuple] = set()
    # Per exact range: the previous read (ins, value, access key).
    last_read: Dict[Tuple[int, int], Tuple[str, int, Tuple]] = {}
    dirty: Set[int] = set()  # bytes written since each range's last read

    for access in accesses:
        if access.is_stack:
            continue
        span = (access.addr, access.size)
        if access.is_write:
            dirty.update(range(access.addr, access.end))
            continue
        prev = last_read.get(span)
        if prev is not None:
            prev_ins, prev_value, prev_key = prev
            untouched = not any(b in dirty for b in range(access.addr, access.end))
            if prev_ins != access.ins and prev_value == access.value and untouched:
                leaders.add(prev_key)
        key = (AccessType.READ, access.addr, access.size, access.value, access.ins)
        last_read[span] = (access.ins, access.value, key)
        for byte in range(access.addr, access.end):
            dirty.discard(byte)
    return leaders


def profile_from_result(
    test_id: int, program: Program, result: ExecutionResult
) -> TestProfile:
    """Distill an execution result into a test profile."""
    shared = result.shared_accesses(thread=0)
    leaders = _find_df_leaders(result.accesses)
    unique: Dict[Tuple, ProfiledAccess] = {}
    for access in shared:
        key = (access.type, access.addr, access.size, access.value, access.ins)
        if key not in unique:
            unique[key] = ProfiledAccess(
                type=access.type,
                addr=access.addr,
                size=access.size,
                value=access.value,
                ins=access.ins,
                df_leader=key in leaders,
            )
    return TestProfile(
        test_id=test_id,
        program=program,
        accesses=tuple(unique.values()),
        instructions=result.instructions,
    )


class Profiler:
    """Profiles sequential tests from the fixed snapshot."""

    def __init__(self, executor: Executor):
        self.executor = executor

    def profile(self, test_id: int, program: Program) -> TestProfile:
        """Run one test alone and distill its profile."""
        result = self.executor.run_sequential(program)
        return profile_from_result(test_id, program, result)


def profile_corpus(corpus: Corpus, executor: Optional[Executor] = None) -> List[TestProfile]:
    """Profile every corpus entry.

    Corpus entries already carry their sequential execution results, so
    no re-execution is needed unless an executor is passed explicitly.
    """
    profiles = []
    for entry in corpus:
        if executor is not None:
            result = executor.run_sequential(entry.program)
        else:
            result = entry.result
        profiles.append(profile_from_result(entry.test_id, entry.program, result))
    return profiles
