"""The observability layer: spans, metrics, sinks, worker buffering.

The two contracts that matter most are at the end: the disabled path
allocates nothing (shared singletons all the way down), and serial and
parallel campaigns of the same seed emit identical funnel totals.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_OBSERVER,
    NULL_SPAN,
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    Metrics,
    NullSink,
    Observer,
    TraceError,
    Tracer,
    read_trace,
)


class TestSpans:
    def test_nesting_depth_and_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink, epoch=0.0)
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
        assert tracer.depth == 0
        inner, outer = sink.events  # spans emit at close: inner first
        assert inner["name"] == "inner"
        assert inner["depth"] == 1
        assert inner["parent"] == "outer"
        assert outer["name"] == "outer"
        assert outer["depth"] == 0
        assert outer["parent"] is None

    def test_timing_and_offsets(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work"):
            total = 0
            for i in range(10_000):
                total += i
        (record,) = sink.events
        assert record["dur"] >= 0.0
        assert record["t0"] >= 0.0
        # Nested span lies within its parent's window.
        sink.events.clear()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.events
        assert outer["t0"] <= inner["t0"]
        assert inner["t0"] + inner["dur"] <= outer["t0"] + outer["dur"] + 1e-6

    def test_attrs_and_set(self):
        sink = MemorySink()
        tracer = Tracer(sink, epoch=0.0)
        with tracer.span("s", fixed=True) as span:
            span.set(result=42)
        (record,) = sink.events
        assert record["attrs"] == {"fixed": True, "result": 42}

    def test_exception_records_error_attr(self):
        sink = MemorySink()
        tracer = Tracer(sink, epoch=0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = sink.events
        assert record["attrs"]["error"] == "RuntimeError"
        assert tracer.depth == 0  # stack unwound

    def test_record_externally_timed_span(self):
        sink = MemorySink()
        tracer = Tracer(sink, epoch=0.0)
        with tracer.span("parent"):
            tracer.record("restore", 0.25, pages=7)
        restore, parent = sink.events
        assert restore["name"] == "restore"
        assert restore["dur"] == 0.25
        assert restore["depth"] == 1
        assert restore["parent"] == "parent"
        assert restore["attrs"] == {"pages": 7}


class TestMetrics:
    def test_counters_gauges_histograms(self):
        m = Metrics()
        m.count("trials")
        m.count("trials", 4)
        m.gauge("bugs", 1)
        m.gauge("bugs", 3)
        for v in range(1, 101):
            m.observe("latency", v)
        snap = m.snapshot()
        assert snap["counters"] == {"trials": 5}
        assert snap["gauges"] == {"bugs": 3}
        hist = snap["histograms"]["latency"]
        assert hist["count"] == 100
        assert hist["p50"] == 50
        assert hist["p95"] == 95
        assert hist["min"] == 1 and hist["max"] == 100

    def test_merge_is_worker_order_independent_for_counters(self):
        workers = []
        for base in (1, 10, 100):
            m = Metrics()
            m.count("trials", base)
            m.observe("latency", base)
            workers.append(m)
        forward, backward = Metrics(), Metrics()
        for m in workers:
            forward.merge(m)
        for m in reversed(workers):
            backward.merge(m)
        assert forward.counter_value("trials") == 111
        assert (
            forward.snapshot()["counters"] == backward.snapshot()["counters"]
        )
        assert sorted(forward.histograms["latency"].values) == sorted(
            backward.histograms["latency"].values
        )

    def test_merge_gauges_last_wins(self):
        a, b = Metrics(), Metrics()
        a.gauge("bugs", 1)
        b.gauge("bugs", 2)
        a.merge(b)
        assert a.snapshot()["gauges"]["bugs"] == 2

    def test_empty_histogram_summary(self):
        from repro.obs.metrics import Histogram

        assert Histogram().summary()["count"] == 0
        assert Histogram().percentile(95) == 0


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, header={"seed": 7, "strategy": "S-INS-PAIR"})
        sink.emit({"kind": "event", "name": "hello", "attrs": {"n": 1}})
        sink.emit({"kind": "metrics", "counters": {"trials": 3}})
        sink.close()
        header, events = read_trace(path)
        assert header["seed"] == 7
        assert header["strategy"] == "S-INS-PAIR"
        assert [e["kind"] for e in events] == ["event", "metrics"]

    def test_torn_tail_is_discarded(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, header={"seed": 7})
        sink.emit({"kind": "event", "name": "kept", "attrs": {}})
        sink.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "name": "torn", "at')  # no newline
        header, events = read_trace(path)
        assert [e["name"] for e in events] == ["kept"]

    def test_missing_header_raises(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "event", "name": "x"}) + "\n")
        with pytest.raises(TraceError):
            read_trace(path)
        with open(path, "w", encoding="utf-8"):
            pass  # empty file
        with pytest.raises(TraceError):
            read_trace(path)

    def test_unknown_schema_raises(self, tmp_path):
        path = str(tmp_path / "future.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "header", "schema": 999}) + "\n")
        with pytest.raises(TraceError):
            read_trace(path)


class TestNullPath:
    """Disabled observability must be allocation-free shared singletons."""

    def test_span_returns_the_shared_singleton(self):
        assert NULL_OBSERVER.span("anything", x=1) is NULL_SPAN
        assert NULL_TRACER.span("anything") is NULL_SPAN
        with NULL_OBSERVER.span("s") as span:
            assert span is NULL_SPAN
            assert span.set(a=1) is NULL_SPAN

    def test_null_span_keeps_no_state(self):
        NULL_SPAN.set(leaked=True)
        assert NULL_SPAN.attrs == {}

    def test_null_observer_everything_is_noop(self):
        NULL_OBSERVER.count("x", 5)
        NULL_OBSERVER.gauge("x", 5)
        NULL_OBSERVER.observe("x", 5)
        NULL_OBSERVER.event("x", a=1)
        NULL_OBSERVER.record_span("x", 0.1)
        NULL_OBSERVER.flush_metrics()
        NULL_OBSERVER.replay([{"kind": "event"}])
        NULL_OBSERVER.close()
        assert NULL_METRICS.counter_value("x") == 0
        assert not NULL_OBSERVER.enabled

    def test_null_singletons_are_slotted(self):
        # __slots__ = () means no per-instance dict to grow: the
        # singletons cannot accumulate state and stay one allocation for
        # the process lifetime.
        for obj in (NULL_OBSERVER, NULL_SPAN, NULL_TRACER, NULL_METRICS):
            assert not hasattr(obj, "__dict__")
        assert not hasattr(NullSink(), "__dict__")


class TestObserverFacade:
    def test_event_and_flush(self):
        sink = MemorySink()
        obs = Observer(sink, epoch=0.0)
        obs.event("worker.up", worker_id=1)
        obs.count("trials", 2)
        obs.flush_metrics()
        event, metrics = sink.events
        assert event == {"kind": "event", "name": "worker.up", "attrs": {"worker_id": 1}}
        assert metrics["kind"] == "metrics"
        assert metrics["counters"] == {"trials": 2}

    def test_replay_preserves_order(self):
        worker = Observer(MemorySink(), epoch=0.0)
        with worker.span("stage4.trial", trial=0):
            pass
        with worker.span("stage4.trial", trial=1):
            pass
        campaign_sink = MemorySink()
        campaign = Observer(campaign_sink, epoch=0.0)
        campaign.replay(worker.sink.events)
        assert [e["attrs"]["trial"] for e in campaign_sink.events] == [0, 1]

    def test_close_flushes_final_metrics(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs = Observer(JsonlSink(path, header={}))
        obs.count("trials", 9)
        obs.close()
        _header, events = read_trace(path)
        assert events[-1]["kind"] == "metrics"
        assert events[-1]["counters"] == {"trials": 9}
