"""Round-based incremental campaign engine (§4.3, §6 continuous mode).

Contracts pinned here:

* **Equivalence guard** — a one-round campaign with the full budget is
  bit-identical to the batch pipeline: summary, funnel totals and
  reproduction packages, serially and across a worker fleet.
* Multi-round campaigns are deterministic across instances, grow the
  corpus and PMC set monotonically, and never re-test an exemplar PMC
  in a later round (the §4.3 "excluding those tested before" rule).
* A checkpointed round campaign killed at or inside any round resumes
  in a fresh instance, lands at the correct round (validated against
  the journalled round records), and reproduces the uninterrupted
  summary bit for bit.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import JsonlSink, MemorySink, Observer
from repro.obs.stats import (
    aggregate_trace,
    funnel_totals,
    load_stats,
    render_stats,
    round_counters,
    stats_to_obj,
)
from repro.orchestrate.persistence import (
    CheckpointMismatch,
    load_checkpoint,
    load_round_records,
)
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

CONFIG = SnowboardConfig(
    seed=7, corpus_budget=120, trials_per_pmc=8, max_instructions=40_000
)
STRATEGY = "S-INS-PAIR"
BUDGET = 8  # batch test budget == one-round budget for the equivalence guard
ROUNDS = 2
ROUND_BUDGET = 4
GROWTH = 40  # fuzzer executions added by each round after the first


class Killed(BaseException):
    """Stands in for SIGKILL: not an Exception, nothing may catch it."""


@pytest.fixture(scope="module")
def batch():
    """The batch campaign the one-round path must match bit for bit."""
    sb = Snowboard(CONFIG).prepare()
    return sb, sb.run_campaign(STRATEGY, test_budget=BUDGET)


@pytest.fixture(scope="module")
def one_round():
    sb = Snowboard(CONFIG).prepare()
    return sb, sb.run_rounds(1, BUDGET, strategy=STRATEGY)


@pytest.fixture(scope="module")
def multi_round():
    """The uninterrupted multi-round campaign resumes must reproduce."""
    sb = Snowboard(CONFIG).prepare()
    campaign = sb.run_rounds(
        ROUNDS, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH
    )
    return sb, campaign


class TestOneRoundEquivalence:
    def test_serial_summary_bit_identical(self, batch, one_round):
        assert one_round[1].summary() == batch[1].summary()

    def test_exemplar_count_matches_batch(self, batch, one_round):
        assert one_round[1].exemplar_pmcs == batch[1].exemplar_pmcs

    def test_repro_packages_identical(self, batch, one_round):
        batch_sb, rounds_sb = batch[0], one_round[0]
        assert set(rounds_sb.repro_packages) == set(batch_sb.repro_packages)
        for bug_id, package in batch_sb.repro_packages.items():
            assert rounds_sb.repro_packages[bug_id].to_json() == package.to_json()

    def test_fleet_summary_bit_identical(self, batch):
        sb = Snowboard(CONFIG).prepare()
        campaign = sb.run_rounds(1, BUDGET, strategy=STRATEGY, workers=2)
        assert campaign.summary() == batch[1].summary()

    def test_funnel_totals_bit_identical(self):
        """Tracing on: the one-round funnel equals the batch funnel."""
        sinks = []
        for rounds in (None, 1):
            sink = MemorySink()
            sb = Snowboard(CONFIG, observer=Observer(sink))
            if rounds is None:
                sb.run_campaign(STRATEGY, test_budget=BUDGET)
            else:
                sb.run_rounds(rounds, BUDGET, strategy=STRATEGY)
            sinks.append(sink)
        totals = [funnel_totals(aggregate_trace({}, s.events)) for s in sinks]
        assert totals[0] == totals[1]
        assert totals[0]  # not vacuously equal


class TestMultiRound:
    def test_deterministic_across_instances(self, multi_round):
        sb = Snowboard(CONFIG).prepare()
        campaign = sb.run_rounds(
            ROUNDS, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH
        )
        assert campaign.summary() == multi_round[1].summary()
        assert sb.state.rounds_log == multi_round[0].state.rounds_log

    def test_round_log_shape(self, multi_round):
        sb, campaign = multi_round
        log = sb.state.rounds_log
        assert [info.round for info in log] == list(range(1, ROUNDS + 1))
        # Global task ids tile the rounds back to back.
        offsets = [info.first_test_index for info in log]
        assert offsets == [sum(i.ntests for i in log[:k]) for k in range(ROUNDS)]
        assert campaign.tested_pmcs == sum(info.ntests for info in log)
        # Corpus and PMC totals only ever grow.
        assert all(a.corpus_size <= b.corpus_size for a, b in zip(log, log[1:]))
        assert all(a.pmcs_total <= b.pmcs_total for a, b in zip(log, log[1:]))
        assert sb.state.round == ROUNDS
        assert sb.state.profiled_watermark == len(sb.corpus.entries)

    def test_later_rounds_add_corpus_and_pmcs(self, multi_round):
        """The incremental machinery actually advances: round 2 must
        profile new tests (GROWTH executions find *something* on this
        corpus/seed) and classify a non-empty PMC delta."""
        log = multi_round[0].state.rounds_log
        assert log[1].new_profiles > 0
        assert log[1].new_pmcs > 0
        assert log[1].corpus_size > log[0].corpus_size

    def test_no_exemplar_retested_across_rounds(self, multi_round):
        log = multi_round[0].state.rounds_log
        seen = set()
        for info in log:
            exemplars = set(info.exemplars)
            assert len(exemplars) == len(info.exemplars)  # no dupes within
            assert not (exemplars & seen)  # none across rounds
            seen |= exemplars
        assert len(multi_round[0].state.history) == sum(i.ntests for i in log)

    def test_fleet_matches_serial(self, multi_round):
        sb = Snowboard(CONFIG).prepare()
        campaign = sb.run_rounds(
            ROUNDS, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH, workers=2
        )
        assert campaign.summary() == multi_round[1].summary()

    def test_repeated_calls_continue_the_campaign(self, multi_round):
        """Two run_rounds(1) calls walk the same rounds as one
        run_rounds(2): corpus, index, history and numbering carry over.

        Only Stage 1-3 state lives in CampaignState: each call returns
        its own CampaignResult, whose observation dedup (and therefore
        per-test early stop) starts fresh.  So test counts must tile the
        single-campaign run exactly, while trial counts may not.
        """
        sb = Snowboard(CONFIG).prepare()
        first = sb.run_rounds(1, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH)
        second = sb.run_rounds(1, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH)
        assert sb.state.rounds_log == multi_round[0].state.rounds_log
        combined = first.tested_pmcs + second.tested_pmcs
        assert combined == multi_round[1].tested_pmcs


class TestRoundTrace:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("trace") / "rounds.jsonl")
        obs = Observer(JsonlSink(path, header={"seed": CONFIG.seed, "rounds": ROUNDS}))
        sb = Snowboard(CONFIG, observer=obs)
        campaign = sb.run_rounds(
            ROUNDS, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH
        )
        obs.close()
        return sb, campaign, path

    def test_round_counters_match_round_log(self, traced):
        sb, campaign, path = traced
        rounds = round_counters(load_stats(path))
        assert sorted(rounds) == list(range(1, ROUNDS + 1))
        for info in sb.state.rounds_log:
            data = rounds[info.round]
            assert data["tests"] == info.ntests
            assert data["corpus_tests"] == info.new_corpus_tests
            assert data["profiles"] == info.new_profiles
            assert data["new_pmcs"] == info.new_pmcs
        assert sum(r["trials"] for r in rounds.values()) == campaign.trials

    def test_round_spans_present(self, traced):
        stats = load_stats(traced[2])
        for number in range(1, ROUNDS + 1):
            assert f"round.{number}" in stats.spans

    def test_render_includes_round_funnel(self, traced):
        text = render_stats(load_stats(traced[2]))
        assert "== Per-round funnel ==" in text

    def test_stats_to_obj_round_aware(self, traced):
        obj = stats_to_obj(load_stats(traced[2]))
        assert [r["round"] for r in obj["rounds"]] == list(range(1, ROUNDS + 1))
        assert obj["funnel"]["stage4.trials"] == traced[1].trials
        json.dumps(obj)  # must be JSON-serialisable as-is

    def test_stats_json_cli(self, traced, capsys):
        from repro.cli import main

        assert main(["stats", traced[2], "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert len(obj["rounds"]) == ROUNDS
        assert obj["header"]["rounds"] == ROUNDS

    def test_batch_trace_has_no_round_section(self, tmp_path):
        path = str(tmp_path / "batch.jsonl")
        obs = Observer(JsonlSink(path, header={}))
        Snowboard(CONFIG, observer=obs).run_campaign(STRATEGY, test_budget=3)
        obs.close()
        stats = load_stats(path)
        assert round_counters(stats) == {}
        assert "== Per-round funnel ==" not in render_stats(stats)
        assert stats_to_obj(stats)["rounds"] == []


def _run_rounds_until_killed(path: str, kill_after: int) -> None:
    """Start a checkpointed round campaign and kill it mid-Stage-4."""
    sb = Snowboard(CONFIG).prepare()
    original = Snowboard.execute_test
    calls = {"n": 0}

    def dying(self, *args, **kwargs):
        if calls["n"] >= kill_after:
            raise Killed()
        calls["n"] += 1
        return original(self, *args, **kwargs)

    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(Snowboard, "execute_test", dying)
        with pytest.raises(Killed):
            sb.run_rounds(
                ROUNDS,
                ROUND_BUDGET,
                strategy=STRATEGY,
                corpus_growth=GROWTH,
                checkpoint_path=path,
            )


def _resume(path: str):
    sb = Snowboard(CONFIG).prepare()
    campaign = sb.run_rounds(
        ROUNDS,
        ROUND_BUDGET,
        strategy=STRATEGY,
        corpus_growth=GROWTH,
        checkpoint_path=path,
        resume=True,
    )
    return sb, campaign


class TestRoundCheckpointResume:
    def test_uninterrupted_checkpoint_does_not_perturb(self, multi_round, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        sb = Snowboard(CONFIG).prepare()
        campaign = sb.run_rounds(
            ROUNDS,
            ROUND_BUDGET,
            strategy=STRATEGY,
            corpus_growth=GROWTH,
            checkpoint_path=path,
        )
        assert campaign.summary() == multi_round[1].summary()
        header, tasks = load_checkpoint(path)
        assert header["rounds"] == ROUNDS
        assert header["round_budget"] == ROUND_BUDGET
        total = sum(info.ntests for info in sb.state.rounds_log)
        assert [t["task_id"] for t in tasks] == list(range(total))
        rounds = load_round_records(path)
        assert sorted(rounds) == list(range(1, ROUNDS + 1))
        for info in sb.state.rounds_log:
            assert rounds[info.round]["ntests"] == info.ntests
            assert rounds[info.round]["first_test_index"] == info.first_test_index

    def test_kill_at_round_boundary_and_resume(self, multi_round, tmp_path):
        """Killed right as round 2 starts executing: the resume must land
        at round 2 and finish it, not rerun round 1."""
        uninterrupted_sb, uninterrupted = multi_round
        round1_tests = uninterrupted_sb.state.rounds_log[0].ntests
        path = str(tmp_path / "journal.jsonl")
        _run_rounds_until_killed(path, kill_after=round1_tests)
        # Round 2's boundary record was journalled before its first task.
        assert sorted(load_round_records(path)) == [1, 2]
        _, tasks = load_checkpoint(path)
        assert len(tasks) == round1_tests

        sb, resumed = _resume(path)
        assert resumed.summary() == uninterrupted.summary()
        assert sb.state.rounds_log == uninterrupted_sb.state.rounds_log
        assert set(sb.repro_packages) == set(uninterrupted_sb.repro_packages)

    def test_kill_mid_round_two_and_resume(self, multi_round, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        kill_after = multi_round[0].state.rounds_log[0].ntests + 2
        _run_rounds_until_killed(path, kill_after=kill_after)
        _, resumed = _resume(path)
        assert resumed.summary() == multi_round[1].summary()

    def test_kill_in_round_one_and_resume(self, multi_round, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        _run_rounds_until_killed(path, kill_after=1)
        assert sorted(load_round_records(path)) == [1]
        _, resumed = _resume(path)
        assert resumed.summary() == multi_round[1].summary()

    def test_resume_of_complete_journal_executes_nothing(self, multi_round, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        Snowboard(CONFIG).prepare().run_rounds(
            ROUNDS,
            ROUND_BUDGET,
            strategy=STRATEGY,
            corpus_growth=GROWTH,
            checkpoint_path=path,
        )
        executed = []
        original = Snowboard.execute_test

        def counting(self, *args, **kwargs):
            executed.append(kwargs.get("task_id"))
            return original(self, *args, **kwargs)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(Snowboard, "execute_test", counting)
            _, resumed = _resume(path)
        assert executed == []
        assert resumed.summary() == multi_round[1].summary()

    def test_round_shape_header_guard(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        _run_rounds_until_killed(path, kill_after=2)
        sb = Snowboard(CONFIG).prepare()
        with pytest.raises(CheckpointMismatch):
            sb.run_rounds(
                ROUNDS + 1,  # different round count than journalled
                ROUND_BUDGET,
                strategy=STRATEGY,
                corpus_growth=GROWTH,
                checkpoint_path=path,
                resume=True,
            )

    def test_batch_journal_rejected_by_rounds_resume(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        Snowboard(CONFIG).prepare().run_campaign(
            STRATEGY, test_budget=3, checkpoint_path=path
        )
        sb = Snowboard(CONFIG).prepare()
        with pytest.raises(CheckpointMismatch):
            sb.run_rounds(
                ROUNDS,
                ROUND_BUDGET,
                strategy=STRATEGY,
                corpus_growth=GROWTH,
                checkpoint_path=path,
                resume=True,
            )
