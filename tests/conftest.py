"""Shared fixtures.

Booting the kernel is deterministic but not free, so a session-scoped
kernel/snapshot/executor trio is shared by most tests: every execution
restores the snapshot first, which makes sharing safe.
"""

from __future__ import annotations

import pytest

from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor


@pytest.fixture(scope="session")
def booted():
    """(kernel, snapshot) booted once for the whole session."""
    return boot_kernel()


@pytest.fixture(scope="session")
def kernel(booted):
    return booted[0]


@pytest.fixture(scope="session")
def snapshot(booted):
    return booted[1]


@pytest.fixture(scope="session")
def executor(booted):
    kernel, snapshot = booted
    return Executor(kernel, snapshot)


@pytest.fixture()
def fresh_kernel():
    """A private kernel for tests that mutate state outside the executor."""
    return boot_kernel()
