"""The out-of-core tiered PMC store (DESIGN.md §2.14).

Contracts pinned here:

* **Record codec** — appended accesses round-trip the fixed-width
  36-byte record bit for bit, including u64 extremes and both flag bits.
* **Lifecycle** — reopening adopts a matching manifest (truncating torn
  segment tails past the checkpoint); a different fingerprint or shard
  geometry wipes the directory instead of adopting a foreign stream.
* **Checkpoint digests** — flush-boundary independent, recorded in a
  history so a resumed campaign re-deriving an old round gets the
  *historical* digest back, and a divergent stream raises StoreError.
* **Golden equivalence** — a spilled campaign with the hot tier forced
  to a fraction of the access set produces the bit-identical summary,
  repro packages, round log and funnel totals of the in-memory run,
  with non-zero tier traffic reported by ``repro stats``; kill/resume
  of a spilled campaign lands on the same summary.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.prog import Program
from repro.machine.accesses import AccessType
from repro.obs import MemorySink, Observer
from repro.obs.stats import aggregate_trace, funnel_totals, store_tiers
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig
from repro.pmc.index import AccessIndex
from repro.pmc.store import (
    MANIFEST_NAME,
    RECORD_SIZE,
    AccessStore,
    StoreError,
)
from repro.profile.profiler import ProfiledAccess, TestProfile

EMPTY = Program(())


def pa(type, addr, size, value, ins, df=False):
    return ProfiledAccess(
        type=AccessType.READ if type == "R" else AccessType.WRITE,
        addr=addr,
        size=size,
        value=value,
        ins=ins,
        df_leader=df,
    )


def profile(test_id, *accesses):
    return TestProfile(
        test_id=test_id, program=EMPTY, accesses=tuple(accesses), instructions=0
    )


class TestRecordCodec:
    def test_round_trip_including_flags_and_u64_extremes(self, tmp_path):
        store = AccessStore.open(str(tmp_path))
        accesses = [
            (pa("W", 0x100, 8, (1 << 64) - 1, "w:max", df=True), 7, 0),
            (pa("R", 0x100, 1, 0, "r:zero"), (1 << 32) - 1, 1),
            (pa("W", (1 << 64) - 8, 8, 0xDEADBEEF, "w:hi"), 0, 2),
        ]
        for access, test_id, seq in accesses:
            store.append(access, test_id, seq)
        store.flush()
        for access, test_id, seq in accesses:
            ((got, got_test, got_seq),) = store.load_bucket(
                access.is_write, access.addr
            )
            assert got == access
            assert (got_test, got_seq) == (test_id, seq)

    def test_record_is_36_bytes(self):
        assert RECORD_SIZE == 36

    def test_segment_holds_fixed_width_records(self, tmp_path):
        store = AccessStore.open(str(tmp_path))
        for seq in range(5):
            store.append(pa("W", 0x100 + seq, 4, seq, f"w:{seq}"), 0, seq)
        store.flush()
        sizes = [
            os.path.getsize(tmp_path / name)
            for name in os.listdir(tmp_path)
            if name.endswith(".seg")
        ]
        assert sum(sizes) == 5 * RECORD_SIZE

    def test_oversized_values_raise(self, tmp_path):
        store = AccessStore.open(str(tmp_path))
        with pytest.raises(StoreError):
            store.append(pa("W", 0x100, 8, 1 << 64, "w:big"), 0, 0)
        with pytest.raises(StoreError):
            store.append(pa("W", 0x100, 8, 1, "w:1"), 1 << 32, 0)

    def test_pending_visible_before_flush(self, tmp_path):
        store = AccessStore.open(str(tmp_path))
        store.append(pa("W", 0x100, 4, 1, "w:1"), 0, 0)
        ((access, _, _),) = store.load_bucket(True, 0x100)
        assert access.value == 1

    def test_durable_and_pending_merge_in_seq_order(self, tmp_path):
        store = AccessStore.open(str(tmp_path))
        store.append(pa("W", 0x100, 4, 1, "w:1"), 0, 0)
        store.flush()
        store.append(pa("W", 0x100, 4, 2, "w:2"), 1, 1)
        records = store.load_bucket(True, 0x100)
        assert [seq for _, _, seq in records] == [0, 1]

    def test_auto_flush_at_pending_limit(self, tmp_path):
        store = AccessStore.open(str(tmp_path), pending_limit=3)
        for seq in range(3):
            store.append(pa("W", 0x100, 4, seq, f"w:{seq}"), 0, seq)
        assert store._pending_records == 0  # limit hit -> flushed
        assert [seq for _, _, seq in store.load_bucket(True, 0x100)] == [0, 1, 2]


class TestLifecycle:
    @staticmethod
    def _populate(root, n=8):
        store = AccessStore.open(root)
        for seq in range(n):
            store.append(pa("W", 0x100 + 8 * seq, 4, seq, f"w:{seq}"), seq, seq)
        digest = store.checkpoint(n)
        return store, digest

    def test_reopen_adopts_matching_manifest(self, tmp_path):
        root = str(tmp_path)
        _, digest = self._populate(root)
        reopened = AccessStore.open(root)
        assert reopened.durable_seq == 8
        assert reopened.manifest_digest == digest
        assert reopened.stats["spilled_records"] == 8
        ((access, _, seq),) = reopened.load_bucket(True, 0x100)
        assert (access.value, seq) == (0, 0)

    def test_reopen_truncates_torn_tail(self, tmp_path):
        root = str(tmp_path)
        store, _ = self._populate(root)
        # Un-checkpointed appends, flushed to disk but past the manifest.
        store.append(pa("W", 0x100, 4, 99, "w:torn"), 99, 8)
        store.flush()
        reopened = AccessStore.open(root)
        records = reopened.load_bucket(True, 0x100)
        assert [value for (a, _, _) in records for value in [a.value]] == [0]

    def test_resume_skips_durable_prefix(self, tmp_path):
        """Re-appending the already-durable insert stream must not
        duplicate records, and the replayed string table must align
        interned ids with what is on disk."""
        root = str(tmp_path)
        self._populate(root)
        reopened = AccessStore.open(root)
        for seq in range(10):  # replay 0..7, then genuinely new 8..9
            reopened.append(pa("W", 0x100 + 8 * seq, 4, seq, f"w:{seq}"), seq, seq)
        reopened.flush()
        for seq in range(10):
            ((access, _, _),) = reopened.load_bucket(True, 0x100 + 8 * seq)
            assert access.ins == f"w:{seq}"

    def test_fingerprint_mismatch_wipes(self, tmp_path):
        root = str(tmp_path)
        store = AccessStore.open(root, fingerprint={"seed": 7})
        store.append(pa("W", 0x100, 4, 1, "w:1"), 0, 0)
        store.checkpoint(1)
        other = AccessStore.open(root, fingerprint={"seed": 8})
        assert other.durable_seq == 0
        assert other.load_bucket(True, 0x100) == []
        assert not os.path.exists(tmp_path / MANIFEST_NAME)

    def test_shard_geometry_mismatch_wipes(self, tmp_path):
        root = str(tmp_path)
        self._populate(root)
        other = AccessStore.open(root, shard_shift=6)
        assert other.durable_seq == 0

    def test_short_segment_raises(self, tmp_path):
        root = str(tmp_path)
        self._populate(root)
        (seg,) = [n for n in os.listdir(root) if n.endswith(".seg")]
        with open(os.path.join(root, seg), "r+b") as handle:
            handle.truncate(RECORD_SIZE)
        with pytest.raises(StoreError, match="shorter"):
            AccessStore.open(root)

    def test_misaligned_manifest_length_raises(self, tmp_path):
        root = str(tmp_path)
        self._populate(root)
        path = os.path.join(root, MANIFEST_NAME)
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["shards"][0]["length"] += 1
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StoreError, match="whole number of records"):
            AccessStore.open(root)


class TestCheckpointDigests:
    def test_digest_independent_of_flush_boundaries(self, tmp_path):
        stream = [
            (pa("W", 0x100 + 8 * seq, 4, seq, f"w:{seq}"), seq, seq)
            for seq in range(10)
        ]
        digests = []
        for limit in (1, 4, 1000):  # flush every record / sometimes / never
            root = str(tmp_path / f"lim{limit}")
            store = AccessStore.open(root, pending_limit=limit)
            for access, test_id, seq in stream:
                store.append(access, test_id, seq)
            digests.append(store.checkpoint(10))
        assert len(set(digests)) == 1

    def test_historical_digest_returned_on_reopen(self, tmp_path):
        root = str(tmp_path)
        store = AccessStore.open(root)
        store.append(pa("W", 0x100, 4, 1, "w:1"), 0, 0)
        round1 = store.checkpoint(1)
        store.append(pa("W", 0x108, 4, 2, "w:2"), 1, 1)
        round2 = store.checkpoint(2)
        assert round1 != round2
        # A resumed campaign replays the stream and re-checkpoints every
        # round boundary; old rounds must yield their *original* digest.
        reopened = AccessStore.open(root)
        reopened.append(pa("W", 0x100, 4, 1, "w:1"), 0, 0)
        assert reopened.checkpoint(1) == round1
        reopened.append(pa("W", 0x108, 4, 2, "w:2"), 1, 1)
        assert reopened.checkpoint(2) == round2

    def test_unknown_historical_checkpoint_is_divergence(self, tmp_path):
        root = str(tmp_path)
        store = AccessStore.open(root)
        store.append(pa("W", 0x100, 4, 1, "w:1"), 0, 0)
        store.append(pa("W", 0x108, 4, 2, "w:2"), 1, 1)
        store.checkpoint(2)
        reopened = AccessStore.open(root)
        with pytest.raises(StoreError, match="diverges"):
            reopened.checkpoint(1)  # never checkpointed at seq 1

    def test_checkpoint_below_watermark_raises(self, tmp_path):
        store = AccessStore.open(str(tmp_path))
        store.append(pa("W", 0x100, 4, 1, "w:1"), 0, 0)
        store.append(pa("W", 0x108, 4, 2, "w:2"), 1, 1)
        with pytest.raises(StoreError, match="already appended"):
            store.checkpoint(1)

    def test_manifest_digest_empty_before_checkpoint(self, tmp_path):
        store = AccessStore.open(str(tmp_path))
        assert store.manifest_digest == ""
        store.append(pa("W", 0x100, 4, 1, "w:1"), 0, 0)
        digest = store.checkpoint(1)
        assert store.manifest_digest == digest


# -- spilled index == in-memory index, bit for bit ----------------------------


def _spilled_index(tmp_path, name="spill"):
    """An index with an aggressively tiny hot tier and shard geometry,
    so even small corpora exercise eviction, cold probes and multiple
    segment files."""
    store = AccessStore.open(
        str(tmp_path / name), shard_shift=4, pending_limit=5, shard_cache_size=2
    )
    return AccessIndex(store=store, hot_capacity=4, cold_cache_size=2)


def _access_stream():
    return st.lists(
        st.tuples(
            st.booleans(),  # is_write
            st.integers(min_value=0, max_value=64),  # addr
            st.integers(min_value=1, max_value=8),  # size
            st.integers(min_value=0, max_value=3),  # value
        ),
        max_size=24,
    )


@given(accesses=_access_stream(), cuts=st.lists(st.integers(0, 24), max_size=3))
@settings(max_examples=60, deadline=None)
def test_property_spilled_delta_scans_identical_to_memory(
    tmp_path_factory, accesses, cuts
):
    """Across *any* split of the insert stream into delta rounds, the
    spilled index yields the same overlaps in the same order as the
    in-memory index, and each pair exactly once."""
    built = [
        pa("W" if w else "R", addr, size, value, f"{'w' if w else 'r'}:{i}")
        for i, (w, addr, size, value) in enumerate(accesses)
    ]
    bounds = sorted(min(c, len(built)) for c in cuts)
    chunks = []
    prev = 0
    for bound in bounds + [len(built)]:
        chunks.append(built[prev:bound])
        prev = bound

    memory = AccessIndex()
    spilled = _spilled_index(tmp_path_factory.mktemp("prop"))
    memory_pairs = []
    spilled_pairs = []
    for chunk in chunks:
        marks = (memory.mark(), spilled.mark())
        for i, access in enumerate(chunk):
            memory.insert(access, test_id=i)
            spilled.insert(access, test_id=i)
        memory_pairs.append(
            [
                (o.write.ins, o.read.ins, o.lo, o.hi)
                for o in memory.read_write_overlaps_since(marks[0])
            ]
        )
        spilled_pairs.append(
            [
                (o.write.ins, o.read.ins, o.lo, o.hi)
                for o in spilled.read_write_overlaps_since(marks[1])
            ]
        )
    assert spilled_pairs == memory_pairs  # same overlaps, same order
    flat = [pair for round_pairs in spilled_pairs for pair in round_pairs]
    assert sorted(flat) == sorted(
        (o.write.ins, o.read.ins, o.lo, o.hi)
        for o in memory.read_write_overlaps()
    )  # exactly once across rounds


@given(accesses=_access_stream(), split=st.integers(0, 24))
@settings(max_examples=40, deadline=None)
def test_property_spill_restore_preserves_pair_exactly_once(
    tmp_path_factory, accesses, split
):
    """Kill/resume across an arbitrary round split: round 1 inserts are
    checkpointed, the store is reopened cold, round 1's stream is
    replayed (skipped as durable) and round 2 proceeds — the delta scans
    must still partition the full scan exactly."""
    split = min(split, len(accesses))
    built = [
        pa("W" if w else "R", addr, size, value, f"{'w' if w else 'r'}:{i}")
        for i, (w, addr, size, value) in enumerate(accesses)
    ]
    tmp = tmp_path_factory.mktemp("restore")

    index = _spilled_index(tmp)
    pairs = []
    for i, access in enumerate(built[:split]):
        index.insert(access, test_id=i)
    pairs.extend(
        (o.write.ins, o.read.ins) for o in index.read_write_overlaps_since(0)
    )
    round1_digest = index.checkpoint()
    index.store.close()

    # Fresh process: reopen the store, replay round 1 (durable prefix,
    # append skips it), then run round 2 for real.
    store = AccessStore.open(
        str(tmp / "spill"), shard_shift=4, pending_limit=5, shard_cache_size=2
    )
    resumed = AccessIndex(store=store, hot_capacity=4, cold_cache_size=2)
    for i, access in enumerate(built[:split]):
        resumed.insert(access, test_id=i)
    assert resumed.checkpoint() == round1_digest
    mark = resumed.mark()
    for i, access in enumerate(built[split:]):
        resumed.insert(access, test_id=i)
    pairs.extend(
        (o.write.ins, o.read.ins)
        for o in resumed.read_write_overlaps_since(mark)
    )

    memory = AccessIndex()
    for i, access in enumerate(built):
        memory.insert(access, test_id=i)
    full = [(o.write.ins, o.read.ins) for o in memory.read_write_overlaps()]
    assert sorted(pairs) == sorted(full)


class TestIndexSpillMechanics:
    def test_eviction_keeps_scan_order(self, tmp_path):
        index = _spilled_index(tmp_path)
        memory = AccessIndex()
        stream = [
            pa("W", 16 * i, 8, i, f"w:{i}") for i in range(8)
        ] + [pa("R", 16 * i + 4, 8, 100 + i, f"r:{i}") for i in range(8)]
        for i, access in enumerate(stream):
            index.insert(access, test_id=i)
            memory.insert(access, test_id=i)
        assert index.store.stats["evictions"] > 0
        spilled = [(o.write.ins, o.read.ins) for o in index.read_write_overlaps()]
        in_mem = [(o.write.ins, o.read.ins) for o in memory.read_write_overlaps()]
        assert spilled == in_mem

    def test_tier_counts_bounded_by_capacity_plus_last_bucket(self, tmp_path):
        index = _spilled_index(tmp_path)
        for i in range(20):
            index.insert(pa("W", 16 * i, 4, i, f"w:{i}"), test_id=i)
        hot, total = index.tier_counts()
        assert total == 20
        assert hot <= index.hot_capacity + 1  # the just-touched bucket stays

    def test_hot_capacity_without_store_rejected(self):
        with pytest.raises(ValueError):
            AccessIndex(hot_capacity=10)

    def test_memory_mode_checkpoint_is_empty_string(self):
        assert AccessIndex().checkpoint() == ""

    def test_spill_dir_convenience_opens_store(self, tmp_path):
        index = AccessIndex(spill_dir=str(tmp_path / "spill"))
        index.insert(pa("W", 0x100, 4, 1, "w:1"), test_id=0)
        index.checkpoint()
        assert os.path.exists(tmp_path / "spill" / MANIFEST_NAME)


# -- the golden spilled campaign ----------------------------------------------

CONFIG = SnowboardConfig(
    seed=7, corpus_budget=120, trials_per_pmc=8, max_instructions=40_000
)
STRATEGY = "S-INS-PAIR"
ROUNDS = 2
ROUND_BUDGET = 4
GROWTH = 40


class Killed(BaseException):
    """Stands in for SIGKILL: not an Exception, nothing may catch it."""


def _spilled_config(tmp_path, hot_records):
    return dataclasses.replace(
        CONFIG,
        pmc_spill_dir=str(tmp_path / "pmcstore"),
        pmc_hot_records=hot_records,
    )


@pytest.fixture(scope="module")
def in_memory():
    sb = Snowboard(CONFIG).prepare()
    campaign = sb.run_rounds(
        ROUNDS, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH
    )
    return sb, campaign


@pytest.fixture(scope="module")
def hot_tenth(in_memory):
    """Hot capacity forced to ~1/10 of the in-memory access set."""
    writes, reads = in_memory[0].state.index.counts()
    return max(1, (writes + reads) // 10)


@pytest.fixture(scope="module")
def spilled(in_memory, hot_tenth, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("golden")
    sb = Snowboard(_spilled_config(tmp, hot_tenth)).prepare()
    campaign = sb.run_rounds(
        ROUNDS, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH
    )
    return sb, campaign


class TestSpilledCampaignGolden:
    def test_summary_bit_identical(self, in_memory, spilled):
        assert spilled[1].summary() == in_memory[1].summary()

    def test_repro_packages_identical(self, in_memory, spilled):
        memory_sb, spilled_sb = in_memory[0], spilled[0]
        assert set(spilled_sb.repro_packages) == set(memory_sb.repro_packages)
        for bug_id, package in memory_sb.repro_packages.items():
            assert spilled_sb.repro_packages[bug_id].to_json() == package.to_json()

    def test_round_log_identical_modulo_store_digest(self, in_memory, spilled):
        stripped = [
            dataclasses.replace(info, store_digest="")
            for info in spilled[0].state.rounds_log
        ]
        assert stripped == in_memory[0].state.rounds_log
        assert all(info.store_digest for info in spilled[0].state.rounds_log)

    def test_spill_actually_happened(self, in_memory, spilled, hot_tenth):
        stats = spilled[0].state.index.store.stats
        assert stats["evictions"] > 0
        assert stats["cold_probes"] > 0
        assert stats["spilled_records"] >= sum(in_memory[0].state.index.counts())
        hot, total = spilled[0].state.index.tier_counts()
        assert total >= 10 * hot_tenth - 10  # the forced 1/10 ratio held
        manifest = os.path.join(spilled[0].config.pmc_spill_dir, MANIFEST_NAME)
        assert os.path.exists(manifest)

    def test_funnel_totals_bit_identical_and_tiers_reported(
        self, hot_tenth, tmp_path
    ):
        sinks = []
        for config in (CONFIG, _spilled_config(tmp_path, hot_tenth)):
            sink = MemorySink()
            sb = Snowboard(config, observer=Observer(sink))
            sb.run_rounds(ROUNDS, ROUND_BUDGET, strategy=STRATEGY, corpus_growth=GROWTH)
            sinks.append(sink)
        stats = [aggregate_trace({}, s.events) for s in sinks]
        totals = [funnel_totals(s) for s in stats]
        assert totals[0] == totals[1]
        assert totals[0]  # not vacuously equal
        assert store_tiers(stats[0]) is None  # in-memory: no tier table
        tiers = store_tiers(stats[1])
        assert tiers is not None
        assert tiers["evictions"] > 0
        assert 0.0 <= tiers["hot_rate"] <= 1.0

    def test_spilled_kill_and_resume(self, in_memory, hot_tenth, tmp_path):
        """Killed mid-round-2, resumed from the journal + store manifest:
        bit-identical summary, and the round records' store digests
        verify against the store's checkpoint history."""
        config = _spilled_config(tmp_path, hot_tenth)
        journal = str(tmp_path / "journal.jsonl")
        kill_after = in_memory[0].state.rounds_log[0].ntests + 2

        sb = Snowboard(config).prepare()
        original = Snowboard.execute_test
        calls = {"n": 0}

        def dying(self, *args, **kwargs):
            if calls["n"] >= kill_after:
                raise Killed()
            calls["n"] += 1
            return original(self, *args, **kwargs)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(Snowboard, "execute_test", dying)
            with pytest.raises(Killed):
                sb.run_rounds(
                    ROUNDS,
                    ROUND_BUDGET,
                    strategy=STRATEGY,
                    corpus_growth=GROWTH,
                    checkpoint_path=journal,
                )

        resumed_sb = Snowboard(config).prepare()
        resumed = resumed_sb.run_rounds(
            ROUNDS,
            ROUND_BUDGET,
            strategy=STRATEGY,
            corpus_growth=GROWTH,
            checkpoint_path=journal,
            resume=True,
        )
        assert resumed.summary() == in_memory[1].summary()
        stripped = [
            dataclasses.replace(info, store_digest="")
            for info in resumed_sb.state.rounds_log
        ]
        assert stripped == in_memory[0].state.rounds_log


class TestStoreCli:
    def test_hot_mb_requires_spill_dir(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--pmc-hot-mb", "1"]) == 2
        assert "--pmc-spill-dir" in capsys.readouterr().err

    def test_spilled_campaign_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "campaign",
                "--strategy",
                STRATEGY,
                "--budget",
                "2",
                "--rounds",
                "1",
                "--seed",
                "7",
                "--pmc-spill-dir",
                str(tmp_path / "spill"),
                "--pmc-hot-mb",
                "0.001",
            ]
        )
        assert rc == 0
        assert os.path.exists(tmp_path / "spill" / MANIFEST_NAME)
