"""Cross-cutting property-based tests: the invariants the system rests on."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.datarace import RaceDetector
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.machine.accesses import AccessType, MemoryAccess
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


@pytest.fixture(scope="module")
def ex():
    kernel, snapshot = boot_kernel()
    return Executor(kernel, snapshot)


class TestExecutionDeterminism:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_everything(self, ex, seed):
        """Concurrent execution is a pure function of (tests, schedule seed)."""
        a = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
        b = prog(Call("msgget", (2,)), Call("msgsnd", (2, 9)))
        r1 = ex.run_concurrent([a, b], scheduler=RandomScheduler(seed=seed))
        r2 = ex.run_concurrent([a, b], scheduler=RandomScheduler(seed=seed))
        assert r1.returns == r2.returns
        assert r1.console == r2.console
        assert r1.switch_points == r2.switch_points
        assert [x.value for x in r1.accesses] == [x.value for x in r2.accesses]

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=20, deadline=None)
    def test_generated_programs_always_run(self, ex, seed):
        """Any fuzzer-generated program executes without crashing the
        harness (kernel panics are legal results, Python errors are not)."""
        program = ProgramGenerator(seed=seed).generate()
        result = ex.run_sequential(program)
        assert result.instructions >= 0
        assert len(result.returns[0]) <= len(program)


class TestKernelInvariants:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_fifo_never_invents_values(self, ex, seed):
        """Under any interleaving, FIFO reads only return written values
        (the ring is fully locked — linearizability's cheap cousin)."""
        writer = prog(
            Call("fifo_open", (0,)),
            Call("fifo_write", (Res(0), 101)),
            Call("fifo_write", (Res(0), 102)),
        )
        reader = prog(
            Call("fifo_open", (0,)),
            Call("fifo_read", (Res(0),)),
            Call("fifo_read", (Res(0),)),
        )
        result = ex.run_concurrent(
            [writer, reader], scheduler=RandomScheduler(seed=seed)
        )
        assert result.completed
        reads = [v for v in result.returns[1][1:] if v >= 0]
        assert all(v in (101, 102) for v in reads)
        # FIFO order: if both reads succeeded, 101 came first.
        if len(reads) == 2:
            assert reads == [101, 102]

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_locked_sem_never_loses_updates(self, ex, seed):
        """semop is fully locked: concurrent +2/+2 always lands on 5."""
        test = prog(Call("semget", (1,)), Call("semop", (1, 6)))  # +2 each
        result = ex.run_concurrent([test, test], scheduler=RandomScheduler(seed=seed))
        assert result.completed
        check = ex.run_concurrent(
            [test, test],
            scheduler=RandomScheduler(seed=seed),
        )
        # Re-query within one execution instead: run a third program.
        final = ex.run_concurrent(
            [prog(Call("semget", (1,)), Call("semop", (1, 6)), Call("semctl", (1, 1))),
             prog(Call("semget", (1,)), Call("semop", (1, 6)))],
            scheduler=RandomScheduler(seed=seed),
        )
        assert final.completed
        # The value itself is protected by the per-semaphore lock, but
        # semget's check-then-create has a (realistic) duplicate-creation
        # race: racing creators can insert two instances for one key, so
        # GETVAL may land on a fresh instance (1), one increment (3) or
        # both (5) — but never a torn/lost-update value like 2 or 4.
        assert final.returns[0][2] in (1, 3, 5)


class TestAnalysisInvariants:
    def _two_profiles(self, ex):
        a = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
        b = prog(Call("msgget", (2,)))
        pa = profile_from_result(0, a, ex.run_sequential(a))
        pb = profile_from_result(1, b, ex.run_sequential(b))
        return pa, pb

    def test_identification_is_order_insensitive(self, ex):
        pa, pb = self._two_profiles(ex)
        forward = identify_pmcs([pa, pb])
        backward = identify_pmcs([pb, pa])
        assert set(forward.pmcs) == set(backward.pmcs)
        for pmc in forward:
            assert set(forward.pairs(pmc)) == set(backward.pairs(pmc))

    def test_profiling_is_idempotent(self, ex):
        program = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        p1 = profile_from_result(0, program, ex.run_sequential(program))
        p2 = profile_from_result(0, program, ex.run_sequential(program))
        assert {a.key() for a in p1.accesses} == {a.key() for a in p2.accesses}

    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),  # addr
                st.sampled_from(["R", "W"]),
                st.integers(min_value=1, max_value=4),  # size
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_single_thread_never_races(self, stream):
        """A one-thread access stream can never produce a race report."""
        detector = RaceDetector()
        for seq, (addr, kind, size) in enumerate(stream):
            detector.on_access(
                MemoryAccess(
                    seq=seq,
                    thread=0,
                    type=AccessType.READ if kind == "R" else AccessType.WRITE,
                    addr=addr,
                    size=size,
                    value=0,
                    ins=f"x.py:f:{seq}",
                )
            )
        assert detector.reports() == []

    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # thread
                st.integers(min_value=0, max_value=20),  # addr
                st.sampled_from(["R", "W"]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_globally_locked_streams_never_race(self, stream):
        """If every access happens inside one global lock, the detector
        must stay silent whatever the interleaving (HB soundness)."""
        from repro.kernel.ops import SyncOp

        detector = RaceDetector()
        for seq, (thread, addr, kind) in enumerate(stream):
            detector.on_sync(thread, SyncOp("acquire", 0x999, "s:1"))
            detector.on_access(
                MemoryAccess(
                    seq=seq,
                    thread=thread,
                    type=AccessType.READ if kind == "R" else AccessType.WRITE,
                    addr=addr,
                    size=1,
                    value=0,
                    ins=f"x.py:f:{seq}",
                )
            )
            detector.on_sync(thread, SyncOp("release", 0x999, "s:1"))
        assert detector.reports() == []
