"""Tests for the synchronisation primitives.

Semantics are tested two ways: single-threaded via the boot runner (no
scheduling), and two-threaded under the executor with adversarial random
scheduling to confirm mutual exclusion actually holds.
"""

import pytest

from repro.fuzz.prog import Call, prog
from repro.kernel import sync
from repro.kernel.kernel import boot_kernel
from repro.machine.snapshot import Snapshot
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


@pytest.fixture()
def k():
    kernel, _ = boot_kernel()
    return kernel


def lock_addr(kernel):
    return kernel.static_alloc("", 4)


class TestSpinlockSemantics:
    def test_lock_sets_owner_word(self, k):
        ctx = k.make_context(0)
        lock = lock_addr(k)
        k.boot_run(sync.spin_lock(ctx, lock))
        assert k.machine.memory.read_int(lock, 4) == 1  # 1 + thread 0

    def test_unlock_clears(self, k):
        ctx = k.make_context(0)
        lock = lock_addr(k)
        k.boot_run(sync.spin_lock(ctx, lock))
        k.boot_run(sync.spin_unlock(ctx, lock))
        assert k.machine.memory.read_int(lock, 4) == 0

    def test_trylock_fails_when_held(self, k):
        ctx0 = k.make_context(0)
        ctx1 = k.make_context(1)
        lock = lock_addr(k)
        k.boot_run(sync.spin_lock(ctx0, lock))
        assert k.boot_run(sync.spin_trylock(ctx1, lock)) is False

    def test_trylock_succeeds_when_free(self, k):
        ctx = k.make_context(0)
        lock = lock_addr(k)
        assert k.boot_run(sync.spin_trylock(ctx, lock)) is True


class TestSeqlockSemantics:
    def test_writer_makes_sequence_odd_then_even(self, k):
        ctx = k.make_context(0)
        seq = k.static_alloc("", 4)
        lock = k.static_alloc("", 4)
        k.boot_run(sync.write_seqlock(ctx, seq, lock))
        assert k.machine.memory.read_int(seq, 4) % 2 == 1
        k.boot_run(sync.write_sequnlock(ctx, seq, lock))
        assert k.machine.memory.read_int(seq, 4) % 2 == 0

    def test_read_seqretry_detects_change(self, k):
        ctx = k.make_context(0)
        seq = k.static_alloc("", 4)
        lock = k.static_alloc("", 4)
        start = k.boot_run(sync.read_seqbegin(ctx, seq))
        k.boot_run(sync.write_seqlock(ctx, seq, lock))
        k.boot_run(sync.write_sequnlock(ctx, seq, lock))
        assert k.boot_run(sync.read_seqretry(ctx, seq, start)) is True

    def test_read_seqretry_clean(self, k):
        ctx = k.make_context(0)
        seq = k.static_alloc("", 4)
        start = k.boot_run(sync.read_seqbegin(ctx, seq))
        assert k.boot_run(sync.read_seqretry(ctx, seq, start)) is False


class TestMutualExclusionUnderConcurrency:
    """A locked read-modify-write counter must never lose updates."""

    ROUNDS = 5

    def _install_counter_syscall(self):
        kernel, _ = boot_kernel()
        counter = kernel.static_alloc("test_counter", 8)
        lock = kernel.static_alloc("test_counter_lock", 4)

        def sys_locked_incr(ctx):
            for _ in range(self.ROUNDS):
                yield from sync.spin_lock(ctx, lock)
                value = yield from ctx.load_word(counter)
                yield from ctx.store_word(counter, value + 1)
                yield from sync.spin_unlock(ctx, lock)
            final = yield from ctx.load_word(counter)
            return final

        kernel.register_syscall("locked_incr", sys_locked_incr)
        snapshot = Snapshot.capture(kernel.machine)
        return kernel, snapshot, counter

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_lost_updates_under_adversarial_schedule(self, seed):
        kernel, snapshot, counter = self._install_counter_syscall()
        executor = Executor(kernel, snapshot)
        program = prog(Call("locked_incr", ()))
        result = executor.run_concurrent(
            [program, program], scheduler=RandomScheduler(seed=seed)
        )
        assert result.completed, (result.panic_message, result.deadlocked)
        assert kernel.machine.memory.read_int(counter, 8) == 2 * self.ROUNDS


class TestRcu:
    def test_synchronize_waits_for_reader(self):
        """synchronize_rcu must not return while the peer reads."""
        kernel, _ = boot_kernel()
        cell = kernel.static_alloc("cell", 8)
        order = []

        def sys_reader(ctx):
            yield from sync.rcu_read_lock(ctx)
            value = yield from sync.rcu_dereference(ctx, cell)
            order.append("read")
            yield from sync.rcu_read_unlock(ctx)
            return value

        def sys_writer(ctx):
            yield from sync.rcu_assign_pointer(ctx, cell, 1)
            yield from sync.synchronize_rcu(ctx)
            order.append("reclaim")
            return 0

        kernel.register_syscall("rcu_reader", sys_reader)
        kernel.register_syscall("rcu_writer", sys_writer)
        snapshot = Snapshot.capture(kernel.machine)
        executor = Executor(kernel, snapshot)

        class SwitchEarly:
            """Force the writer to reach synchronize_rcu mid-read."""

            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                # Switch to the writer right after the reader's deref.
                if access.thread == 0 and not self.switched and "rcu_dereference" in access.ins:
                    self.switched = True
                    return True
                return False

        result = executor.run_concurrent(
            [prog(Call("rcu_reader", ())), prog(Call("rcu_writer", ()))],
            scheduler=SwitchEarly(),
        )
        assert result.completed
        assert order == ["read", "reclaim"]
