"""Unit tests for the happens-before race detector (synthetic streams)."""


from repro.detect.datarace import RaceDetector
from repro.kernel.ops import SyncOp
from repro.machine.accesses import AccessType, MemoryAccess

_SEQ = [0]


def acc(thread, type, addr, size=8, value=0, ins=None):
    _SEQ[0] += 1
    return MemoryAccess(
        seq=_SEQ[0],
        thread=thread,
        type=AccessType.READ if type == "R" else AccessType.WRITE,
        addr=addr,
        size=size,
        value=value,
        ins=ins or f"mod.py:fn{thread}:{_SEQ[0]}",
    )


def sync(kind, obj=0x1000):
    return SyncOp(kind=kind, obj=obj, ins="sync.py:s:1")


class TestPlainRaces:
    def test_write_read_race_detected(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100))
        d.on_access(acc(1, "R", 0x100))
        assert len(d.reports()) == 1

    def test_write_write_race_detected(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100))
        d.on_access(acc(1, "W", 0x100))
        assert len(d.reports()) == 1

    def test_read_then_write_race_detected(self):
        d = RaceDetector()
        d.on_access(acc(0, "R", 0x100))
        d.on_access(acc(1, "W", 0x100))
        assert len(d.reports()) == 1

    def test_read_read_is_not_a_race(self):
        d = RaceDetector()
        d.on_access(acc(0, "R", 0x100))
        d.on_access(acc(1, "R", 0x100))
        assert d.reports() == []

    def test_same_thread_never_races(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100))
        d.on_access(acc(0, "R", 0x100))
        d.on_access(acc(0, "W", 0x100))
        assert d.reports() == []

    def test_disjoint_addresses_do_not_race(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100, size=4))
        d.on_access(acc(1, "R", 0x104, size=4))
        assert d.reports() == []

    def test_partial_overlap_races(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100, size=8))
        d.on_access(acc(1, "R", 0x104, size=2))
        assert len(d.reports()) == 1

    def test_dedup_by_instruction_pair(self):
        d = RaceDetector()
        for _ in range(5):
            d.on_access(acc(0, "W", 0x100, ins="a.py:w:1"))
            d.on_access(acc(1, "R", 0x100, ins="a.py:r:2"))
        assert len(d.reports()) == 1

    def test_distinct_instruction_pairs_reported_separately(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100, ins="a.py:w:1"))
        d.on_access(acc(1, "R", 0x100, ins="a.py:r:2"))
        d.on_access(acc(1, "R", 0x100, ins="a.py:r:3"))
        assert len(d.reports()) == 2


class TestLockSynchronisation:
    def test_lock_protected_accesses_do_not_race(self):
        d = RaceDetector()
        d.on_sync(0, sync("acquire"))
        d.on_access(acc(0, "W", 0x100))
        d.on_sync(0, sync("release"))
        d.on_sync(1, sync("acquire"))
        d.on_access(acc(1, "R", 0x100))
        d.on_sync(1, sync("release"))
        assert d.reports() == []

    def test_different_locks_do_not_synchronise(self):
        """The #9 MAC bug shape: writer under lock A, reader under lock B."""
        d = RaceDetector()
        d.on_sync(0, sync("acquire", obj=0x1000))
        d.on_access(acc(0, "W", 0x100))
        d.on_sync(0, sync("release", obj=0x1000))
        d.on_sync(1, sync("acquire", obj=0x2000))
        d.on_access(acc(1, "R", 0x100))
        d.on_sync(1, sync("release", obj=0x2000))
        assert len(d.reports()) == 1

    def test_lock_edge_covers_earlier_plain_writes(self):
        """Everything before a release is ordered for the next acquirer."""
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x300))  # plain, before the critical section
        d.on_sync(0, sync("acquire"))
        d.on_sync(0, sync("release"))
        d.on_sync(1, sync("acquire"))
        d.on_access(acc(1, "R", 0x300))
        assert d.reports() == []

    def test_reader_without_lock_races_with_locked_writer(self):
        d = RaceDetector()
        d.on_sync(0, sync("acquire"))
        d.on_access(acc(0, "W", 0x100))
        d.on_sync(0, sync("release"))
        d.on_access(acc(1, "R", 0x100))  # no lock at all
        assert len(d.reports()) == 1


class TestAtomics:
    def test_both_atomic_never_race(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100), atomic=True)
        d.on_access(acc(1, "R", 0x100), atomic=True)
        assert d.reports() == []

    def test_atomic_vs_plain_still_races(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100), atomic=True)
        d.on_access(acc(1, "R", 0x100), atomic=False)
        assert len(d.reports()) == 1

    def test_release_acquire_orders_prior_plain_stores(self):
        """The RCU-publish pattern: plain init, atomic publish, atomic
        consume, plain read of the init — no race."""
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x200))  # plain init of the object
        d.on_access(acc(0, "W", 0x100, value=0x200), atomic=True)  # publish
        d.on_access(acc(1, "R", 0x100, value=0x200), atomic=True)  # consume
        d.on_access(acc(1, "R", 0x200))  # read the object: ordered
        assert d.reports() == []

    def test_plain_write_after_publish_is_not_ordered(self):
        """The l2tp shape: a plain write *after* the publish would race
        with the consumer's plain read (which is why the kernel uses
        WRITE_ONCE there)."""
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100, value=0x200), atomic=True)  # publish
        d.on_access(acc(0, "W", 0x208))  # plain init AFTER publish (buggy)
        d.on_access(acc(1, "R", 0x100, value=0x200), atomic=True)  # consume
        d.on_access(acc(1, "R", 0x208))  # plain read: races
        assert len(d.reports()) == 1


class TestRcu:
    def test_synchronize_orders_after_reader_unlock(self):
        d = RaceDetector()
        d.on_sync(0, sync("rcu_read_lock"))
        d.on_access(acc(0, "R", 0x100))
        d.on_sync(0, sync("rcu_read_unlock"))
        d.on_sync(1, sync("rcu_synchronize"))
        d.on_access(acc(1, "W", 0x100))  # after the grace period: ordered
        assert d.reports() == []

    def test_reader_still_races_without_grace_period(self):
        d = RaceDetector()
        d.on_sync(0, sync("rcu_read_lock"))
        d.on_access(acc(0, "R", 0x100))
        d.on_sync(0, sync("rcu_read_unlock"))
        d.on_access(acc(1, "W", 0x100))  # no synchronize_rcu
        assert len(d.reports()) == 1


class TestReportShape:
    def test_report_carries_both_sides(self):
        d = RaceDetector()
        d.on_access(acc(0, "W", 0x100, value=7, ins="w.py:writer:9"))
        d.on_access(acc(1, "R", 0x100, value=3, ins="r.py:reader:4"))
        (report,) = d.reports()
        assert {report.ins_a, report.ins_b} == {"w.py:writer:9", "r.py:reader:4"}
        assert {report.type_a, report.type_b} == {"W", "R"}
        assert report.involves("writer")
        assert report.involves("reader")
        assert not report.involves("nothing")

    def test_key_is_order_insensitive(self):
        d1 = RaceDetector()
        d1.on_access(acc(0, "W", 0x100, ins="a.py:x:1"))
        d1.on_access(acc(1, "R", 0x100, ins="a.py:y:2"))
        d2 = RaceDetector()
        d2.on_access(acc(1, "R", 0x100, ins="a.py:y:2"))
        d2.on_access(acc(0, "W", 0x100, ins="a.py:x:1"))
        assert d1.reports()[0].key == d2.reports()[0].key
