"""Tests for deterministic bug reproduction (schedule replay, section 6)."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler
from repro.sched.snowboard import SnowboardScheduler


@pytest.fixture(scope="module")
def booted():
    kernel, snapshot = boot_kernel()
    return kernel, Executor(kernel, snapshot)


def find_bug_run(ex, writer, reader, max_seeds=80, probability=0.4):
    """Random-explore until a panic; returns the buggy result."""
    for seed in range(max_seeds):
        scheduler = RandomScheduler(seed=seed, switch_probability=probability)
        scheduler.begin_trial(0)
        result = ex.run_concurrent([writer, reader], scheduler=scheduler)
        if result.panicked:
            return result
    pytest.fail("no panic found to replay")


class TestSwitchPointRecording:
    def test_switch_points_recorded(self, booted):
        _, ex = booted
        a = prog(Call("msgget", (1,)), Call("msgsnd", (1, 2)))
        result = ex.run_concurrent(
            [a, a], scheduler=RandomScheduler(seed=1, switch_probability=0.5)
        )
        assert len(result.switch_points) == result.switches
        assert result.switch_points == sorted(result.switch_points)

    def test_no_scheduler_single_handoff(self, booted):
        _, ex = booted
        a = prog(Call("msgget", (1,)))
        result = ex.run_concurrent([a, a])
        # Only the handoff when thread 0 finishes; it is not a recorded
        # scheduler switch (done-thread rotation is implicit).
        assert result.switch_points == []


class TestReplay:
    def test_replay_reproduces_a_panic(self, booted):
        """The paper: 'in all cases we evaluated, Snowboard was able to
        reproduce found bugs.'"""
        kernel, ex = booted
        writer = prog(Call("mkdir", (2,)))
        reader = prog(Call("lookup", (2,)))
        children = kernel.globals["configfs_root"] + 8

        class ForcePublishWindow:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_write
                    and access.addr == children
                    and access.value != 0
                ):
                    self.switched = True
                    return True
                return False

        buggy = ex.run_concurrent([writer, reader], scheduler=ForcePublishWindow())
        assert buggy.panicked

        replayed = ex.run_concurrent(
            [writer, reader], replay_switch_points=buggy.switch_points
        )
        assert replayed.panicked
        assert replayed.panic_message == buggy.panic_message
        assert replayed.console == buggy.console

    def test_replay_reproduces_the_full_trace(self, booted):
        _, ex = booted
        a = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
        b = prog(Call("msgget", (2,)))
        original = ex.run_concurrent(
            [a, b], scheduler=RandomScheduler(seed=5, switch_probability=0.3)
        )
        replayed = ex.run_concurrent([a, b], replay_switch_points=original.switch_points)
        assert [x.value for x in replayed.accesses] == [
            x.value for x in original.accesses
        ]
        assert [x.thread for x in replayed.accesses] == [
            x.thread for x in original.accesses
        ]
        assert replayed.returns == original.returns

    def test_replay_of_snowboard_guided_run(self, booted):
        """Replays work regardless of which scheduler produced the run."""
        _, ex = booted
        from repro.pmc.identify import identify_pmcs
        from repro.profile.profiler import profile_from_result

        writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        reader = prog(
            Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
        )
        pw = profile_from_result(0, writer, ex.run_sequential(writer))
        pr = profile_from_result(1, reader, ex.run_sequential(reader))
        pmcset = identify_pmcs([pw, pr])
        pmc = next(
            p
            for p in pmcset
            if (0, 1) in pmcset.pairs(p) and "l2tp_tunnel_register" in p.write.ins
        )
        scheduler = SnowboardScheduler(pmc, seed=3)
        buggy = None
        for trial in range(64):
            scheduler.begin_trial(trial)
            result = ex.run_concurrent([writer, reader], scheduler=scheduler)
            if result.panicked:
                buggy = result
                break
            scheduler.end_trial(result)
        assert buggy is not None
        replayed = ex.run_concurrent(
            [writer, reader], replay_switch_points=buggy.switch_points
        )
        assert replayed.panicked
        assert replayed.panic_message == buggy.panic_message

    def test_empty_replay_runs_threads_back_to_back(self, booted):
        _, ex = booted
        a = prog(Call("msgget", (1,)))
        result = ex.run_concurrent([a, a], replay_switch_points=[])
        assert result.completed
        assert result.switches == 0
