"""Tests for the access index and Algorithm 1 (PMC identification)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.prog import Program
from repro.machine.accesses import AccessType
from repro.pmc.identify import identify_pmcs
from repro.pmc.index import AccessIndex
from repro.pmc.model import PMC, AccessKey
from repro.profile.profiler import ProfiledAccess, TestProfile

EMPTY = Program(())


def pa(type, addr, size, value, ins, df=False):
    return ProfiledAccess(
        type=AccessType.READ if type == "R" else AccessType.WRITE,
        addr=addr,
        size=size,
        value=value,
        ins=ins,
        df_leader=df,
    )


def profile(test_id, *accesses):
    return TestProfile(test_id=test_id, program=EMPTY, accesses=tuple(accesses), instructions=0)


class TestAccessIndex:
    def test_overlap_found(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 8, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x104, 4, 2, "r:1"), test_id=1)
        overlaps = list(index.read_write_overlaps())
        assert len(overlaps) == 1
        assert (overlaps[0].lo, overlaps[0].hi) == (0x104, 0x108)

    def test_adjacent_ranges_do_not_overlap(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 4, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x104, 4, 2, "r:1"), test_id=1)
        assert list(index.read_write_overlaps()) == []

    def test_read_read_pairs_not_returned(self):
        index = AccessIndex()
        index.insert(pa("R", 0x100, 4, 1, "r:1"), test_id=0)
        index.insert(pa("R", 0x100, 4, 2, "r:2"), test_id=1)
        assert list(index.read_write_overlaps()) == []

    def test_counts(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 4, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x100, 4, 1, "r:1"), test_id=0)
        index.insert(pa("R", 0x200, 4, 1, "r:2"), test_id=0)
        assert index.counts() == (1, 2)

    def test_same_test_can_pair_with_itself(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 8, 1, "w:1"), test_id=3)
        index.insert(pa("R", 0x100, 8, 0, "r:1"), test_id=3)
        (overlap,) = index.read_write_overlaps()
        assert overlap.write_test == overlap.read_test == 3


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=96),
            st.integers(min_value=1, max_value=8),
        ),
        max_size=12,
    ),
    reads=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=96),
            st.integers(min_value=1, max_value=8),
        ),
        max_size=12,
    ),
)
@settings(max_examples=100, deadline=None)
def test_property_index_matches_naive_quadratic_scan(writes, reads):
    """The ordered nested index finds exactly the naive overlap set."""
    index = AccessIndex()
    waccs, raccs = [], []
    for i, (addr, size) in enumerate(writes):
        access = pa("W", addr, size, i, f"w:{i}")
        index.insert(access, test_id=i)
        waccs.append(access)
    for i, (addr, size) in enumerate(reads):
        access = pa("R", addr, size, i, f"r:{i}")
        index.insert(access, test_id=100 + i)
        raccs.append(access)

    naive = {
        (w.ins, r.ins)
        for w in waccs
        for r in raccs
        if max(w.addr, r.addr) < min(w.end, r.end)
    }
    indexed = {(o.write.ins, o.read.ins) for o in index.read_write_overlaps()}
    assert indexed == naive


class TestIdentifyPmcs:
    def test_differing_values_make_a_pmc(self):
        profiles = [
            profile(0, pa("W", 0x100, 8, 0xAA, "w:1")),
            profile(1, pa("R", 0x100, 8, 0xBB, "r:1")),
        ]
        pmcset = identify_pmcs(profiles)
        assert len(pmcset) == 1
        (pmc,) = pmcset
        assert pmcset.pairs(pmc) == [(0, 1)]

    def test_equal_values_are_not_a_pmc(self):
        """Algorithm 1 line 11: same projected value -> no communication."""
        profiles = [
            profile(0, pa("W", 0x100, 8, 0xAA, "w:1")),
            profile(1, pa("R", 0x100, 8, 0xAA, "r:1")),
        ]
        assert len(identify_pmcs(profiles)) == 0

    def test_projection_on_partial_overlap(self):
        """Values equal on the overlapping window -> no PMC, even though
        the full access values differ."""
        profiles = [
            # write bytes 0x100..0x108 with low word 0x55 at offset 4..
            profile(0, pa("W", 0x100, 8, 0x55_00000000, "w:1")),
            # read bytes 0x104..0x108: sees 0x55 as well
            profile(1, pa("R", 0x104, 4, 0x55, "r:1")),
        ]
        assert len(identify_pmcs(profiles)) == 0

    def test_projection_detects_window_difference(self):
        profiles = [
            profile(0, pa("W", 0x100, 8, 0x99_00000000, "w:1")),
            profile(1, pa("R", 0x104, 4, 0x55, "r:1")),
        ]
        pmcset = identify_pmcs(profiles)
        assert len(pmcset) == 1

    def test_multiple_pairs_map_to_one_pmc(self):
        """Identical access keys from different tests share the PMC entry."""
        profiles = [
            profile(0, pa("W", 0x100, 8, 1, "w:1")),
            profile(1, pa("W", 0x100, 8, 1, "w:1")),
            profile(2, pa("R", 0x100, 8, 0, "r:1")),
        ]
        pmcset = identify_pmcs(profiles)
        assert len(pmcset) == 1
        (pmc,) = pmcset
        assert set(pmcset.pairs(pmc)) == {(0, 2), (1, 2)}

    def test_df_leader_carried_onto_pmc(self):
        profiles = [
            profile(0, pa("W", 0x100, 8, 1, "w:1")),
            profile(1, pa("R", 0x100, 8, 0, "r:1", df=True)),
        ]
        (pmc,) = identify_pmcs(profiles)
        assert pmc.df_leader

    def test_writes_do_not_pair_with_writes(self):
        profiles = [
            profile(0, pa("W", 0x100, 8, 1, "w:1")),
            profile(1, pa("W", 0x100, 8, 2, "w:2")),
        ]
        assert len(identify_pmcs(profiles)) == 0

    def test_pair_order_is_writer_then_reader(self):
        profiles = [
            profile(5, pa("R", 0x100, 8, 0, "r:1")),
            profile(9, pa("W", 0x100, 8, 1, "w:1")),
        ]
        (pmc,) = identify_pmcs(profiles)
        assert identify_pmcs(profiles).pairs(pmc) == [(9, 5)]


class TestPmcModel:
    def test_overlap_window(self):
        pmc = PMC(
            write=AccessKey(0x100, 8, "w:1", 1),
            read=AccessKey(0x104, 8, "r:1", 2),
        )
        assert pmc.overlap == (0x104, 0x108)

    def test_unaligned_flag(self):
        aligned = PMC(write=AccessKey(0x100, 8, "w", 1), read=AccessKey(0x100, 8, "r", 2))
        unaligned = PMC(write=AccessKey(0x100, 8, "w", 1), read=AccessKey(0x104, 4, "r", 2))
        assert not aligned.unaligned
        assert unaligned.unaligned

    def test_pmcs_are_hashable_and_comparable(self):
        a = PMC(write=AccessKey(0x100, 8, "w", 1), read=AccessKey(0x100, 8, "r", 2))
        b = PMC(write=AccessKey(0x100, 8, "w", 1), read=AccessKey(0x100, 8, "r", 2))
        assert a == b
        assert len({a, b}) == 1
