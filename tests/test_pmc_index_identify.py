"""Tests for the access index and Algorithm 1 (PMC identification),
including their incremental (delta) forms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.prog import Program
from repro.machine.accesses import AccessType
from repro.pmc.identify import PmcSet, identify_delta, identify_pmcs
from repro.pmc.index import MAX_ACCESS_SIZE, AccessIndex
from repro.pmc.model import PMC, AccessKey
from repro.profile.profiler import ProfiledAccess, TestProfile

EMPTY = Program(())


def pa(type, addr, size, value, ins, df=False):
    return ProfiledAccess(
        type=AccessType.READ if type == "R" else AccessType.WRITE,
        addr=addr,
        size=size,
        value=value,
        ins=ins,
        df_leader=df,
    )


def profile(test_id, *accesses):
    return TestProfile(test_id=test_id, program=EMPTY, accesses=tuple(accesses), instructions=0)


class TestAccessIndex:
    def test_overlap_found(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 8, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x104, 4, 2, "r:1"), test_id=1)
        overlaps = list(index.read_write_overlaps())
        assert len(overlaps) == 1
        assert (overlaps[0].lo, overlaps[0].hi) == (0x104, 0x108)

    def test_adjacent_ranges_do_not_overlap(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 4, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x104, 4, 2, "r:1"), test_id=1)
        assert list(index.read_write_overlaps()) == []

    def test_read_read_pairs_not_returned(self):
        index = AccessIndex()
        index.insert(pa("R", 0x100, 4, 1, "r:1"), test_id=0)
        index.insert(pa("R", 0x100, 4, 2, "r:2"), test_id=1)
        assert list(index.read_write_overlaps()) == []

    def test_counts(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 4, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x100, 4, 1, "r:1"), test_id=0)
        index.insert(pa("R", 0x200, 4, 1, "r:2"), test_id=0)
        assert index.counts() == (1, 2)

    def test_same_test_can_pair_with_itself(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 8, 1, "w:1"), test_id=3)
        index.insert(pa("R", 0x100, 8, 0, "r:1"), test_id=3)
        (overlap,) = index.read_write_overlaps()
        assert overlap.write_test == overlap.read_test == 3


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=96),
            st.integers(min_value=1, max_value=8),
        ),
        max_size=12,
    ),
    reads=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=96),
            st.integers(min_value=1, max_value=8),
        ),
        max_size=12,
    ),
)
@settings(max_examples=100, deadline=None)
def test_property_index_matches_naive_quadratic_scan(writes, reads):
    """The ordered nested index finds exactly the naive overlap set."""
    index = AccessIndex()
    waccs, raccs = [], []
    for i, (addr, size) in enumerate(writes):
        access = pa("W", addr, size, i, f"w:{i}")
        index.insert(access, test_id=i)
        waccs.append(access)
    for i, (addr, size) in enumerate(reads):
        access = pa("R", addr, size, i, f"r:{i}")
        index.insert(access, test_id=100 + i)
        raccs.append(access)

    naive = {
        (w.ins, r.ins)
        for w in waccs
        for r in raccs
        if max(w.addr, r.addr) < min(w.end, r.end)
    }
    indexed = {(o.write.ins, o.read.ins) for o in index.read_write_overlaps()}
    assert indexed == naive


class TestAccessIndexIncremental:
    """Inserts interleaved with scans: the delta contract and the
    start-address caches behind ``_refresh_starts``."""

    def test_scan_between_inserts_sees_later_inserts(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 8, 1, "w:1"), test_id=0)
        assert list(index.read_write_overlaps()) == []  # caches built here
        index.insert(pa("R", 0x104, 4, 2, "r:1"), test_id=1)
        (overlap,) = index.read_write_overlaps()
        assert (overlap.write.ins, overlap.read.ins) == ("w:1", "r:1")

    def test_delta_scan_yields_only_new_overlaps(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 8, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x100, 8, 2, "r:1"), test_id=1)
        mark = index.mark()
        assert len(list(index.read_write_overlaps_since(mark))) == 0
        # A new read pairs with the old write (pass 1)...
        index.insert(pa("R", 0x104, 4, 3, "r:2"), test_id=2)
        # ...and a new write pairs with old and new reads (pass 2 + pass 1).
        index.insert(pa("W", 0x102, 4, 4, "w:2"), test_id=3)
        delta = {(o.write.ins, o.read.ins) for o in index.read_write_overlaps_since(mark)}
        assert delta == {("w:1", "r:2"), ("w:2", "r:2"), ("w:2", "r:1")}
        # The full scan still sees everything, exactly once.
        full = [(o.write.ins, o.read.ins) for o in index.read_write_overlaps()]
        assert sorted(full) == sorted(delta | {("w:1", "r:1")})

    def test_mark_zero_equals_full_scan_in_order(self):
        index = AccessIndex()
        for i in range(6):
            index.insert(pa("W", 0x100 + 4 * i, 8, i, f"w:{i}"), test_id=i)
            index.insert(pa("R", 0x102 + 4 * i, 8, 100 + i, f"r:{i}"), test_id=10 + i)
        full = [(o.write.ins, o.read.ins) for o in index.read_write_overlaps()]
        since_zero = [
            (o.write.ins, o.read.ins) for o in index.read_write_overlaps_since(0)
        ]
        assert full == since_zero  # same pairs, same iteration order

    def test_interleaved_rounds_partition_the_full_scan(self):
        """Round deltas are disjoint and union to the one-shot scan."""
        accesses = [
            pa("W", 0x100, 8, 1, "w:1"),
            pa("R", 0x104, 4, 2, "r:1"),
            pa("W", 0x106, 2, 3, "w:2"),
            pa("R", 0x100, 8, 4, "r:2"),
            pa("W", 0x0FC, 8, 5, "w:3"),
            pa("R", 0x107, 1, 6, "r:3"),
        ]
        for split in range(len(accesses) + 1):
            index = AccessIndex()
            seen = []
            for chunk in (accesses[:split], accesses[split:]):
                mark = index.mark()
                for i, access in enumerate(chunk):
                    index.insert(access, test_id=i)
                seen.extend(
                    (o.write.ins, o.read.ins)
                    for o in index.read_write_overlaps_since(mark)
                )
            full = [(o.write.ins, o.read.ins) for o in index.read_write_overlaps()]
            assert sorted(seen) == sorted(full)
            assert len(seen) == len(set(seen))  # each overlap exactly once

    def test_counts_stay_correct_across_rounds(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 4, 1, "w:1"), test_id=0)
        list(index.read_write_overlaps())
        index.insert(pa("R", 0x100, 4, 2, "r:1"), test_id=1)
        index.insert(pa("R", 0x200, 4, 3, "r:2"), test_id=1)
        assert index.counts() == (1, 2)

    def test_access_at_mark_is_new_in_pass_one(self):
        """An access whose seq is *exactly* the mark counts as new: the
        pass-1 filter is ``read_seq < mark: continue``."""
        index = AccessIndex()
        index.insert(pa("W", 0x100, 8, 1, "w:old"), test_id=0)  # seq 0
        mark = index.mark()  # == 1
        index.insert(pa("R", 0x100, 8, 2, "r:atmark"), test_id=1)  # seq 1 == mark
        delta = [(o.write.ins, o.read.ins) for o in index.read_write_overlaps_since(mark)]
        assert delta == [("w:old", "r:atmark")]

    def test_read_at_mark_excluded_from_pass_two(self):
        """Pass 2 pairs new writes with *old* reads only: a read whose
        seq is exactly the mark was already handled by pass 1
        (``read_seq >= mark`` exclusion), so its pair with the new write
        must appear exactly once."""
        index = AccessIndex()
        index.insert(pa("R", 0x100, 8, 1, "r:old"), test_id=0)  # seq 0
        mark = index.mark()  # == 1
        index.insert(pa("R", 0x100, 8, 2, "r:atmark"), test_id=1)  # seq 1 == mark
        index.insert(pa("W", 0x100, 8, 3, "w:new"), test_id=2)  # seq 2
        delta = [(o.write.ins, o.read.ins) for o in index.read_write_overlaps_since(mark)]
        # Pass 1: the at-mark read x all writes; pass 2: the new write x
        # strictly-old reads.  (w:new, r:atmark) appears exactly once.
        assert sorted(delta) == [("w:new", "r:atmark"), ("w:new", "r:old")]

    def test_write_at_mark_is_new_in_pass_two(self):
        index = AccessIndex()
        index.insert(pa("R", 0x100, 8, 1, "r:old"), test_id=0)  # seq 0
        mark = index.mark()  # == 1
        index.insert(pa("W", 0x100, 8, 2, "w:atmark"), test_id=1)  # seq 1 == mark
        delta = [(o.write.ins, o.read.ins) for o in index.read_write_overlaps_since(mark)]
        assert delta == [("w:atmark", "r:old")]


class TestInsertValidation:
    """Oversized/empty accesses must be rejected, not silently lost.

    The scan's bisect window assumes ``size <= MAX_ACCESS_SIZE``: an
    oversized access used to be indexed but its overlaps never scanned;
    a non-positive size can never satisfy ``lo < hi`` yet still bumped
    ``counts()``."""

    @pytest.mark.parametrize("size", [0, -1, MAX_ACCESS_SIZE + 1, 1000])
    def test_bad_sizes_raise_value_error(self, size):
        index = AccessIndex()
        with pytest.raises(ValueError):
            index.insert(pa("W", 0x100, size, 1, "w:1"), test_id=0)
        with pytest.raises(ValueError):
            index.insert(pa("R", 0x100, size, 1, "r:1"), test_id=0)
        assert index.counts() == (0, 0)
        assert list(index.read_write_overlaps()) == []

    def test_boundary_sizes_accepted(self):
        index = AccessIndex()
        index.insert(pa("W", 0x100, 1, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x100, MAX_ACCESS_SIZE, 2, "r:1"), test_id=1)
        assert len(list(index.read_write_overlaps())) == 1


class TestMutationDuringScan:
    """Inserting while an overlap scan is live raises instead of
    silently probing the scan's stale start-address snapshot."""

    @staticmethod
    def _index():
        index = AccessIndex()
        index.insert(pa("W", 0x100, 4, 1, "w:1"), test_id=0)
        index.insert(pa("R", 0x100, 4, 2, "r:1"), test_id=1)
        index.insert(pa("R", 0x102, 4, 2, "r:2"), test_id=1)
        return index

    @pytest.mark.parametrize(
        "mutation",
        [
            pa("R", 0x100, 4, 9, "r:new"),  # existing bucket: no dict growth
            pa("W", 0x900, 4, 9, "w:new"),  # new write addr: stale starts
            pa("R", 0x900, 4, 9, "r:new"),  # new read addr
        ],
        ids=["same-bucket", "new-write-start", "new-read-start"],
    )
    def test_insert_mid_scan_raises(self, mutation):
        index = self._index()
        scan = index.read_write_overlaps()
        next(scan)
        index.insert(mutation, test_id=2)
        with pytest.raises(RuntimeError, match="index mutated during overlap scan"):
            list(scan)

    def test_insert_mid_delta_scan_raises(self):
        index = self._index()
        mark = index.mark()
        index.insert(pa("W", 0x102, 4, 5, "w:2"), test_id=2)
        scan = index.read_write_overlaps_since(mark)
        next(scan)  # a pass-2 overlap (new write x old read)
        index.insert(pa("W", 0x104, 4, 6, "w:3"), test_id=3)
        with pytest.raises(RuntimeError, match="index mutated during overlap scan"):
            list(scan)

    def test_exhausted_scan_then_insert_is_fine(self):
        index = self._index()
        list(index.read_write_overlaps())
        index.insert(pa("W", 0x104, 4, 5, "w:2"), test_id=2)
        assert len(list(index.read_write_overlaps())) > 0


@given(
    accesses=st.lists(
        st.tuples(
            st.booleans(),  # is_write
            st.integers(min_value=0, max_value=64),  # addr
            st.integers(min_value=1, max_value=8),  # size
            st.integers(min_value=0, max_value=3),  # value
        ),
        max_size=16,
    ),
    split=st.integers(min_value=0, max_value=16),
)
@settings(max_examples=100, deadline=None)
def test_property_delta_scans_partition_full_scan(accesses, split):
    """Any two-round split of the inserts yields each overlap exactly
    once across the deltas, and the union equals the full scan."""
    split = min(split, len(accesses))
    built = [
        pa("W" if w else "R", addr, size, value, f"{'w' if w else 'r'}:{i}")
        for i, (w, addr, size, value) in enumerate(accesses)
    ]
    index = AccessIndex()
    delta_pairs = []
    for chunk in (built[:split], built[split:]):
        mark = index.mark()
        for i, access in enumerate(chunk):
            index.insert(access, test_id=i)
        delta_pairs.extend(
            (o.write.ins, o.read.ins) for o in index.read_write_overlaps_since(mark)
        )
    full_pairs = [(o.write.ins, o.read.ins) for o in index.read_write_overlaps()]
    assert sorted(delta_pairs) == sorted(full_pairs)


class TestIdentifyDelta:
    def test_delta_counts_returned(self):
        pmcset = PmcSet()
        index = AccessIndex()
        first = [profile(0, pa("W", 0x100, 8, 0xAA, "w:1"))]
        second = [profile(1, pa("R", 0x100, 8, 0xBB, "r:1"))]
        assert identify_delta(pmcset, index, first) == (0, 0)
        assert identify_delta(pmcset, index, second) == (1, 1)
        assert len(pmcset) == 1
        assert pmcset.total_pairs() == 1

    def test_existing_pmc_gains_pair_not_pmc(self):
        pmcset = PmcSet()
        index = AccessIndex()
        identify_delta(
            pmcset,
            index,
            [
                profile(0, pa("W", 0x100, 8, 1, "w:1")),
                profile(1, pa("R", 0x100, 8, 0, "r:1")),
            ],
        )
        # A later test with the *same* access keys joins the existing PMC.
        new_pmcs, new_pairs = identify_delta(
            pmcset, index, [profile(2, pa("W", 0x100, 8, 1, "w:1"))]
        )
        assert (new_pmcs, new_pairs) == (0, 1)
        (pmc,) = pmcset
        assert set(pmcset.pairs(pmc)) == {(0, 1), (2, 1)}

    def test_dedup_survives_across_deltas(self):
        """A pair classified in round 1 is not re-added when round 2's
        scan happens to cover it again via a new identical access."""
        pmcset = PmcSet()
        index = AccessIndex()
        identify_delta(
            pmcset,
            index,
            [
                profile(0, pa("W", 0x100, 8, 1, "w:1")),
                profile(1, pa("R", 0x100, 8, 0, "r:1")),
            ],
        )
        # The same (writer, reader) tests, same keys, inserted again.
        new_pmcs, new_pairs = identify_delta(
            pmcset,
            index,
            [
                profile(0, pa("W", 0x100, 8, 1, "w:1")),
                profile(1, pa("R", 0x100, 8, 0, "r:1")),
            ],
        )
        assert (new_pmcs, new_pairs) == (0, 0)
        (pmc,) = pmcset
        assert pmcset.pairs(pmc) == [(0, 1)]

    def test_profiles_accumulate(self):
        pmcset = PmcSet()
        index = AccessIndex()
        identify_delta(pmcset, index, [profile(0, pa("W", 0x100, 8, 1, "w:1"))])
        identify_delta(pmcset, index, [profile(1, pa("R", 0x100, 8, 0, "r:1"))])
        assert [p.test_id for p in pmcset.profiles] == [0, 1]
        assert pmcset.profile_by_id(1).test_id == 1

    def test_extend_profiles_extends_built_index_incrementally(self):
        """Once ``_profile_index`` is built, extend_profiles keeps it in
        sync instead of discarding it — no O(corpus) rebuild per round."""
        pmcset = PmcSet()
        index = AccessIndex()
        identify_delta(pmcset, index, [profile(0, pa("W", 0x100, 8, 1, "w:1"))])
        assert pmcset.profile_by_id(0).test_id == 0  # forces index build
        built = pmcset._profile_index
        assert built is not None
        identify_delta(pmcset, index, [profile(1, pa("R", 0x100, 8, 0, "r:1"))])
        assert pmcset._profile_index is built  # same dict, extended in place
        assert pmcset.profile_by_id(1).test_id == 1

    def test_extend_profiles_first_profile_still_wins(self):
        """Duplicate test_ids resolve to the earliest profile, matching
        the full-rebuild path's ``setdefault`` semantics."""
        early = profile(0, pa("W", 0x100, 8, 1, "w:early"))
        late = profile(0, pa("W", 0x100, 8, 2, "w:late"))
        # Index built before the duplicate arrives (incremental path):
        pmcset = PmcSet()
        pmcset.extend_profiles([early])
        assert pmcset.profile_by_id(0) is early
        pmcset.extend_profiles([late])
        assert pmcset.profile_by_id(0) is early
        # Index built after (rebuild path) must agree:
        rebuilt = PmcSet()
        rebuilt.extend_profiles([early])
        rebuilt.extend_profiles([late])
        assert rebuilt.profile_by_id(0) is early

    def test_extend_profiles_accepts_tuple_seeded_set(self):
        seeded = PmcSet(profiles=(profile(0, pa("W", 0x100, 8, 1, "w:1")),))
        seeded.extend_profiles([profile(1, pa("R", 0x100, 8, 0, "r:1"))])
        assert [p.test_id for p in seeded.profiles] == [0, 1]


def _access_strategy():
    return st.tuples(
        st.booleans(),  # is_write
        st.integers(min_value=0, max_value=48),  # addr
        st.integers(min_value=1, max_value=8),  # size
        st.integers(min_value=0, max_value=2),  # value (small: collisions)
        st.integers(min_value=0, max_value=3),  # ins tag (collisions)
    )


@given(
    tests=st.lists(st.lists(_access_strategy(), max_size=6), max_size=8),
    cuts=st.lists(st.integers(min_value=0, max_value=8), max_size=3),
)
@settings(max_examples=100, deadline=None)
def test_property_identify_delta_over_any_split_equals_one_shot(tests, cuts):
    """identify_delta over *any* split of the profiles — including empty
    chunks — matches identify_pmcs: same PMCs, same pair sets, same
    overlaps_scanned."""
    profiles = []
    for tid, accesses in enumerate(tests):
        built = tuple(
            pa(
                "W" if w else "R",
                addr,
                size,
                value,
                f"{'w' if w else 'r'}:{tag}",
            )
            for (w, addr, size, value, tag) in accesses
        )
        profiles.append(profile(tid, *built))

    one_shot = identify_pmcs(profiles)

    bounds = sorted(min(c, len(profiles)) for c in cuts)
    chunks = []
    prev = 0
    for bound in bounds + [len(profiles)]:
        chunks.append(profiles[prev:bound])
        prev = bound

    incremental = PmcSet()
    index = AccessIndex()
    total_new_pmcs = 0
    total_new_pairs = 0
    for chunk in chunks:
        new_pmcs, new_pairs = identify_delta(incremental, index, chunk)
        total_new_pmcs += new_pmcs
        total_new_pairs += new_pairs

    assert set(incremental.pmcs) == set(one_shot.pmcs)
    for pmc in one_shot:
        assert set(incremental.pairs(pmc)) == set(one_shot.pairs(pmc))
    assert incremental.overlaps_scanned == one_shot.overlaps_scanned
    assert incremental.total_pairs() == one_shot.total_pairs() == total_new_pairs
    assert len(incremental) == len(one_shot) == total_new_pmcs
    assert [p.test_id for p in incremental.profiles] == [
        p.test_id for p in one_shot.profiles
    ]


class TestIdentifyPmcs:
    def test_differing_values_make_a_pmc(self):
        profiles = [
            profile(0, pa("W", 0x100, 8, 0xAA, "w:1")),
            profile(1, pa("R", 0x100, 8, 0xBB, "r:1")),
        ]
        pmcset = identify_pmcs(profiles)
        assert len(pmcset) == 1
        (pmc,) = pmcset
        assert pmcset.pairs(pmc) == [(0, 1)]

    def test_equal_values_are_not_a_pmc(self):
        """Algorithm 1 line 11: same projected value -> no communication."""
        profiles = [
            profile(0, pa("W", 0x100, 8, 0xAA, "w:1")),
            profile(1, pa("R", 0x100, 8, 0xAA, "r:1")),
        ]
        assert len(identify_pmcs(profiles)) == 0

    def test_projection_on_partial_overlap(self):
        """Values equal on the overlapping window -> no PMC, even though
        the full access values differ."""
        profiles = [
            # write bytes 0x100..0x108 with low word 0x55 at offset 4..
            profile(0, pa("W", 0x100, 8, 0x55_00000000, "w:1")),
            # read bytes 0x104..0x108: sees 0x55 as well
            profile(1, pa("R", 0x104, 4, 0x55, "r:1")),
        ]
        assert len(identify_pmcs(profiles)) == 0

    def test_projection_detects_window_difference(self):
        profiles = [
            profile(0, pa("W", 0x100, 8, 0x99_00000000, "w:1")),
            profile(1, pa("R", 0x104, 4, 0x55, "r:1")),
        ]
        pmcset = identify_pmcs(profiles)
        assert len(pmcset) == 1

    def test_multiple_pairs_map_to_one_pmc(self):
        """Identical access keys from different tests share the PMC entry."""
        profiles = [
            profile(0, pa("W", 0x100, 8, 1, "w:1")),
            profile(1, pa("W", 0x100, 8, 1, "w:1")),
            profile(2, pa("R", 0x100, 8, 0, "r:1")),
        ]
        pmcset = identify_pmcs(profiles)
        assert len(pmcset) == 1
        (pmc,) = pmcset
        assert set(pmcset.pairs(pmc)) == {(0, 2), (1, 2)}

    def test_df_leader_carried_onto_pmc(self):
        profiles = [
            profile(0, pa("W", 0x100, 8, 1, "w:1")),
            profile(1, pa("R", 0x100, 8, 0, "r:1", df=True)),
        ]
        (pmc,) = identify_pmcs(profiles)
        assert pmc.df_leader

    def test_writes_do_not_pair_with_writes(self):
        profiles = [
            profile(0, pa("W", 0x100, 8, 1, "w:1")),
            profile(1, pa("W", 0x100, 8, 2, "w:2")),
        ]
        assert len(identify_pmcs(profiles)) == 0

    def test_pair_order_is_writer_then_reader(self):
        profiles = [
            profile(5, pa("R", 0x100, 8, 0, "r:1")),
            profile(9, pa("W", 0x100, 8, 1, "w:1")),
        ]
        (pmc,) = identify_pmcs(profiles)
        assert identify_pmcs(profiles).pairs(pmc) == [(9, 5)]


class TestPmcModel:
    def test_overlap_window(self):
        pmc = PMC(
            write=AccessKey(0x100, 8, "w:1", 1),
            read=AccessKey(0x104, 8, "r:1", 2),
        )
        assert pmc.overlap == (0x104, 0x108)

    def test_unaligned_flag(self):
        aligned = PMC(write=AccessKey(0x100, 8, "w", 1), read=AccessKey(0x100, 8, "r", 2))
        unaligned = PMC(write=AccessKey(0x100, 8, "w", 1), read=AccessKey(0x104, 4, "r", 2))
        assert not aligned.unaligned
        assert unaligned.unaligned

    def test_pmcs_are_hashable_and_comparable(self):
        a = PMC(write=AccessKey(0x100, 8, "w", 1), read=AccessKey(0x100, 8, "r", 2))
        b = PMC(write=AccessKey(0x100, 8, "w", 1), read=AccessKey(0x100, 8, "r", 2))
        assert a == b
        assert len({a, b}) == 1
