"""The detection dichotomy between bug classes.

A precise happens-before detector flags a data race as soon as the two
conflicting accesses both *execute* without ordering — no interleaving
luck required (this is why KCSAN-style tools are effective).  Atomicity
and order violations are different: nothing is wrong with any single
access, so the bug only manifests when the schedule hits the exact
vulnerable window.  That asymmetry is the paper's core motivation for
PMC scheduling hints ("finding non-data-race concurrency bugs is
typically more challenging because we cannot rely on data race
detectors", section 5.2) — and it falls out of this reproduction
measurably.
"""

import pytest

from repro.detect.catalog import match_observations
from repro.detect.datarace import RaceDetector
from repro.detect.report import observe
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor

# (bug id, writer, reader) for races detectable with zero preemptions.
DR_SUITE = (
    ("SB05", prog(Call("open", (1,)), Call("ioctl", (Res(0), 3, 64))),
     prog(Call("open", (2,)), Call("fadvise", (Res(0),)))),
    ("SB06", prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1))),
     prog(Call("open", (2,)), Call("read", (Res(0), 2)))),
    ("SB07", prog(Call("socket", (3,)), Call("ioctl", (Res(0), 6, 900))),
     prog(Call("socket", (3,)), Call("sendmsg", (Res(0), 4000)))),
    ("SB08", prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xAABBCCDDEEFF))),
     prog(Call("socket", (1,)), Call("getsockname", (Res(0),)))),
    ("SB09", prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xAABBCCDDEEFF))),
     prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0)))),
    ("SB13", prog(Call("msgget", (1,))), prog(Call("msgget", (2,)))),
    ("SB14", prog(Call("tty_open", ()), Call("ioctl", (Res(0), 7, 0))),
     prog(Call("tty_open", ()))),
    ("SB15", prog(Call("snd_ctl_add", (100,))), prog(Call("snd_ctl_add", (100,)))),
    ("SB16", prog(Call("socket", (0,)), Call("setsockopt", (Res(0), 2, 5))),
     prog(Call("socket", (0,)), Call("setsockopt", (Res(0), 1, 0)))),
)

# The non-data-race bugs: invisible without the right interleaving.
WINDOW_SUITE = (
    ("SB02", prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0))),
     prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0)))),
    ("SB03", prog(Call("open", (2,)), Call("write", (Res(0), 9))),
     prog(Call("open", (2,)), Call("write", (Res(0), 9)))),
    ("SB12", prog(Call("socket", (2,)), Call("connect", (Res(0), 1))),
     prog(Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5)))),
)


@pytest.fixture(scope="module")
def ex():
    kernel, snapshot = boot_kernel()
    return Executor(kernel, snapshot)


def sequential_composition_findings(ex, writer, reader):
    """Run the pair with ZERO preemptions (thread 0 fully, then thread 1)."""
    detector = RaceDetector()
    result = ex.run_concurrent([writer, reader], scheduler=None, race_detector=detector)
    return match_observations(observe(result))


class TestDataRacesNeedNoScheduleLuck:
    @pytest.mark.parametrize("bug_id,writer,reader", DR_SUITE, ids=[b for b, _, _ in DR_SUITE])
    def test_flagged_even_without_preemption(self, ex, bug_id, writer, reader):
        grouped = sequential_composition_findings(ex, writer, reader)
        assert bug_id in grouped, (
            f"{bug_id} should be flagged by the HB detector under plain "
            f"sequential composition"
        )


class TestWindowBugsNeedTheSchedule:
    @pytest.mark.parametrize(
        "bug_id,writer,reader", WINDOW_SUITE, ids=[b for b, _, _ in WINDOW_SUITE]
    )
    def test_invisible_without_preemption(self, ex, bug_id, writer, reader):
        grouped = sequential_composition_findings(ex, writer, reader)
        assert bug_id not in grouped, (
            f"{bug_id} is an AV/OV: it must not fire under plain "
            f"sequential composition"
        )

    def test_sb17_needs_interleaving_too(self, ex):
        """The fanout race's reader path is gone once close() finishes,
        so even this DR needs a schedule that overlaps the two."""
        writer = prog(
            Call("socket", (1,)), Call("setsockopt", (Res(0), 3, 0)), Call("close", (Res(0),))
        )
        reader = prog(
            Call("socket", (1,)), Call("setsockopt", (Res(0), 3, 0)), Call("sendmsg", (Res(0), 1))
        )
        grouped = sequential_composition_findings(ex, writer, reader)
        assert "SB17" not in grouped
