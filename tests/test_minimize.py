"""Tests for schedule minimisation."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor
from repro.sched.minimize import default_panic_oracle, minimize_schedule, still_fails


@pytest.fixture(scope="module")
def booted():
    kernel, snapshot = boot_kernel()
    return kernel, Executor(kernel, snapshot)


def forced_configfs_schedule(kernel, ex):
    """The minimal forced configfs NULL-deref run (one critical switch)."""
    writer = prog(Call("mkdir", (2,)))
    reader = prog(Call("sysinfo", ()), Call("lookup", (2,)))
    children = kernel.globals["configfs_root"] + 8

    class Force:
        def __init__(self):
            self.switched = False

        def begin_trial(self, t):
            pass

        def end_trial(self, r):
            pass

        def on_access(self, access):
            if (
                access.thread == 0
                and not self.switched
                and access.is_write
                and access.addr == children
                and access.value != 0
            ):
                self.switched = True
                return True
            return False

    result = ex.run_concurrent([writer, reader], scheduler=Force())
    assert result.panicked
    return writer, reader, result


def pad_schedule(ex, programs, points, oracle, extra=6):
    """Add verified-benign switch pairs so the schedule has noise to strip."""
    padded = list(points)
    candidate_positions = [k for k in range(2, 60, 4) if k not in padded]
    for k in candidate_positions:
        if len(padded) >= len(points) + extra:
            break
        trial = sorted(set(padded + [k, k + 1]))
        if still_fails(ex, programs, trial, oracle):
            padded = trial
    assert len(padded) > len(points), "could not build a noisy failing schedule"
    return padded


class TestMinimize:
    def test_minimised_schedule_still_fails(self, booted):
        kernel, ex = booted
        writer, reader, result = forced_configfs_schedule(kernel, ex)
        programs = [writer, reader]
        padded = pad_schedule(ex, programs, result.switch_points, default_panic_oracle)
        minimal = minimize_schedule(ex, programs, padded)
        assert still_fails(ex, programs, minimal, default_panic_oracle)

    def test_minimised_schedule_is_smaller_than_padded(self, booted):
        kernel, ex = booted
        writer, reader, result = forced_configfs_schedule(kernel, ex)
        programs = [writer, reader]
        padded = pad_schedule(ex, programs, result.switch_points, default_panic_oracle)
        minimal = minimize_schedule(ex, programs, padded)
        assert len(minimal) < len(padded)

    def test_minimal_is_1_minimal(self, booted):
        """No single remaining switch point can be dropped."""
        kernel, ex = booted
        writer, reader, result = forced_configfs_schedule(kernel, ex)
        programs = [writer, reader]
        padded = pad_schedule(ex, programs, result.switch_points, default_panic_oracle)
        minimal = minimize_schedule(ex, programs, padded)
        for i in range(len(minimal)):
            candidate = minimal[:i] + minimal[i + 1 :]
            assert not still_fails(ex, programs, candidate, default_panic_oracle)

    def test_already_minimal_schedule_unchanged(self, booted):
        kernel, ex = booted
        writer, reader, result = forced_configfs_schedule(kernel, ex)
        programs = [writer, reader]
        minimal = minimize_schedule(ex, programs, result.switch_points)
        # The forced run had exactly one critical switch: nothing to strip.
        assert minimal == result.switch_points

    def test_non_failing_schedule_rejected(self, booted):
        _, ex = booted
        a = prog(Call("msgget", (1,)))
        with pytest.raises(ValueError):
            minimize_schedule(ex, [a, a], [])

    def test_custom_console_oracle(self, booted):
        """Minimise against a console-message oracle instead of panics."""
        kernel, ex = booted
        from repro.kernel.subsystems.fs import INODE

        fs = kernel.subsystems["fs"]
        boot_lock = INODE.addr(fs.inode_addr(0), "lock")
        test = prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0)))

        class Force:
            def __init__(self):
                self.done = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.done
                    and access.is_write
                    and access.addr == boot_lock
                    and access.value == 0
                ):
                    self.done = True
                    return True
                return False

        result = ex.run_concurrent([test, test], scheduler=Force())
        oracle = lambda r: any("checksum invalid" in line for line in r.console)
        assert oracle(result)
        programs = [test, test]
        padded = pad_schedule(ex, programs, result.switch_points, oracle)
        minimal = minimize_schedule(ex, programs, padded, oracle)
        assert still_fails(ex, programs, minimal, oracle)
        # Padding pairs can become entangled with the failure; minimisation
        # never grows the set and the result is 1-minimal.
        assert len(minimal) <= len(padded)
        for i in range(len(minimal)):
            candidate = minimal[:i] + minimal[i + 1 :]
            assert not still_fails(ex, programs, candidate, oracle)
