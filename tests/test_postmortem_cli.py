"""Tests for the post-mortem analysis tools and the CLI."""

import pytest

from repro.detect.datarace import RaceDetector, RaceReport
from repro.detect.postmortem import analyze_all, analyze_race, decode_ins
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


def make_race(ins_a, ins_b, addr=0x100, type_a="W", type_b="R"):
    return RaceReport(
        ins_a=ins_a,
        ins_b=ins_b,
        type_a=type_a,
        type_b=type_b,
        addr=addr,
        size=8,
        value_a=1,
        value_b=0,
        thread_a=0,
        thread_b=1,
    )


class TestDecodeIns:
    def test_decodes_real_kernel_instruction(self):
        location = decode_ins("rhashtable.py:rht_ptr:62")
        assert location.file == "rhashtable.py"
        assert location.function == "rht_ptr"
        assert location.line == 62
        assert location.code  # the actual source line was found

    def test_unknown_file_no_snippet(self):
        location = decode_ins("nosuchfile.py:fn:3")
        assert location.code == ""
        assert location.line == 3

    def test_malformed_ins(self):
        location = decode_ins("garbage")
        assert location.line == 0


class TestAnalyzeRace:
    def _real_race_and_pmcs(self):
        kernel, snapshot = boot_kernel()
        ex = Executor(kernel, snapshot)
        writer = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xAABBCCDDEEFF)))
        reader = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0)))
        pw = profile_from_result(0, writer, ex.run_sequential(writer))
        pr = profile_from_result(1, reader, ex.run_sequential(reader))
        pmcset = identify_pmcs([pw, pr])
        for seed in range(60):
            scheduler = RandomScheduler(seed=seed, switch_probability=0.3)
            scheduler.begin_trial(0)
            detector = RaceDetector()
            ex.run_concurrent([writer, reader], scheduler=scheduler, race_detector=detector)
            races = [r for r in detector.reports() if r.involves("ioctl_get_mac")]
            if races:
                return races[0], pmcset
        pytest.fail("MAC race not observed")

    def test_race_confirmed_by_identified_pmc(self):
        race, pmcset = self._real_race_and_pmcs()
        report = analyze_race(race, pmcset)
        assert report.pmc_confirmed
        assert any("ioctl_set_mac" in p.write.ins for p in report.matching_pmcs)

    def test_render_contains_source_info(self):
        race, pmcset = self._real_race_and_pmcs()
        rendered = analyze_race(race, pmcset).render()
        assert "net.py" in rendered
        assert "predicted by" in rendered

    def test_unpredicted_race_flagged_incidental(self):
        race = make_race("zz.py:a:1", "zz.py:b:2")
        report = analyze_race(race, None)
        assert not report.pmc_confirmed
        assert "incidental" in report.render() or "not predicted" in report.render()

    def test_analyze_all_orders_confirmed_first(self):
        race_real, pmcset = self._real_race_and_pmcs()
        race_fake = make_race("zz.py:a:1", "zz.py:b:2")
        reports = analyze_all([race_fake, race_real], pmcset)
        assert reports[0].pmc_confirmed
        assert not reports[-1].pmc_confirmed


class TestCli:
    def test_strategies_command(self, capsys):
        from repro.cli import main

        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "S-INS-PAIR" in out
        assert "Duplicate pairing" in out

    def test_bugs_command(self, capsys):
        from repro.cli import main

        assert main(["bugs"]) == 0
        out = capsys.readouterr().out
        assert "SB01" in out and "SB17" in out
        assert "l2tp" in out

    def test_case_rhashtable(self, capsys):
        from repro.cli import main

        assert main(["case", "rhashtable"]) == 0
        out = capsys.readouterr().out
        assert "exposed at trial" in out
        assert "NULL pointer dereference" in out

    def test_campaign_small(self, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "--strategy",
                "S-INS",
                "--budget",
                "5",
                "--trials",
                "4",
                "--corpus",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "corpus=" in out
        assert "S-INS" in out

    def test_unknown_command_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestCliReplay:
    @pytest.fixture(scope="class")
    def package_path(self, tmp_path_factory):
        from repro.orchestrate.persistence import capture_package
        from repro.fuzz.prog import Call, prog

        kernel, snapshot = boot_kernel()
        ex = Executor(kernel, snapshot)
        writer = prog(Call("mkdir", (2,)))
        reader = prog(Call("lookup", (2,)))
        children = kernel.globals["configfs_root"] + 8

        class Force:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_write
                    and access.addr == children
                    and access.value != 0
                ):
                    self.switched = True
                    return True
                return False

        result = ex.run_concurrent([writer, reader], scheduler=Force())
        assert result.panicked
        package = capture_package("SB11", writer, reader, result)
        path = tmp_path_factory.mktemp("pkg") / "sb11.json"
        package.save(str(path))
        return str(path)

    def test_replay_command(self, package_path, capsys):
        from repro.cli import main

        assert main(["replay", package_path]) == 0
        out = capsys.readouterr().out
        assert "SB11" in out
        assert "Reproducer (process A):" in out
        assert "panicked=True" in out

    def test_replay_minimize_command(self, package_path, capsys):
        from repro.cli import main

        assert main(["replay", package_path, "--minimize"]) == 0
        out = capsys.readouterr().out
        assert "minimised schedule" in out
        assert "panicked=True" in out


class TestCliRun:
    def test_sequential_program_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.txt"
        path.write_text("r0 = msgget(2)\nmsgsnd(2, 0x2a)\nmsgrcv(2)\n")
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "returns: [2, 0, 42]" in out

    def test_concurrent_program_files(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.txt"
        a.write_text("snd_ctl_add(100)\n")
        b = tmp_path / "b.txt"
        b.write_text("snd_ctl_add(100)\n")
        assert main(["run", str(a), str(b), "--trials", "30"]) == 0
        out = capsys.readouterr().out
        assert "interleavings explored" in out
        assert "snd_ctl_add" in out  # the #15 race shows up

    def test_fixed_kernel_flag_silences(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.txt"
        a.write_text("snd_ctl_add(100)\n")
        assert main(["run", str(a), str(a), "--trials", "20", "--fixed"]) == 0
        out = capsys.readouterr().out
        assert "0 distinct findings" in out
