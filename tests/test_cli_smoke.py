"""End-to-end CLI smoke test: one tiny fixed-seed campaign via
``python -m repro`` with checkpointing, two workers and a trace, then
cross-checks that the console summary, the checkpoint journal and the
observability trace all agree on what was executed.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

ARGS = [
    "--strategy", "S-INS-PAIR",
    "--budget", "4",
    "--trials", "4",
    "--seed", "7",
    "--corpus", "120",
]


def run_cli(*args, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"repro {' '.join(args)} failed ({proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    """One traced + checkpointed 2-worker campaign, run once per module."""
    outdir = tmp_path_factory.mktemp("smoke")
    checkpoint = str(outdir / "campaign.ckpt")
    trace = str(outdir / "trace.jsonl")
    proc = run_cli(
        "campaign", *ARGS,
        "--workers", "2",
        "--checkpoint", checkpoint,
        "--trace-out", trace,
    )
    return proc, checkpoint, trace


def parse_executed(stdout: str):
    match = re.search(
        r"executed: tests=(\d+) trials=(\d+) observations=(\d+) bugs=(\d+)", stdout
    )
    assert match, f"no executed-summary line in output:\n{stdout}"
    return tuple(int(g) for g in match.groups())


class TestCampaignSmoke:
    def test_campaign_runs_and_reports(self, smoke):
        proc, _checkpoint, trace = smoke
        assert "corpus=" in proc.stdout
        assert "Strategy" in proc.stdout  # the Table 3 header
        tests, trials, _observations, _bugs = parse_executed(proc.stdout)
        assert tests == 4
        assert 4 <= trials <= 16  # early stop can trim, never exceed budget
        assert f"trace written to {trace}" in proc.stdout

    def test_summary_checkpoint_and_trace_agree(self, smoke):
        proc, checkpoint, trace = smoke
        tests, trials, observations, _bugs = parse_executed(proc.stdout)

        from repro.orchestrate.persistence import load_checkpoint

        _header, task_records = load_checkpoint(checkpoint)
        counters = task_records[-1]["counters"]
        assert counters["trials"] == trials
        assert counters["tested_pmcs"] == tests

        from repro.obs.stats import funnel_totals, load_stats

        totals = funnel_totals(load_stats(trace))
        assert totals["stage4.trials"] == trials
        assert totals["stage4.tests"] == tests
        assert totals["stage4.observations"] == observations

    def test_trace_header_records_the_invocation(self, smoke):
        _proc, _checkpoint, trace = smoke
        from repro.obs.sink import read_trace

        header, events = read_trace(trace)
        assert header["strategy"] == "S-INS-PAIR"
        assert header["seed"] == 7
        assert header["workers"] == 2
        assert any(e["kind"] == "span" for e in events)
        assert any(e["kind"] == "metrics" for e in events)

    def test_serial_rerun_matches_parallel_smoke(self, smoke, tmp_path):
        """The same invocation with --workers 1 prints the same results."""
        proc, _checkpoint, _trace = smoke
        trace = str(tmp_path / "serial.jsonl")
        serial = run_cli("campaign", *ARGS, "--workers", "1", "--trace-out", trace)
        assert parse_executed(serial.stdout) == parse_executed(proc.stdout)

        from repro.obs.stats import funnel_totals, load_stats

        parallel_totals = funnel_totals(load_stats(smoke[2]))
        assert funnel_totals(load_stats(trace)) == parallel_totals


class TestStatsSmoke:
    def test_stats_renders_all_views(self, smoke):
        _proc, _checkpoint, trace = smoke
        proc = run_cli("stats", trace)
        assert "== Stage 1 -> 4 funnel ==" in proc.stdout
        assert "== Per-stage wall time ==" in proc.stdout
        assert "== Trial latency ==" in proc.stdout
        assert "trials executed" in proc.stdout

    def test_stats_markdown(self, smoke):
        _proc, _checkpoint, trace = smoke
        proc = run_cli("stats", trace, "--markdown")
        assert "| Stage" in proc.stdout or "|Stage" in proc.stdout

    def test_stats_missing_file_fails_cleanly(self, tmp_path):
        proc = run_cli("stats", str(tmp_path / "nope.jsonl"), check=False)
        assert proc.returncode == 2
        assert "no such trace file" in proc.stderr

    def test_stats_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"kind": "event", "name": "x"}\n')
        proc = run_cli("stats", str(path), check=False)
        assert proc.returncode == 2
