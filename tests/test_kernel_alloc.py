"""Tests for the slab allocator."""

import pytest

from repro.kernel.alloc import ALLOC_STATE, SIZE_CLASSES, size_class
from repro.kernel.errors import SyscallError
from repro.kernel.kernel import boot_kernel


@pytest.fixture()
def k():
    kernel, _ = boot_kernel()
    return kernel


def kmalloc(kernel, size, thread=0):
    ctx = kernel.make_context(thread)
    return kernel.boot_run(kernel.allocator.kmalloc(ctx, size))


def kfree(kernel, addr, size, thread=0):
    ctx = kernel.make_context(thread)
    kernel.boot_run(kernel.allocator.kfree(ctx, addr, size))


class TestSizeClasses:
    def test_rounding_up(self):
        assert size_class(1) == 16
        assert size_class(16) == 16
        assert size_class(17) == 32
        assert size_class(1024) == 1024

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            size_class(2048)

    def test_classes_are_sorted_powers(self):
        assert list(SIZE_CLASSES) == sorted(SIZE_CLASSES)


class TestAllocation:
    def test_allocations_are_disjoint(self, k):
        a = kmalloc(k, 64)
        b = kmalloc(k, 64)
        assert abs(a - b) >= 64

    def test_heap_addresses(self, k):
        addr = kmalloc(k, 32)
        heap = k.machine.regions
        assert heap.heap_base <= addr < heap.heap_base + heap.heap_size

    def test_freelist_reuse_lifo(self, k):
        a = kmalloc(k, 64)
        b = kmalloc(k, 64)
        kfree(k, a, 64)
        kfree(k, b, 64)
        assert kmalloc(k, 64) == b  # LIFO
        assert kmalloc(k, 64) == a

    def test_different_classes_do_not_mix(self, k):
        a = kmalloc(k, 16)
        kfree(k, a, 16)
        b = kmalloc(k, 128)
        assert b != a

    def test_kzalloc_zeroes_reused_chunk(self, k):
        ctx = k.make_context(0)
        a = kmalloc(k, 64)
        k.machine.memory.write_int(a, 8, 0xDEAD)
        kfree(k, a, 64)
        b = k.boot_run(k.allocator.kzalloc(ctx, 64))
        assert b == a
        assert k.machine.memory.read_int(b, 8) == 0

    def test_kfree_null_is_noop(self, k):
        kfree(k, 0, 64)  # must not raise

    def test_determinism_across_boots(self):
        """Same allocation sequence -> same addresses (the PMC premise)."""
        k1, _ = boot_kernel()
        k2, _ = boot_kernel()
        seq1 = [kmalloc(k1, s) for s in (16, 64, 64, 256)]
        seq2 = [kmalloc(k2, s) for s in (16, 64, 64, 256)]
        assert seq1 == seq2


class TestStatistics:
    def _stat(self, k, name):
        return k.machine.memory.read_int(ALLOC_STATE.addr(k.allocator.state, name), 8)

    def test_counters_track_allocs_and_frees(self, k):
        base_allocs = self._stat(k, "total_allocs")
        a = kmalloc(k, 64)
        assert self._stat(k, "total_allocs") == base_allocs + 1
        in_use = self._stat(k, "bytes_in_use")
        kfree(k, a, 64)
        assert self._stat(k, "bytes_in_use") == in_use - 64
        assert self._stat(k, "total_frees") >= 1

    def test_exhaustion_raises_enomem(self, k):
        # Shrink the heap to a sliver, then allocate past the end.
        state = k.allocator.state
        next_addr = k.machine.memory.read_int(ALLOC_STATE.addr(state, "heap_next"), 8)
        k.machine.memory.write_int(ALLOC_STATE.addr(state, "heap_end"), 8, next_addr + 64)
        kmalloc(k, 64)
        with pytest.raises(SyscallError):
            kmalloc(k, 64)
