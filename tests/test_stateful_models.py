"""Model-based stateful tests (hypothesis RuleBasedStateMachine).

The kernel's data structures are checked against trivially-correct
Python models under arbitrary sequential operation interleavings: the
rhashtable against a dict, the FIFO ring against a deque, and the
semaphore namespace against a counter map.  (Concurrent correctness is
the race detector's job; these machines pin down the sequential
semantics everything else builds on.)
"""

from collections import deque

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.fuzz.prog import Call, Res, prog
from repro.kernel import rhashtable as rht
from repro.kernel.kernel import boot_kernel


class RhashtableMachine(RuleBasedStateMachine):
    """rhashtable vs dict under insert/lookup/remove."""

    def __init__(self):
        super().__init__()
        self.kernel, _ = boot_kernel()
        self.ctx = self.kernel.make_context(0)
        self.table = self.kernel.static_alloc("model_rht", rht.RHT_TABLE.size)
        self.model = {}

    def _lookup(self, key):
        return self.kernel.boot_run(rht.rht_lookup(self.ctx, self.table, key))

    @rule(key=st.integers(min_value=0, max_value=7))
    def insert(self, key):
        if key in self.model:
            return  # the kernel table is keyed uniquely by callers
        entry = self.kernel.boot_run(
            self.kernel.allocator.kzalloc(self.ctx, rht.RHT_ENTRY.size + 16)
        )
        self.kernel.boot_run(rht.rht_insert(self.ctx, self.table, entry, key))
        self.model[key] = entry

    @rule(key=st.integers(min_value=0, max_value=7))
    def remove(self, key):
        removed = self.kernel.boot_run(rht.rht_remove(self.ctx, self.table, key))
        assert removed == self.model.pop(key, 0)

    @rule(key=st.integers(min_value=0, max_value=7))
    def lookup(self, key):
        assert self._lookup(key) == self.model.get(key, 0)

    @invariant()
    def all_model_keys_findable(self):
        for key, entry in self.model.items():
            assert self._lookup(key) == entry


class FifoMachine(RuleBasedStateMachine):
    """The FIFO ring vs a bounded deque, via real syscalls."""

    def __init__(self):
        super().__init__()
        from repro.sched.executor import Executor

        self.kernel, snapshot = boot_kernel()
        self.executor = Executor(self.kernel, snapshot)
        self.model = deque()
        self.ops = [Call("fifo_open", (0,))]

    def _run(self):
        result = self.executor.run_sequential(prog(*self.ops))
        assert result.completed
        return result.returns[0]

    @rule(value=st.integers(min_value=1, max_value=0xFFFF))
    def write(self, value):
        self.ops.append(Call("fifo_write", (Res(0), value)))
        returns = self._run()
        if len(self.model) < 4:
            self.model.append(value)
            assert returns[-1] >= 0
        else:
            assert returns[-1] == -11  # EAGAIN when full

    @rule()
    def read(self):
        self.ops.append(Call("fifo_read", (Res(0),)))
        returns = self._run()
        if self.model:
            assert returns[-1] == self.model.popleft()
        else:
            assert returns[-1] == -11  # EAGAIN when empty

    @invariant()
    def bounded(self):
        assert len(self.model) <= 4
        assert len(self.ops) < 15  # keep replayed programs small

    def teardown(self):
        pass


class SemMachine(RuleBasedStateMachine):
    """The semaphore namespace vs a counter dict, via real syscalls."""

    def __init__(self):
        super().__init__()
        from repro.sched.executor import Executor

        self.kernel, snapshot = boot_kernel()
        self.executor = Executor(self.kernel, snapshot)
        self.model = {}
        self.ops = []

    def _run(self):
        result = self.executor.run_sequential(prog(*self.ops))
        assert result.completed
        return result.returns[0]

    @rule(key=st.integers(min_value=0, max_value=3))
    def semget(self, key):
        if len(self.ops) > 10:
            return
        self.ops.append(Call("semget", (key,)))
        assert self._run()[-1] == key
        self.model.setdefault(key, 1)

    @rule(key=st.integers(min_value=0, max_value=3), arg=st.integers(min_value=0, max_value=7))
    def semop(self, key, arg):
        if len(self.ops) > 10:
            return
        self.ops.append(Call("semop", (key, arg)))
        returns = self._run()
        if key in self.model:
            expected = max(0, self.model[key] + (arg % 8 - 4))
            self.model[key] = expected
            assert returns[-1] == expected
        else:
            assert returns[-1] == -2  # ENOENT

    @rule(key=st.integers(min_value=0, max_value=3))
    def rmid(self, key):
        if len(self.ops) > 10:
            return
        self.ops.append(Call("semctl", (key, 0)))
        returns = self._run()
        if key in self.model:
            del self.model[key]
            assert returns[-1] == 0
        else:
            assert returns[-1] == -2


TestRhashtableModel = RhashtableMachine.TestCase
TestRhashtableModel.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestFifoModel = FifoMachine.TestCase
TestFifoModel.settings = settings(max_examples=15, stateful_step_count=12, deadline=None)
TestSemModel = SemMachine.TestCase
TestSemModel.settings = settings(max_examples=15, stateful_step_count=10, deadline=None)
