"""Tests for persistence: program JSON and reproduction packages."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.orchestrate.persistence import (
    ReproPackage,
    capture_package,
    program_from_obj,
    program_to_obj,
    reproduce,
)
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig
from repro.sched.executor import Executor


class TestProgramSerialisation:
    def test_roundtrip(self):
        program = prog(
            Call("socket", (2,)),
            Call("connect", (Res(0), 1)),
            Call("sendmsg", (Res(0), 0xDEAD)),
        )
        assert program_from_obj(program_to_obj(program)) == program

    def test_json_safe(self):
        import json

        program = prog(Call("open", (1,)), Call("write", (Res(0), 7)))
        assert json.loads(json.dumps(program_to_obj(program))) == program_to_obj(program)


class TestReproPackage:
    def _buggy_package(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        writer = prog(Call("mkdir", (2,)))
        reader = prog(Call("lookup", (2,)))
        children = kernel.globals["configfs_root"] + 8

        class ForceWindow:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_write
                    and access.addr == children
                    and access.value != 0
                ):
                    self.switched = True
                    return True
                return False

        result = executor.run_concurrent([writer, reader], scheduler=ForceWindow())
        assert result.panicked
        package = capture_package("SB11", writer, reader, result)
        return executor, package

    def test_capture_and_reproduce(self):
        executor, package = self._buggy_package()
        replayed = reproduce(executor, package)
        assert replayed.panicked
        assert replayed.panic_message == package.expected_panic

    def test_json_roundtrip(self):
        _, package = self._buggy_package()
        restored = ReproPackage.from_json(package.to_json())
        assert restored.bug_id == package.bug_id
        assert restored.writer == package.writer
        assert restored.switch_points == package.switch_points
        assert restored.expected_panic == package.expected_panic

    def test_reproduce_on_fresh_kernel(self):
        """A package replays on a *different* kernel instance — the
        deterministic-boot property makes packages portable."""
        _, package = self._buggy_package()
        kernel, snapshot = boot_kernel()
        replayed = reproduce(Executor(kernel, snapshot), package)
        assert replayed.panicked

    def test_divergent_package_raises(self):
        executor, package = self._buggy_package()
        broken = ReproPackage(
            bug_id=package.bug_id,
            writer=package.writer,
            reader=package.reader,
            switch_points=[],  # wrong schedule: bug will not fire
            expected_panic=package.expected_panic,
        )
        with pytest.raises(AssertionError):
            reproduce(executor, broken)

    def test_save_and_load(self, tmp_path):
        _, package = self._buggy_package()
        path = tmp_path / "sb11.json"
        package.save(str(path))
        restored = ReproPackage.load(str(path))
        assert restored.bug_id == "SB11"


@pytest.fixture(scope="module")
def race_package():
    """A reproduction package for a pure data-race bug (SB09): no panic,
    no console transcript — exactly the package shape that used to
    replay vacuously because no oracle ran during ``reproduce``."""
    from repro.detect.catalog import match_observations
    from repro.detect.datarace import RaceDetector
    from repro.detect.report import observe
    from repro.sched.random_sched import RandomScheduler

    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)
    writer = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xFFEEDDCCBBAA)))
    reader = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0)))
    for seed in range(200):
        scheduler = RandomScheduler(seed=seed, switch_probability=0.5)
        scheduler.begin_trial(0)
        result = executor.run_concurrent(
            [writer, reader], scheduler=scheduler, race_detector=RaceDetector()
        )
        if result.panicked or result.console:
            continue
        if "SB09" in match_observations(observe(result)):
            return executor, capture_package("SB09", writer, reader, result)
    pytest.fail("no SB09 race surfaced to package")


class TestRacePackageReplay:
    def test_pure_race_package_has_no_transcript_expectations(self, race_package):
        _, package = race_package
        assert package.expected_panic == ""
        assert package.expected_console == []

    def test_replay_on_buggy_kernel_validates_the_race(self, race_package):
        from repro.detect.report import observe

        executor, package = race_package
        replayed = reproduce(executor, package)
        # The race detector ran during replay and re-observed the bug.
        assert any(obs.kind == "race" for obs in observe(replayed))

    def test_replay_on_fresh_buggy_kernel(self, race_package):
        _, package = race_package
        kernel, snapshot = boot_kernel()
        reproduce(Executor(kernel, snapshot), package)  # must not raise

    def test_replay_on_fixed_kernel_raises(self, race_package):
        """On the patched kernel the race is gone — replay must fail
        loudly instead of vacuously passing."""
        _, package = race_package
        kernel, snapshot = boot_kernel(fixed=True)
        with pytest.raises(AssertionError, match="SB09"):
            reproduce(Executor(kernel, snapshot), package)

    def test_uncatalogued_package_without_any_oracle_raises(self):
        """No expectations, no catalog match, no observation: the replay
        proves nothing and must say so."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        benign = prog()  # touches nothing: replay observes nothing
        package = ReproPackage(
            bug_id="custom-unfiled",
            writer=benign,
            reader=benign,
            switch_points=[],
        )
        with pytest.raises(AssertionError, match="no oracle observation"):
            reproduce(executor, package)

    def test_verify_bug_id_opt_out(self):
        """verify_bug_id=False restores the transcript-only contract for
        callers replaying deliberately perturbed packages."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        benign = prog()
        package = ReproPackage(
            bug_id="custom-unfiled",
            writer=benign,
            reader=benign,
            switch_points=[],
        )
        reproduce(executor, package, verify_bug_id=False)  # must not raise


class TestPipelineCapturesPackages:
    def test_campaign_produces_replayable_packages(self):
        config = SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=10)
        snowboard = Snowboard(config).prepare()
        snowboard.run_campaign("S-INS-PAIR", test_budget=25)
        assert snowboard.repro_packages  # at least one bug was packaged
        for bug_id, package in snowboard.repro_packages.items():
            replayed = reproduce(snowboard.executor, package)
            # The replay reproduces the exact failure transcript.
            assert replayed.console == package.expected_console, bug_id
