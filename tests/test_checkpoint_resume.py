"""Crash-safe campaigns: checkpoint journal, kill-and-resume, guards.

The contract: a campaign journaled to a checkpoint, killed at any task
boundary and resumed — in the same or a *fresh* process, serially or
across a worker fleet — produces a ``summary()`` bit-identical to the
uninterrupted run (bug set, trial counts, first-find positions), plus
identical reproduction packages.  Tasks are seeded ``seed + task_id``,
so the resumed tasks replay exactly what the uninterrupted campaign
would have executed.
"""

from __future__ import annotations

import json

import pytest

from repro.orchestrate.persistence import (
    CheckpointMismatch,
    CheckpointWriter,
    load_checkpoint,
)
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

CONFIG = SnowboardConfig(
    seed=7, corpus_budget=120, trials_per_pmc=8, max_instructions=40_000
)
BUDGET = 8
STRATEGY = "S-INS-PAIR"


class Killed(BaseException):
    """Stands in for SIGKILL: not an Exception, nothing may catch it."""


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted serial campaign every resume must match."""
    sb = Snowboard(CONFIG).prepare()
    campaign = sb.run_campaign(STRATEGY, test_budget=BUDGET)
    return sb, campaign


def _run_until_killed(path: str, kill_after: int) -> None:
    """Start a checkpointed serial campaign and kill it mid-Stage-4."""
    sb = Snowboard(CONFIG).prepare()
    original = Snowboard.execute_test
    calls = {"n": 0}

    def dying(self, *args, **kwargs):
        if calls["n"] >= kill_after:
            raise Killed()
        calls["n"] += 1
        return original(self, *args, **kwargs)

    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(Snowboard, "execute_test", dying)
        with pytest.raises(Killed):
            sb.run_campaign(STRATEGY, test_budget=BUDGET, checkpoint_path=path)


class TestJournalFormat:
    def test_fresh_checkpoint_does_not_perturb_results(self, baseline, tmp_path):
        _, uninterrupted = baseline
        path = str(tmp_path / "journal.jsonl")
        sb = Snowboard(CONFIG).prepare()
        campaign = sb.run_campaign(STRATEGY, test_budget=BUDGET, checkpoint_path=path)
        assert campaign.summary() == uninterrupted.summary()

        header, tasks = load_checkpoint(path)
        assert header["strategy"] == STRATEGY
        assert header["seed"] == CONFIG.seed
        assert [t["task_id"] for t in tasks] == list(range(BUDGET))
        # Cumulative counters: the last record equals the final campaign.
        assert tasks[-1]["counters"]["trials"] == campaign.trials
        assert tasks[-1]["counters"]["tested_pmcs"] == BUDGET

    def test_journal_is_valid_json_lines(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        sb = Snowboard(CONFIG).prepare()
        sb.run_campaign(STRATEGY, test_budget=3, checkpoint_path=path)
        with open(path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines[0]["kind"] == "header"
        assert all(obj["kind"] == "task" for obj in lines[1:])
        assert all("digest" in obj for obj in lines[1:])


class TestKillAndResume:
    def test_kill_and_resume_serial_bit_identical(self, baseline, tmp_path):
        baseline_sb, uninterrupted = baseline
        path = str(tmp_path / "journal.jsonl")
        _run_until_killed(path, kill_after=4)

        _, tasks = load_checkpoint(path)
        assert len(tasks) == 4  # the journal stops at the kill point

        # Resume in a *fresh* instance — the new-process analogue.
        sb = Snowboard(CONFIG).prepare()
        resumed = sb.run_campaign(
            STRATEGY, test_budget=BUDGET, checkpoint_path=path, resume=True
        )
        assert resumed.summary() == uninterrupted.summary()
        # Reproduction packages survive the crash bit for bit too.
        assert set(sb.repro_packages) == set(baseline_sb.repro_packages)
        for bug_id, package in baseline_sb.repro_packages.items():
            assert sb.repro_packages[bug_id].to_json() == package.to_json()
        # The journal now covers the full campaign.
        _, tasks = load_checkpoint(path)
        assert [t["task_id"] for t in tasks] == list(range(BUDGET))

    def test_kill_at_first_task_and_resume(self, baseline, tmp_path):
        _, uninterrupted = baseline
        path = str(tmp_path / "journal.jsonl")
        _run_until_killed(path, kill_after=0)
        sb = Snowboard(CONFIG).prepare()
        resumed = sb.run_campaign(
            STRATEGY, test_budget=BUDGET, checkpoint_path=path, resume=True
        )
        assert resumed.summary() == uninterrupted.summary()

    def test_resume_into_parallel_fleet(self, baseline, tmp_path):
        """A serially-checkpointed campaign resumes onto workers=3."""
        _, uninterrupted = baseline
        path = str(tmp_path / "journal.jsonl")
        _run_until_killed(path, kill_after=3)
        sb = Snowboard(CONFIG).prepare()
        resumed = sb.run_campaign(
            STRATEGY,
            test_budget=BUDGET,
            workers=3,
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.summary() == uninterrupted.summary()

    def test_kill_during_parallel_merge_then_resume(self, baseline, tmp_path):
        """Coordinator dies while merging fleet results; resume recovers."""
        _, uninterrupted = baseline
        path = str(tmp_path / "journal.jsonl")
        sb = Snowboard(CONFIG).prepare()
        original = CheckpointWriter.task_done
        calls = {"n": 0}

        def dying(self, task_id, merged=True):
            if calls["n"] >= 2:
                raise Killed()
            calls["n"] += 1
            return original(self, task_id, merged)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(CheckpointWriter, "task_done", dying)
            with pytest.raises(Killed):
                sb.run_campaign(
                    STRATEGY, test_budget=BUDGET, workers=2, checkpoint_path=path
                )

        sb2 = Snowboard(CONFIG).prepare()
        resumed = sb2.run_campaign(
            STRATEGY, test_budget=BUDGET, checkpoint_path=path, resume=True
        )
        assert resumed.summary() == uninterrupted.summary()

    def test_resume_of_complete_journal_executes_nothing(self, baseline, tmp_path):
        _, uninterrupted = baseline
        path = str(tmp_path / "journal.jsonl")
        Snowboard(CONFIG).prepare().run_campaign(
            STRATEGY, test_budget=BUDGET, checkpoint_path=path
        )

        sb = Snowboard(CONFIG).prepare()
        executed = []
        original = Snowboard.execute_test

        def counting(self, *args, **kwargs):
            executed.append(kwargs.get("task_id"))
            return original(self, *args, **kwargs)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(Snowboard, "execute_test", counting)
            resumed = sb.run_campaign(
                STRATEGY, test_budget=BUDGET, checkpoint_path=path, resume=True
            )
        assert executed == []
        assert resumed.summary() == uninterrupted.summary()

    def test_resume_without_existing_journal_starts_fresh(self, baseline, tmp_path):
        _, uninterrupted = baseline
        path = str(tmp_path / "nonexistent.jsonl")
        sb = Snowboard(CONFIG).prepare()
        campaign = sb.run_campaign(
            STRATEGY, test_budget=BUDGET, checkpoint_path=path, resume=True
        )
        assert campaign.summary() == uninterrupted.summary()
        _, tasks = load_checkpoint(path)
        assert len(tasks) == BUDGET


class TestJournalGuards:
    def _partial_journal(self, tmp_path) -> str:
        path = str(tmp_path / "journal.jsonl")
        _run_until_killed(path, kill_after=2)
        return path

    def test_header_mismatch_raises(self, tmp_path):
        path = self._partial_journal(tmp_path)
        sb = Snowboard(CONFIG).prepare()
        with pytest.raises(CheckpointMismatch):
            sb.run_campaign(
                STRATEGY,
                test_budget=BUDGET + 5,  # different budget than journalled
                checkpoint_path=path,
                resume=True,
            )

    def test_torn_final_line_is_discarded(self, baseline, tmp_path):
        _, uninterrupted = baseline
        path = self._partial_journal(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"kind": "task", "task_id": 2, "coun')  # torn write
        header, tasks = load_checkpoint(path)
        assert len(tasks) == 2
        sb = Snowboard(CONFIG).prepare()
        resumed = sb.run_campaign(
            STRATEGY, test_budget=BUDGET, checkpoint_path=path, resume=True
        )
        assert resumed.summary() == uninterrupted.summary()

    def test_corrupted_record_fails_digest_check(self, tmp_path):
        path = self._partial_journal(tmp_path)
        with open(path) as handle:
            lines = handle.readlines()
        tampered = json.loads(lines[1])
        tampered["counters"]["trials"] += 1  # silently inflate a counter
        lines[1] = json.dumps(tampered) + "\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(CheckpointMismatch, match="digest"):
            load_checkpoint(path)
