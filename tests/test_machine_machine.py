"""Unit tests for the Machine: regions, stacks, console, snapshots."""

import pytest

from repro.machine.machine import KERNEL_STACK_SIZE, Machine
from repro.machine.snapshot import Snapshot


class TestRegions:
    def test_boot_regions_mapped(self):
        machine = Machine()
        r = machine.regions
        assert machine.memory.is_mapped(r.globals_base, 8)
        assert machine.memory.is_mapped(r.heap_base, 8)
        assert machine.memory.is_mapped(r.stacks_base, 8)

    def test_null_page_unmapped(self):
        machine = Machine()
        assert not machine.memory.is_mapped(0, 1)
        assert not machine.memory.is_mapped(8, 1)


class TestStacks:
    def test_stack_bases_are_aligned_and_disjoint(self):
        machine = Machine()
        ranges = [machine.stack_range(t) for t in range(2)]
        for rng in ranges:
            assert rng.start % KERNEL_STACK_SIZE == 0
            assert len(rng) == KERNEL_STACK_SIZE
        assert ranges[0].stop <= ranges[1].start

    def test_esp_masking_recovers_base(self):
        """Any pointer inside the stack masks down to the aligned base."""
        machine = Machine()
        base = machine.stack_base(1)
        for offset in (0, 1, 4095, KERNEL_STACK_SIZE - 1):
            esp = base + offset
            assert esp & ~(KERNEL_STACK_SIZE - 1) == base

    def test_in_stack(self):
        machine = Machine()
        base = machine.stack_base(0)
        assert machine.in_stack(0, base, 8)
        assert machine.in_stack(0, base + KERNEL_STACK_SIZE - 8, 8)
        assert not machine.in_stack(0, base + KERNEL_STACK_SIZE - 4, 8)
        assert not machine.in_stack(1, base, 8)

    def test_invalid_thread_rejected(self):
        machine = Machine()
        with pytest.raises(ValueError):
            machine.stack_base(99)


class TestConsoleAndSnapshot:
    def test_printk_appends(self):
        machine = Machine()
        machine.printk("hello")
        machine.printk("world")
        assert machine.console == ["hello", "world"]

    def test_snapshot_restores_memory_and_console(self):
        machine = Machine()
        machine.printk("boot")
        machine.memory.write_int(machine.regions.heap_base, 8, 42)
        snap = Snapshot.capture(machine)

        machine.printk("later")
        machine.memory.write_int(machine.regions.heap_base, 8, 99)
        snap.restore(machine)

        assert machine.console == ["boot"]
        assert machine.memory.read_int(machine.regions.heap_base, 8) == 42

    def test_snapshot_restore_is_repeatable(self):
        machine = Machine()
        snap = Snapshot.capture(machine)
        for value in (1, 2, 3):
            machine.memory.write_int(machine.regions.heap_base, 8, value)
            snap.restore(machine)
            assert machine.memory.read_int(machine.regions.heap_base, 8) == 0

    def test_snapshot_label(self):
        machine = Machine()
        snap = Snapshot.capture(machine, label="post-boot")
        assert snap.label == "post-boot"
