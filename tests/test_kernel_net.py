"""Tests for the network subsystem: sockets, MAC, MTU, fanout, FIB."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.errors import EINVAL
from repro.kernel.kernel import boot_kernel
from repro.kernel.subsystems.net import FANOUT, NETDEV
from repro.sched.executor import Executor

OLD_MAC = 0x0250_5600_0000
NEW_MAC = 0xFFEE_DDCC_BBAA


@pytest.fixture()
def booted_net():
    kernel, snapshot = boot_kernel()
    return kernel, Executor(kernel, snapshot)


class TestSockets:
    def test_socket_returns_fd(self, executor):
        result = executor.run_sequential(prog(Call("socket", (0,))))
        assert result.returns[0] == [0]

    def test_connect_binds_and_reads_congestion(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (0,)), Call("connect", (Res(0), 1)))
        )
        assert result.returns[0] == [0, 0]

    def test_sendmsg_inet_reads_mac_safely(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (0,)), Call("sendmsg", (Res(0), 1)))
        )
        assert result.returns[0][1] >= 0

    def test_getsockname_returns_boot_mac(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (0,)), Call("getsockname", (Res(0),)))
        )
        assert result.returns[0][1] == OLD_MAC

    def test_close_frees_socket(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (0,)), Call("close", (Res(0),)), Call("socket", (1,)))
        )
        assert result.returns[0] == [0, 0, 0]


class TestMacIoctls:
    def test_set_then_get_mac(self, executor):
        result = executor.run_sequential(
            prog(
                Call("socket", (0,)),
                Call("ioctl", (Res(0), 4, NEW_MAC)),
                Call("ioctl", (Res(0), 5, 0)),
            )
        )
        assert result.returns[0][2] == NEW_MAC

    def test_mac_write_is_chunked(self, executor):
        """The 6-byte MAC store is two instructions — the torn window."""
        result = executor.run_sequential(
            prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, NEW_MAC)))
        )
        kernel = executor.kernel
        dev_addr = NETDEV.addr(kernel.globals["netdev_table"], "dev_addr")
        writes = [
            a
            for a in result.accesses
            if a.is_write and dev_addr <= a.addr < dev_addr + 6
        ]
        assert [w.size for w in writes] == [4, 2]
        assert all("ioctl_set_mac" in w.ins for w in writes)

    def test_torn_read_under_forced_schedule(self, booted_net):
        """Reader preempts between the writer's two MAC chunks (#9)."""
        kernel, executor = booted_net
        writer = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, NEW_MAC)))
        reader = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0)))

        dev_addr = NETDEV.addr(kernel.globals["netdev_table"], "dev_addr")

        class ForceTear:
            def __init__(self):
                self.torn = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.torn
                    and access.is_write
                    and access.addr == dev_addr
                    and access.size == 4
                ):
                    self.torn = True
                    return True  # switch after the first (4-byte) chunk
                return False

        result = executor.run_concurrent([writer, reader], scheduler=ForceTear())
        got = result.returns[1][1]
        assert got not in (OLD_MAC, NEW_MAC)
        # Low 4 bytes new, high 2 bytes old: the torn value.
        assert got & 0xFFFF_FFFF == NEW_MAC & 0xFFFF_FFFF
        assert got >> 32 == OLD_MAC >> 32


class TestMtu:
    def test_set_mtu(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (3,)), Call("ioctl", (Res(0), 6, 900)))
        )
        assert result.returns[0][1] == 0

    def test_invalid_mtu_rejected(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (3,)), Call("ioctl", (Res(0), 6, 0)))
        )
        assert result.returns[0][1] == EINVAL

    def test_ipv6_send_uses_mtu(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (3,)), Call("sendmsg", (Res(0), 4000)))
        )
        assert result.returns[0][1] >= 0


class TestFanout:
    def test_add_and_demux(self, executor):
        result = executor.run_sequential(
            prog(
                Call("socket", (1,)),
                Call("setsockopt", (Res(0), 3, 0)),
                Call("sendmsg", (Res(0), 0)),
            )
        )
        assert result.returns[0][1] == 0
        assert result.returns[0][2] == 1  # demuxed to the AF_PACKET member

    def test_fanout_requires_packet_socket(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (0,)), Call("setsockopt", (Res(0), 3, 0)))
        )
        assert result.returns[0][1] == EINVAL

    def test_close_unlinks_member(self, booted_net):
        kernel, executor = booted_net
        result = executor.run_sequential(
            prog(
                Call("socket", (1,)),
                Call("setsockopt", (Res(0), 3, 0)),
                Call("close", (Res(0),)),
            )
        )
        assert result.returns[0] == [0, 0, 0]
        net = kernel.subsystems["net"]
        num = kernel.machine.memory.read_int(
            FANOUT.addr(net.fanout, "num_members"), 8
        )
        assert num == 0

    def test_demux_empty_group_returns_zero(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (1,)), Call("sendmsg", (Res(0), 3)))
        )
        assert result.returns[0][1] == 0

    def test_group_capacity(self, executor):
        calls = []
        for i in range(5):
            calls.append(Call("socket", (1,)))
        for i in range(5):
            calls.append(Call("setsockopt", (Res(i), 3, 0)))
        result = executor.run_sequential(prog(*calls))
        assert result.returns[0][5:9] == [0, 0, 0, 0]
        assert result.returns[0][9] == EINVAL  # fifth member rejected


class TestCongestionAndFib:
    def test_default_congestion_propagates(self, executor):
        result = executor.run_sequential(
            prog(
                Call("socket", (0,)),
                Call("setsockopt", (Res(0), 2, 5)),  # set default
                Call("setsockopt", (Res(0), 1, 0)),  # adopt default
            )
        )
        assert result.returns[0] == [0, 0, 0]

    def test_unknown_sockopt_rejected(self, executor):
        result = executor.run_sequential(
            prog(Call("socket", (0,)), Call("setsockopt", (Res(0), 9, 0)))
        )
        assert result.returns[0][1] == EINVAL

    def test_route_update_changes_cookie_observed_by_send(self, executor):
        result = executor.run_sequential(
            prog(
                Call("socket", (3,)),
                Call("route_update", (0x42,)),
                Call("sendmsg", (Res(0), 10)),
            )
        )
        # cookie & 0xFF = 0x42 contributes to the return value.
        assert result.returns[0][2] == 1 + 0x42

    def test_seqlock_leaves_sequence_even(self, booted_net):
        kernel, executor = booted_net
        executor.run_sequential(prog(Call("route_update", (7,))))
        net = kernel.subsystems["net"]
        from repro.kernel.subsystems.net import FIB6

        seq = kernel.machine.memory.read_int(FIB6.addr(net.fib6, "seq"), 4)
        assert seq % 2 == 0
