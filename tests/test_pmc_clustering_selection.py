"""Tests for the Table 1 clustering strategies and exemplar selection."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmc.clustering import (
    ALL_STRATEGIES,
    S_CH,
    S_CH_DOUBLE,
    S_CH_NULL,
    S_CH_UNALIGNED,
    S_FULL,
    S_INS,
    S_INS_PAIR,
    S_MEM,
    STRATEGIES_BY_NAME,
    pmc_features,
)
from repro.pmc.model import PMC, AccessKey
from repro.pmc.selection import cluster_pmcs, cluster_stats, ordered_exemplars, select_exemplars


def pmc(ins_w="w:1", addr_w=0x100, byte_w=8, value_w=1, ins_r="r:1",
        addr_r=0x100, byte_r=8, value_r=0, df=False):
    return PMC(
        write=AccessKey(addr=addr_w, size=byte_w, ins=ins_w, value=value_w),
        read=AccessKey(addr=addr_r, size=byte_r, ins=ins_r, value=value_r),
        df_leader=df,
    )


class TestStrategyKeys:
    def test_s_full_separates_by_value(self):
        a, b = pmc(value_w=1), pmc(value_w=2)
        assert len(cluster_pmcs([a, b], S_FULL)) == 2

    def test_s_ch_merges_values(self):
        a, b = pmc(value_w=1), pmc(value_w=2)
        assert len(cluster_pmcs([a, b], S_CH)) == 1

    def test_s_ch_separates_by_instruction(self):
        a, b = pmc(ins_w="w:1"), pmc(ins_w="w:2")
        assert len(cluster_pmcs([a, b], S_CH)) == 2

    def test_s_ch_null_keeps_only_zero_writes(self):
        a, b = pmc(value_w=0), pmc(value_w=7)
        clusters = cluster_pmcs([a, b], S_CH_NULL)
        members = [m for ms in clusters.values() for m in ms]
        assert members == [a]

    def test_s_ch_unaligned_keeps_only_mismatched_ranges(self):
        aligned = pmc()
        shifted = pmc(addr_r=0x104, byte_r=4)
        clusters = cluster_pmcs([aligned, shifted], S_CH_UNALIGNED)
        members = [m for ms in clusters.values() for m in ms]
        assert members == [shifted]

    def test_s_ch_double_keeps_only_df_leaders(self):
        plain, double = pmc(), pmc(df=True)
        clusters = cluster_pmcs([plain, double], S_CH_DOUBLE)
        members = [m for ms in clusters.values() for m in ms]
        assert members == [double]

    def test_s_ins_puts_each_pmc_in_two_clusters(self):
        p = pmc()
        clusters = cluster_pmcs([p], S_INS)
        assert len(clusters) == 2  # one by ins_w, one by ins_r

    def test_s_ins_merges_across_counterpart(self):
        """Same write instruction, different readers -> one write cluster."""
        a, b = pmc(ins_r="r:1"), pmc(ins_r="r:2")
        clusters = cluster_pmcs([a, b], S_INS)
        sizes = sorted(len(m) for m in clusters.values())
        assert sizes == [1, 1, 2]  # two reader clusters + one shared writer

    def test_s_ins_pair_key(self):
        a = pmc(ins_w="w:1", ins_r="r:1", addr_w=0x100)
        b = pmc(ins_w="w:1", ins_r="r:1", addr_w=0x200, addr_r=0x200)
        assert len(cluster_pmcs([a, b], S_INS_PAIR)) == 1

    def test_s_mem_clusters_by_ranges_only(self):
        a = pmc(ins_w="w:1", ins_r="r:1")
        b = pmc(ins_w="w:9", ins_r="r:9")
        assert len(cluster_pmcs([a, b], S_MEM)) == 1

    def test_registry_contains_all_eight(self):
        assert len(ALL_STRATEGIES) == 8
        assert set(STRATEGIES_BY_NAME) == {
            "S-FULL",
            "S-CH",
            "S-CH-NULL",
            "S-CH-UNALIGNED",
            "S-CH-DOUBLE",
            "S-INS",
            "S-INS-PAIR",
            "S-MEM",
        }

    def test_features_extraction(self):
        f = pmc_features(pmc(ins_w="w:9", value_r=3, df=True))
        assert f.ins_w == "w:9"
        assert f.value_r == 3
        assert f.df_leader


class TestSelection:
    def _population(self):
        # Cluster sizes under S-INS-PAIR: ("w:a", "r:a") x3, ("w:b", "r:b") x2,
        # ("w:c", "r:c") x1.
        return (
            [pmc(ins_w="w:a", ins_r="r:a", value_w=v) for v in (1, 2, 3)]
            + [pmc(ins_w="w:b", ins_r="r:b", value_w=v) for v in (1, 2)]
            + [pmc(ins_w="w:c", ins_r="r:c")]
        )

    def test_uncommon_first_order(self):
        chosen = ordered_exemplars(
            self._population(), S_INS_PAIR, random.Random(0)
        )
        assert [p.write.ins for p in chosen] == ["w:c", "w:b", "w:a"]

    def test_one_exemplar_per_cluster(self):
        chosen = ordered_exemplars(self._population(), S_INS_PAIR, random.Random(0))
        assert len(chosen) == 3

    def test_limit(self):
        chosen = ordered_exemplars(
            self._population(), S_INS_PAIR, random.Random(0), limit=2
        )
        assert len(chosen) == 2

    def test_no_duplicate_exemplars_under_s_ins(self):
        """Under S-INS each PMC sits in two clusters but is chosen once."""
        chosen = ordered_exemplars(self._population(), S_INS, random.Random(0))
        assert len(chosen) == len(set(chosen))

    def test_random_order_is_seed_deterministic(self):
        population = self._population()
        a = select_exemplars(population, S_INS_PAIR, seed=5, random_order=True)
        b = select_exemplars(population, S_INS_PAIR, seed=5, random_order=True)
        assert a == b

    def test_random_order_differs_from_sorted(self):
        population = self._population() * 4  # bigger so orders can differ
        sorted_order = select_exemplars(population, S_INS_PAIR, seed=1)
        shuffled = select_exemplars(population, S_INS_PAIR, seed=123, random_order=True)
        assert set(p.write.ins for p in sorted_order) == set(
            p.write.ins for p in shuffled
        )

    def test_cluster_stats(self):
        nclusters, members = cluster_stats(self._population(), S_INS_PAIR)
        assert (nclusters, members) == (3, 6)

    def test_empty_population(self):
        assert ordered_exemplars([], S_CH, random.Random(0)) == []


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_property_exemplars_unique_and_from_population(seed):
    rng = random.Random(seed)
    population = [
        pmc(ins_w=f"w:{rng.randrange(4)}", ins_r=f"r:{rng.randrange(4)}", value_w=rng.randrange(6))
        for _ in range(rng.randrange(1, 30))
    ]
    for strategy in ALL_STRATEGIES:
        chosen = ordered_exemplars(population, strategy, random.Random(seed))
        assert len(chosen) == len(set(chosen))
        assert set(chosen) <= set(population)
