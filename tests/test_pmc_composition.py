"""Tests for strategy composition (section 4.3, final paragraph)."""

import random

import pytest

from repro.pmc.clustering import S_CH, S_FULL, S_INS_PAIR, S_MEM
from repro.pmc.composition import (
    iterative_exemplars,
    subdivide_clusters,
    subdivided_exemplars,
)
from repro.pmc.model import PMC, AccessKey


def pmc(ins_w="w:1", ins_r="r:1", addr=0x100, value_w=1, value_r=0):
    return PMC(
        write=AccessKey(addr=addr, size=8, ins=ins_w, value=value_w),
        read=AccessKey(addr=addr, size=8, ins=ins_r, value=value_r),
    )


@pytest.fixture()
def population():
    # Two instruction pairs; pair "a" has many value variations (a large
    # S-INS-PAIR cluster that S-FULL can subdivide), pair "b" is rare.
    a = [pmc(ins_w="w:a", ins_r="r:a", value_w=v) for v in range(1, 7)]
    b = [pmc(ins_w="w:b", ins_r="r:b")]
    return a + b


class TestIterativeExemplars:
    def test_no_pmc_selected_twice(self, population):
        chosen = iterative_exemplars(
            population, [S_INS_PAIR, S_FULL], random.Random(0)
        )
        pmcs = [p for _, p in chosen]
        assert len(pmcs) == len(set(pmcs))

    def test_second_strategy_extends_coverage(self, population):
        """After S-INS-PAIR picks one exemplar per pair, S-FULL still has
        untested value-variants to contribute."""
        chosen = iterative_exemplars(
            population, [S_INS_PAIR, S_FULL], random.Random(0)
        )
        by_strategy = {}
        for name, p in chosen:
            by_strategy.setdefault(name, []).append(p)
        assert len(by_strategy["S-INS-PAIR"]) == 2  # pairs a and b
        assert len(by_strategy["S-FULL"]) == 5  # the remaining variants

    def test_limit_per_strategy(self, population):
        chosen = iterative_exemplars(
            population, [S_FULL], random.Random(0), limit_per_strategy=3
        )
        assert len(chosen) == 3

    def test_uncommon_first_within_each_strategy(self, population):
        chosen = iterative_exemplars(population, [S_INS_PAIR], random.Random(0))
        # Pair "b" (cluster of 1) precedes pair "a" (cluster of 6).
        assert chosen[0][1].write.ins == "w:b"

    def test_deterministic(self, population):
        a = iterative_exemplars(population, [S_INS_PAIR, S_FULL], random.Random(4))
        b = iterative_exemplars(population, [S_INS_PAIR, S_FULL], random.Random(4))
        assert a == b


class TestSubdivision:
    def test_small_clusters_untouched(self, population):
        clusters = subdivide_clusters(population, S_INS_PAIR, S_FULL, threshold=10)
        assert all(key[0] == "outer" for key in clusters)
        assert len(clusters) == 2

    def test_large_cluster_subdivided(self, population):
        clusters = subdivide_clusters(population, S_INS_PAIR, S_FULL, threshold=3)
        kinds = {key[0] for key in clusters}
        assert "outer+inner" in kinds  # pair "a" got split by value
        assert "outer" in kinds  # pair "b" stayed whole
        total = sum(len(m) for m in clusters.values())
        assert total == len(population)  # nothing lost

    def test_filtered_members_kept_in_residual(self, population):
        """Subdividing with a filtering strategy must not drop PMCs."""
        from repro.pmc.clustering import S_CH_NULL

        clusters = subdivide_clusters(population, S_INS_PAIR, S_CH_NULL, threshold=3)
        total = sum(len(m) for m in clusters.values())
        assert total == len(population)
        assert any(key[0] == "outer-rest" for key in clusters)

    def test_threshold_validation(self, population):
        with pytest.raises(ValueError):
            subdivide_clusters(population, S_INS_PAIR, S_FULL, threshold=0)

    def test_subdivided_exemplars_cover_more_than_coarse(self, population):
        coarse = subdivided_exemplars(
            population, S_INS_PAIR, S_FULL, threshold=100, rng=random.Random(0)
        )
        fine = subdivided_exemplars(
            population, S_INS_PAIR, S_FULL, threshold=2, rng=random.Random(0)
        )
        assert len(fine) > len(coarse)

    def test_subdivided_exemplars_limit(self, population):
        chosen = subdivided_exemplars(
            population, S_INS_PAIR, S_FULL, threshold=2, rng=random.Random(0), limit=3
        )
        assert len(chosen) == 3

    def test_with_real_strategies_on_mixed_population(self):
        rng = random.Random(9)
        population = [
            pmc(
                ins_w=f"w:{rng.randrange(3)}",
                ins_r=f"r:{rng.randrange(3)}",
                addr=0x100 + 8 * rng.randrange(4),
                value_w=rng.randrange(5),
            )
            for _ in range(60)
        ]
        clusters = subdivide_clusters(population, S_MEM, S_CH, threshold=5)
        assert sum(len(m) for m in clusters.values()) == len(population)
