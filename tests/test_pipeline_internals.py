"""Focused tests for pipeline internals and scheduler selection."""

import pytest

from repro.orchestrate.pipeline import ConcurrentTest, Snowboard, SnowboardConfig
from repro.orchestrate.queue import TaskFailure, WorkQueue, run_workers
from repro.sched.random_sched import RandomScheduler
from repro.sched.ski import SkiScheduler
from repro.sched.snowboard import SnowboardScheduler


@pytest.fixture(scope="module")
def sb():
    return Snowboard(
        SnowboardConfig(seed=3, corpus_budget=80, trials_per_pmc=4)
    ).prepare()


class TestSchedulerSelection:
    def _one_test(self, sb):
        tests, _ = sb.generate_tests("S-INS-PAIR", limit=1)
        return tests[0]

    def test_default_is_snowboard(self, sb):
        scheduler = sb.make_scheduler(self._one_test(sb), seed=0)
        assert isinstance(scheduler, SnowboardScheduler)

    def test_ski_kind(self, sb):
        scheduler = sb.make_scheduler(self._one_test(sb), seed=0, kind="ski")
        assert isinstance(scheduler, SkiScheduler)

    def test_random_kind(self, sb):
        scheduler = sb.make_scheduler(self._one_test(sb), seed=0, kind="random")
        assert isinstance(scheduler, RandomScheduler)

    def test_baseline_tests_get_random_scheduler(self, sb):
        from repro.orchestrate.pipeline import RANDOM_PAIRING

        tests, _ = sb.generate_tests(RANDOM_PAIRING, limit=1)
        scheduler = sb.make_scheduler(tests[0], seed=0)
        assert isinstance(scheduler, RandomScheduler)

    def test_incidental_universe_respects_config(self):
        config = SnowboardConfig(
            seed=3, corpus_budget=80, trials_per_pmc=4, adopt_incidental_pmcs=True
        )
        snowboard = Snowboard(config).prepare()
        tests, _ = snowboard.generate_tests("S-INS-PAIR", limit=1)
        scheduler = snowboard.make_scheduler(tests[0], seed=0)
        assert scheduler.universe  # populated from the pair index


class TestPairIndex:
    def test_pmcs_for_pair_consistent_with_pmcset(self, sb):
        pmc = sb.pmcset.all_pmcs()[0]
        pair = sb.pmcset.pairs(pmc)[0]
        assert pmc in sb._pmcs_for_pair(pair)

    def test_unknown_pair_is_empty(self, sb):
        assert sb._pmcs_for_pair((9999, 9998)) == []


class TestTestsFromExemplars:
    def test_respects_exemplar_order(self, sb):
        exemplars = sb.pmcset.all_pmcs()[:5]
        tests = sb.tests_from_exemplars(exemplars)
        assert [t.pmc for t in tests] == exemplars

    def test_pairs_come_from_pmcset(self, sb):
        exemplars = sb.pmcset.all_pmcs()[:5]
        for test in sb.tests_from_exemplars(exemplars):
            assert (test.writer_test, test.reader_test) in sb.pmcset.pairs(test.pmc)

    def test_duplicate_flag(self, sb):
        test = ConcurrentTest(
            writer=sb.corpus.entries[0].program,
            reader=sb.corpus.entries[0].program,
            writer_test=0,
            reader_test=0,
        )
        assert test.duplicate


class TestQueueRobustness:
    def test_worker_survives_task_exception(self):
        def factory():
            def execute(x):
                if x == 2:
                    raise RuntimeError("task 2 explodes")
                return x * 10

            return execute

        work = WorkQueue()
        for i in range(5):
            work.put(i)
        results = run_workers(work, factory, nworkers=2)
        assert results[0] == 0 and results[4] == 40
        # Failures arrive wrapped, so a task legitimately *returning* an
        # exception object stays distinguishable from a worker crash.
        assert isinstance(results[2], TaskFailure)
        assert results[2].task_id == 2
        assert isinstance(results[2].error, RuntimeError)
        assert len(results) == 5  # nothing stranded


class TestIterativeCampaign:
    def test_runs_strategies_in_order_without_repeats(self, sb):
        campaign = sb.run_iterative_campaign(
            ["S-INS-PAIR", "S-CH-NULL"], test_budget=12, trials=4
        )
        assert campaign.strategy == "S-INS-PAIR -> S-CH-NULL"
        assert campaign.tested_pmcs == 12
        assert campaign.trials >= 12

    def test_single_strategy_matches_plain_selection_size(self, sb):
        campaign = sb.run_iterative_campaign(["S-INS"], test_budget=6, trials=2)
        assert campaign.tested_pmcs == 6

    def test_unknown_strategy_rejected(self, sb):
        with pytest.raises(KeyError):
            sb.run_iterative_campaign(["NOT-A-STRATEGY"], test_budget=3)
