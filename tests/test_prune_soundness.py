"""Pruning soundness: ``--prune-commuting`` must not lose Table-2 bugs.

Commuting-schedule pruning trades trials for analysis: switch positions
between which the writer touches nothing the reader shares are claimed
to be interchangeable, so the trial budget is cut to a few
representatives per commuting class.  That claim is about *yield*, not
bit-identity — the pruned run executes strictly fewer trials — so the
test is a hunt over every Table-2 trigger pair (the same programs as
``tests/test_bugs_table2.py``), PMC-guided exactly like the pipeline:
every bug the full budget detects, the pruned budget must detect too.

The structural half of the guarantee — surviving trials run with
unchanged seeds, so the pruned outcome stream is a prefix of the full
one — is also pinned here, per pair, which is what makes yield loss
*beyond* the cut impossible by construction.
"""

from __future__ import annotations

import pytest

from repro.detect.catalog import match_observations
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.orchestrate.pipeline import ConcurrentTest, Stage4Task, run_task_trials
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.snowboard import SnowboardScheduler

# The Table-2 trigger pairs of tests/test_bugs_table2.py, verbatim.
PAIRS = {
    "SB01": (
        prog(Call("msgget", (2,)), Call("msgctl", (2, 0))),
        prog(Call("msgget", (2,))),
    ),
    "SB02": (
        prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0))),
        prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0))),
    ),
    "SB03": (
        prog(Call("open", (2,)), Call("write", (Res(0), 9))),
        prog(Call("open", (2,)), Call("write", (Res(0), 9))),
    ),
    "SB04": (
        prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1))),
        prog(Call("open", (2,)), Call("read", (Res(0), 2))),
    ),
    "SB05": (
        prog(Call("open", (1,)), Call("ioctl", (Res(0), 3, 64))),
        prog(Call("open", (2,)), Call("fadvise", (Res(0),))),
    ),
    "SB06": (
        prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1))),
        prog(Call("open", (2,)), Call("read", (Res(0), 2))),
    ),
    "SB07": (
        prog(Call("socket", (3,)), Call("ioctl", (Res(0), 6, 900))),
        prog(Call("socket", (3,)), Call("sendmsg", (Res(0), 4000))),
    ),
    "SB08": (
        prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xAABBCCDDEEFF))),
        prog(Call("socket", (1,)), Call("getsockname", (Res(0),))),
    ),
    "SB09": (
        prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xAABBCCDDEEFF))),
        prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0))),
    ),
    "SB10": (
        prog(*[Call("route_update", (v,)) for v in (1, 2, 3, 4, 5, 6)]),
        prog(Call("socket", (3,)), Call("sendmsg", (Res(0), 100))),
    ),
    "SB11": (prog(Call("mkdir", (2,))), prog(Call("lookup", (2,)))),
    "SB12": (
        prog(Call("socket", (2,)), Call("connect", (Res(0), 1))),
        prog(
            Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
        ),
    ),
    "SB13": (prog(Call("msgget", (1,))), prog(Call("msgget", (1,)))),
    "SB14": (
        prog(Call("tty_open", ()), Call("ioctl", (Res(0), 7, 0))),
        prog(Call("tty_open", ())),
    ),
    "SB15": (prog(Call("snd_ctl_add", (100,))), prog(Call("snd_ctl_add", (100,)))),
    "SB16": (
        prog(Call("socket", (0,)), Call("setsockopt", (Res(0), 2, 5))),
        prog(Call("socket", (0,)), Call("setsockopt", (Res(0), 1, 0))),
    ),
    "SB17": (
        prog(Call("socket", (1,)), Call("setsockopt", (Res(0), 3, 0)), Call("close", (Res(0),))),
        prog(Call("socket", (1,)), Call("setsockopt", (Res(0), 3, 0)), Call("sendmsg", (Res(0), 1))),
    ),
}

TRIALS = 40
MAX_PMCS_PER_PAIR = 6


def observed_bugs(outcomes):
    observations = [o for outcome in outcomes for o in outcome.observations]
    return set(match_observations(observations)) - {"unmatched"}


def run_task(executor, test, prune, seed):
    task = Stage4Task(task_id=0, test=test, trials=TRIALS, prune_commuting=prune)
    outcomes, _ = run_task_trials(executor, task, SnowboardScheduler(test.pmc, seed=seed))
    return outcomes


@pytest.fixture(scope="module")
def hunts():
    """PMC-guided full-vs-pruned hunt results for every trigger pair."""
    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)
    results = {}
    for bug_id, (writer, reader) in PAIRS.items():
        pw = profile_from_result(0, writer, executor.run_sequential(writer))
        pr = profile_from_result(1, reader, executor.run_sequential(reader))
        pmcset = identify_pmcs([pw, pr])
        pmcs = [p for p in pmcset if (0, 1) in pmcset.pairs(p)][:MAX_PMCS_PER_PAIR]
        per_pmc = []
        for seed, pmc in enumerate(pmcs):
            test = ConcurrentTest(
                writer=writer, reader=reader, writer_test=0, reader_test=1, pmc=pmc
            )
            per_pmc.append(
                (
                    run_task(executor, test, prune=False, seed=seed),
                    run_task(executor, test, prune=True, seed=seed),
                )
            )
        results[bug_id] = per_pmc
    return results


@pytest.mark.parametrize("bug_id", sorted(PAIRS))
def test_pruning_preserves_bug_yield(hunts, bug_id):
    """Every bug the full budget detects, the pruned budget detects."""
    full_ids, pruned_ids = set(), set()
    for full, pruned in hunts[bug_id]:
        full_ids |= observed_bugs(full)
        pruned_ids |= observed_bugs(pruned)
    assert full_ids - pruned_ids == set()


def outcome_key(outcome):
    """Every deterministic field (restore_seconds is wall-clock)."""
    return (
        outcome.trial,
        outcome.instructions,
        outcome.pages_restored,
        outcome.races,
        outcome.observations,
        outcome.channel_hit,
        outcome.switch_points,
        outcome.console,
        outcome.panic_message,
        outcome.forked,
    )


@pytest.mark.parametrize("bug_id", sorted(PAIRS))
def test_pruned_stream_is_prefix_of_full_stream(hunts, bug_id):
    """Surviving trials are the full run's first trials, bit for bit."""
    for full, pruned in hunts[bug_id]:
        assert 0 < len(pruned) <= len(full)
        for mine, theirs in zip(pruned, full):
            assert outcome_key(mine) == outcome_key(theirs)


def test_pruning_actually_prunes(hunts):
    """The sweep is not vacuous: most pairs run far fewer trials."""
    total_full = sum(len(f) for runs in hunts.values() for f, _ in runs)
    total_pruned = sum(len(p) for runs in hunts.values() for _, p in runs)
    assert total_pruned < total_full / 2


def test_every_catalog_bug_has_a_pair_here():
    for i in range(1, 18):
        assert f"SB{i:02d}" in PAIRS
