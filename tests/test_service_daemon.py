"""The campaign service daemon over HTTP, as a real subprocess.

The acceptance contract for campaign-as-a-service: start ``repro serve``
as a child process, submit three tenants' jobs over the JSON API,
``SIGKILL`` the daemon mid-campaign, start a fresh daemon on the same
data directory, and every job finishes with a summary bit-identical to
the same spec run solo through ``run_rounds``.  Also exercised: the
health endpoint, endpoint-file discovery, offset-based trace streaming
and graceful SIGTERM shutdown.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import TERMINAL_STATES
from repro.service.client import ServiceClient, ServiceClientError

from tests.test_service import BASE, run_solo

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SPECS = {
    "alice": dict(BASE),
    "bob": dict(BASE, seed=13, rounds=3),
    "dave": dict(BASE, seed=19),
}


def spawn_daemon(data_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    endpoint = os.path.join(data_dir, "endpoint")
    if os.path.exists(endpoint):  # stale after SIGKILL: the new daemon
        os.remove(endpoint)  # republishes once it has bound its port
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data", data_dir],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while not os.path.exists(endpoint):
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died at startup:\n{process.stdout.read()}"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("daemon never published its endpoint")
        time.sleep(0.05)
    return process


def wait_all(client: ServiceClient, job_ids, timeout: float = 300.0):
    deadline = time.monotonic() + timeout
    while True:
        jobs = {j["job_id"]: j for j in client.jobs()}
        if all(jobs[j]["state"] in TERMINAL_STATES for j in job_ids):
            return jobs
        assert time.monotonic() < deadline, f"jobs stuck: {jobs}"
        time.sleep(0.2)


@pytest.fixture(scope="module")
def solo():
    return {
        tenant: run_solo(spec)[1].summary() for tenant, spec in SPECS.items()
    }


def test_daemon_sigkill_restart_is_bit_identical(tmp_path_factory, solo):
    data = str(tmp_path_factory.mktemp("daemon"))
    daemon = spawn_daemon(data)
    killed = False
    try:
        client = ServiceClient.connect(data)
        assert client.health()["ok"] is True
        ids = {
            tenant: client.submit(tenant, spec)["job_id"]
            for tenant, spec in SPECS.items()
        }
        # Let the rotation make partial progress, then pull the plug.
        deadline = time.monotonic() + 120
        while True:
            jobs = {j["job_id"]: j for j in client.jobs()}
            if any(j["rounds_done"] >= 1 for j in jobs.values()) and not all(
                j["state"] in TERMINAL_STATES for j in jobs.values()
            ):
                break
            assert time.monotonic() < deadline, "no mid-campaign window"
            time.sleep(0.05)
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30)
        killed = True

        revived = spawn_daemon(data)
        try:
            client = ServiceClient.connect(data)  # fresh endpoint file
            jobs = wait_all(client, ids.values())
            for tenant, job_id in ids.items():
                assert jobs[job_id]["state"] == "done", jobs[job_id]
                assert client.summary(job_id) == solo[tenant]

            # Trace streaming: offset-paged reads reassemble the full
            # per-job trace, which spans both daemon incarnations.
            offset, records = 0, []
            while True:
                offset, lines = client.trace(ids["alice"], offset, limit=50)
                if not lines:
                    break
                records.extend(json.loads(line) for line in lines)
            assert records[0]["kind"] == "header"
            assert records[0]["job_id"] == ids["alice"]
            # One header only: the revived daemon appended to the trace
            # instead of restarting it, so the stream stays well-formed.
            assert sum(1 for r in records if r["kind"] == "header") == 1
            assert any(r["kind"] == "metrics" for r in records)

            # Graceful shutdown removes the endpoint file.
            revived.send_signal(signal.SIGTERM)
            assert revived.wait(timeout=30) == 0
            assert not os.path.exists(os.path.join(data, "endpoint"))
        finally:
            if revived.poll() is None:
                revived.kill()
                revived.wait(timeout=30)
    finally:
        if not killed and daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)


def test_client_reports_missing_daemon(tmp_path):
    with pytest.raises(ServiceClientError, match="endpoint"):
        ServiceClient.connect(str(tmp_path))


class TestConnectRetry:
    """Refused connections retry with backoff, then surface.

    The daemon publishes its endpoint file just before it starts
    accepting, so a client fired immediately after ``repro serve`` can
    hit a bound-but-not-listening window; the retry loop papers over
    exactly that and nothing else.
    """

    def client(self, monkeypatch, outcomes):
        monkeypatch.setattr(ServiceClient, "CONNECT_BACKOFF", 0.001)
        client = ServiceClient("127.0.0.1", 1)
        calls = []

        def fake_request_once(method, path, body=None):
            calls.append((method, path))
            outcome = outcomes[min(len(calls), len(outcomes)) - 1]
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        monkeypatch.setattr(client, "_request_once", fake_request_once)
        return client, calls

    def test_refused_connect_retries_until_listening(self, monkeypatch):
        client, calls = self.client(
            monkeypatch,
            [ConnectionRefusedError(), ConnectionRefusedError(), {"ok": True}],
        )
        assert client.health() == {"ok": True}
        assert len(calls) == 3

    def test_retries_are_bounded(self, monkeypatch):
        client, calls = self.client(monkeypatch, [ConnectionRefusedError()])
        with pytest.raises(ConnectionRefusedError):
            client.health()
        assert len(calls) == ServiceClient.CONNECT_RETRIES + 1

    def test_api_errors_do_not_retry(self, monkeypatch):
        client, calls = self.client(
            monkeypatch, [ServiceClientError(404, "no such job")]
        )
        with pytest.raises(ServiceClientError):
            client.status("job-9999")
        assert len(calls) == 1


def test_malformed_numbers_are_client_errors(tmp_path):
    """Bad query/body numbers are the client's fault: 400, never 500."""
    from repro.service.daemon import ServiceDaemon

    data = str(tmp_path / "svc")
    daemon = ServiceDaemon(data)
    thread = threading.Thread(
        target=daemon._httpd.serve_forever, daemon=True
    )
    thread.start()
    try:
        client = ServiceClient.connect(data)
        job_id = client.submit("alice", SPECS["alice"])["job_id"]
        for path in (
            f"/jobs/{job_id}/trace?offset=abc",
            f"/jobs/{job_id}/trace?offset=-3",
            f"/jobs/{job_id}/trace?limit=abc",
            f"/jobs/{job_id}/trace?limit=0",
        ):
            with pytest.raises(ServiceClientError) as err:
                client._request("GET", path)
            assert err.value.status == 400, path
        with pytest.raises(ServiceClientError) as err:
            client._request(
                "POST",
                f"/jobs/{job_id}/fork",
                {"snapshot": "snap-0001", "tenant": "x", "rounds": "x"},
            )
        assert err.value.status == 400
    finally:
        daemon._httpd.shutdown()
        thread.join(timeout=10)
        daemon.service.stop()
