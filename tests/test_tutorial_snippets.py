"""The tutorial's code must actually work: each section as a test."""

import pytest

from repro import (
    Call,
    Executor,
    Res,
    Snowboard,
    SnowboardConfig,
    SnowboardScheduler,
    boot_kernel,
    identify_pmcs,
    prog,
)
from repro.detect import RaceDetector, analyze_all
from repro.profile.profiler import profile_from_result


@pytest.fixture(scope="module")
def env():
    kernel, snapshot = boot_kernel()
    return kernel, Executor(kernel, snapshot)


class TestTutorialSections:
    def test_section1_boot_and_run(self, env):
        _, executor = env
        test = prog(
            Call("open", (1,)),
            Call("write", (Res(0), 0x1234)),
            Call("read", (Res(0), 1)),
        )
        result = executor.run_sequential(test)
        assert result.returns[0] == [0, 0, 4660]

    def test_section2_and_3_pmc_hint_exposes_l2tp(self, env):
        _, executor = env
        writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        reader = prog(
            Call("socket", (2,)),
            Call("connect", (Res(0), 1)),
            Call("sendmsg", (Res(0), 5)),
        )
        pw = profile_from_result(0, writer, executor.run_sequential(writer))
        pr = profile_from_result(1, reader, executor.run_sequential(reader))
        pmcset = identify_pmcs([pw, pr])
        assert len(pmcset) > 10

        pmc = next(
            p
            for p in pmcset
            if "l2tp_tunnel_register" in p.write.ins and (0, 1) in pmcset.pairs(p)
        )
        scheduler = SnowboardScheduler(pmc, seed=3)
        panicked = False
        for trial in range(64):
            scheduler.begin_trial(trial)
            detector = RaceDetector()
            result = executor.run_concurrent(
                [writer, reader], scheduler=scheduler, race_detector=detector
            )
            if result.panicked:
                panicked = True
                assert [r for r in detector.reports() if r.involves("l2tp")] == []
                break
            scheduler.end_trial(result)
        assert panicked

    def test_sections_4_to_6_pipeline_package_triage(self):
        sb = Snowboard(
            SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=10)
        ).prepare()
        campaign = sb.run_campaign("S-INS-PAIR", test_budget=20)
        summary = campaign.summary()
        assert summary["tested_pmcs"] == 20

        if sb.repro_packages:
            from repro.orchestrate.persistence import reproduce

            bug_id, package = sorted(sb.repro_packages.items())[0]
            report = package.render_report()
            assert bug_id in report
            assert "Reproducer" in report
            replayed = reproduce(sb.executor, package)
            assert replayed.console == package.expected_console

        races = [
            r.observation.race
            for r in campaign.records
            if r.observation.kind == "race"
        ]
        if races:
            reports = analyze_all(races, sb.pmcset)
            assert any(r.pmc_confirmed for r in reports)

    def test_section7_fixed_kernel_is_silent(self):
        fixed = Snowboard(
            SnowboardConfig(
                seed=7, corpus_budget=100, trials_per_pmc=6, fixed_kernel=True
            )
        ).prepare()
        campaign = fixed.run_campaign("S-INS", test_budget=15)
        assert campaign.records == []
