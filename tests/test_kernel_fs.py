"""Tests for the filesystem subsystem: semantics + planted AV/DR bugs."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.errors import ENOENT
from repro.kernel.kernel import boot_kernel
from repro.kernel.subsystems.fs import EXT_MAGIC, INODE, ext4_csum
from repro.sched.executor import Executor


@pytest.fixture()
def ex():
    kernel, snapshot = boot_kernel()
    return Executor(kernel, snapshot)


class TestSequentialSemantics:
    def test_open_read_returns_boot_data(self, ex):
        result = ex.run_sequential(prog(Call("open", (1,)), Call("read", (Res(0), 1))))
        assert result.returns[0] == [0, 0x1001]

    def test_write_then_read(self, ex):
        result = ex.run_sequential(
            prog(Call("open", (2,)), Call("write", (Res(0), 77)), Call("read", (Res(0), 1)))
        )
        assert result.returns[0] == [0, 0, 77]

    def test_write_keeps_checksum_valid(self, ex):
        result = ex.run_sequential(
            prog(Call("open", (1,)), Call("write", (Res(0), 5)), Call("fsync", (Res(0),)))
        )
        assert result.returns[0][-1] == 0
        assert result.console == []

    def test_write_keeps_magic_valid(self, ex):
        result = ex.run_sequential(
            prog(Call("open", (1,)), Call("write", (Res(0), 5)), Call("write", (Res(0), 6)))
        )
        assert result.returns[0] == [0, 0, 0]
        assert result.console == []

    def test_swap_boot_loader_sequentially_clean(self, ex):
        result = ex.run_sequential(
            prog(
                Call("open", (1,)),
                Call("ioctl", (Res(0), 1, 0)),
                Call("fsync", (Res(0),)),
                Call("read", (Res(0), 1)),
            )
        )
        assert result.returns[0][1] == 0  # swap succeeded
        assert result.returns[0][2] == 0  # checksum still valid
        assert result.returns[0][3] == 0x1000  # got the boot inode's data
        assert result.console == []

    def test_swap_boot_with_boot_inode_rejected(self, ex):
        from repro.kernel.errors import EINVAL

        result = ex.run_sequential(prog(Call("open", (0,)), Call("ioctl", (Res(0), 1, 0))))
        assert result.returns[0][1] == EINVAL

    def test_configfs_mkdir_then_lookup(self, ex):
        result = ex.run_sequential(prog(Call("mkdir", (3,)), Call("lookup", (3,))))
        assert result.returns[0][0] == 0
        assert result.returns[0][1] >= 0  # an fd

    def test_configfs_lookup_missing(self, ex):
        result = ex.run_sequential(prog(Call("lookup", (3,))))
        assert result.returns[0] == [ENOENT]

    def test_open_via_configfs_path_namespace(self, ex):
        result = ex.run_sequential(prog(Call("mkdir", (1,)), Call("open", (101,))))
        assert result.returns[0][1] >= 0

    def test_fadvise_returns_readahead(self, ex):
        result = ex.run_sequential(prog(Call("open", (1,)), Call("fadvise", (Res(0),))))
        assert result.returns[0][1] == 32  # boot-time ra_pages


class TestChecksumHelper:
    def test_csum_mixes_generation(self):
        assert ext4_csum(1, 1) != ext4_csum(1, 2)

    def test_csum_is_32bit(self):
        assert 0 <= ext4_csum(0xFFFFFFFF, 0xFFFFFFFF) <= 0xFFFFFFFF


class _ForceAfterSection1:
    """Preempt thread 0 right after its first locked section ends.

    The unlock is the store of 0 to the given 4-byte lock word; switching
    right after it exposes the atomicity hole between the two sections.
    """

    def __init__(self, lock_addr: int, count: int = 1):
        self.lock_addr = lock_addr
        self.remaining = count

    def begin_trial(self, t):
        pass

    def end_trial(self, r):
        pass

    def on_access(self, access):
        if (
            access.thread == 0
            and self.remaining
            and access.is_write
            and access.addr == self.lock_addr
            and access.size == 4
            and access.value == 0
        ):
            self.remaining -= 1
            return True
        return False


class TestSwapBootLoaderAV:
    """Bug #2 analogue: duplicate concurrent swaps corrupt the checksum."""

    @staticmethod
    def _boot_lock(kernel):
        fs = kernel.subsystems["fs"]
        return INODE.addr(fs.inode_addr(0), "lock")

    def test_concurrent_duplicate_swaps_report_checksum_error(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        test = prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0)))
        scheduler = _ForceAfterSection1(self._boot_lock(kernel))
        result = executor.run_concurrent([test, test], scheduler=scheduler)
        assert any("checksum invalid" in line for line in result.console)

    def test_error_message_names_the_function(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        test = prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0)))
        result = executor.run_concurrent(
            [test, test], scheduler=_ForceAfterSection1(self._boot_lock(kernel))
        )
        assert any("swap_inode_boot_loader" in line for line in result.console)


class TestExtentMagicAV:
    """Bug #3 analogue: duplicate concurrent writes observe zero magic."""

    @staticmethod
    def _inode2_lock(kernel):
        fs = kernel.subsystems["fs"]
        return INODE.addr(fs.inode_addr(2), "lock")

    def test_concurrent_writes_report_invalid_magic(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        test = prog(Call("open", (2,)), Call("write", (Res(0), 9)))
        result = executor.run_concurrent(
            [test, test], scheduler=_ForceAfterSection1(self._inode2_lock(kernel))
        )
        assert any("ext4_ext_check_inode" in line for line in result.console)
        assert any("invalid magic" in line for line in result.console)

    def test_magic_restored_after_both_writes(self):
        """Even in the buggy interleaving the magic ends up restored."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        test = prog(Call("open", (2,)), Call("write", (Res(0), 9)))
        executor.run_concurrent(
            [test, test], scheduler=_ForceAfterSection1(self._inode2_lock(kernel))
        )
        fs = kernel.subsystems["fs"]
        magic = kernel.machine.memory.read_int(
            INODE.addr(fs.inode_addr(2), "eh_magic"), 4
        )
        assert magic == EXT_MAGIC


class TestConfigfsNullDeref:
    """Bug #11 analogue: lookup dereferences a dentry without an inode."""

    def test_forced_schedule_panics(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        writer = prog(Call("mkdir", (2,)))
        reader = prog(Call("lookup", (2,)))

        class ForcePublishWindow:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                # Right after mkdir publishes the dentry (children head store).
                if (
                    access.thread == 0
                    and not self.switched
                    and "sys_mkdir" in access.ins
                    and access.is_write
                    and access.value != 0
                    and access.size == 8
                    and access.addr
                    == kernel.globals["configfs_root"] + 8  # children field
                ):
                    self.switched = True
                    return True
                return False

        result = executor.run_concurrent([writer, reader], scheduler=ForcePublishWindow())
        assert result.panicked
        assert "NULL pointer dereference" in result.panic_message
        assert "sys_lookup" in result.panic_message
