"""Tests for the FIFO, semaphore and procinfo subsystems."""


from repro.detect.datarace import RaceDetector
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.errors import EAGAIN_E, ENOENT
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


class TestFifo:
    def test_write_then_read_roundtrip(self, executor):
        result = executor.run_sequential(
            prog(
                Call("fifo_open", (0,)),
                Call("fifo_write", (Res(0), 42)),
                Call("fifo_read", (Res(0),)),
            )
        )
        assert result.returns[0] == [0, 0, 42]

    def test_fifo_order(self, executor):
        result = executor.run_sequential(
            prog(
                Call("fifo_open", (0,)),
                Call("fifo_write", (Res(0), 1)),
                Call("fifo_write", (Res(0), 2)),
                Call("fifo_read", (Res(0),)),
                Call("fifo_read", (Res(0),)),
            )
        )
        assert result.returns[0][3:] == [1, 2]

    def test_empty_read_is_eagain(self, executor):
        result = executor.run_sequential(
            prog(Call("fifo_open", (1,)), Call("fifo_read", (Res(0),)))
        )
        assert result.returns[0][1] == EAGAIN_E

    def test_full_write_is_eagain(self, executor):
        calls = [Call("fifo_open", (0,))]
        calls += [Call("fifo_write", (Res(0), i)) for i in range(5)]
        result = executor.run_sequential(prog(*calls))
        assert result.returns[0][1:5] == [0, 1, 2, 3]
        assert result.returns[0][5] == EAGAIN_E

    def test_fifos_are_shared_across_processes(self):
        """Writer in process 0, reader in process 1 — the FIFO is global."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        writer = prog(Call("fifo_open", (0,)), Call("fifo_write", (Res(0), 77)))
        reader = prog(Call("fifo_open", (0,)), Call("fifo_read", (Res(0),)))
        result = executor.run_concurrent([writer, reader])  # writer first
        assert result.returns[1][1] == 77

    def test_no_data_races_in_fifo_traffic(self):
        """The FIFO layer is properly locked: heavy cross-process traffic
        must never produce a race report."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        a = prog(
            Call("fifo_open", (0,)),
            Call("fifo_write", (Res(0), 1)),
            Call("fifo_read", (Res(0),)),
            Call("fifo_write", (Res(0), 2)),
        )
        for seed in range(10):
            scheduler = RandomScheduler(seed=seed, switch_probability=0.4)
            scheduler.begin_trial(0)
            detector = RaceDetector()
            executor.run_concurrent([a, a], scheduler=scheduler, race_detector=detector)
            fifo_races = [r for r in detector.reports() if r.involves("fifo")]
            assert fifo_races == []


class TestSem:
    def test_semget_creates(self, executor):
        result = executor.run_sequential(prog(Call("semget", (1,))))
        assert result.returns[0] == [1]

    def test_semop_adjusts_value(self, executor):
        # delta encoding: (arg % 8) - 4, so arg 6 -> +2.
        result = executor.run_sequential(
            prog(Call("semget", (1,)), Call("semop", (1, 6)), Call("semctl", (1, 1)))
        )
        assert result.returns[0] == [1, 3, 3]  # 1 + 2

    def test_value_floors_at_zero(self, executor):
        result = executor.run_sequential(
            prog(Call("semget", (1,)), Call("semop", (1, 0)), Call("semctl", (1, 1)))
        )
        assert result.returns[0][2] == 0  # 1 - 4 floored

    def test_rmid_removes(self, executor):
        result = executor.run_sequential(
            prog(Call("semget", (2,)), Call("semctl", (2, 0)), Call("semop", (2, 6)))
        )
        assert result.returns[0] == [2, 0, ENOENT]

    def test_sem_rhashtable_is_independent_of_ipc(self, executor):
        """Key 1 in the sem namespace does not collide with msg key 1."""
        result = executor.run_sequential(
            prog(
                Call("semget", (1,)),
                Call("msgget", (1,)),
                Call("semctl", (1, 0)),
                Call("msgrcv", (1,)),
            )
        )
        assert result.returns[0][2] == 0  # sem removed
        assert result.returns[0][3] == 0  # msg queue still there (value 0)

    def test_double_fetch_reachable_from_sem_family(self):
        """Figure 4's point: the rhashtable bug fires from *any* user.

        semget ‖ semctl(IPC_RMID) panics exactly like msgget ‖ msgctl.
        """
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        writer = prog(Call("semget", (2,)), Call("semctl", (2, 0)))
        reader = prog(Call("semget", (2,)))
        from repro.kernel.rhashtable import bucket_addr

        table = kernel.subsystems["sem"].table

        class ForceDoubleFetch:
            def __init__(self):
                self.done = set()

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and "rht_insert" in access.ins
                    and access.is_write
                    and access.addr == bucket_addr(table, 2)
                    and "a" not in self.done
                ):
                    self.done.add("a")
                    return True
                if access.thread == 1 and "rht_ptr" in access.ins and "b" not in self.done:
                    self.done.add("b")
                    return True
                return False

        result = executor.run_concurrent([writer, reader], scheduler=ForceDoubleFetch())
        assert result.panicked
        assert "rht_lookup" in result.panic_message


class TestProcInfo:
    def test_sysinfo_reflects_allocations(self, executor):
        result = executor.run_sequential(
            prog(Call("sysinfo", ()), Call("msgget", (0,)), Call("sysinfo", ()))
        )
        before, _, after = result.returns[0]
        assert after > before  # the msgget allocated memory

    def test_sysinfo_is_a_new_sb13_reader(self):
        """sysinfo's lockless reads race with allocator writers (#13)."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        reader = prog(Call("sysinfo", ()), Call("sysinfo", ()))
        writer = prog(Call("msgget", (1,)))
        found = False
        for seed in range(30):
            scheduler = RandomScheduler(seed=seed, switch_probability=0.4)
            scheduler.begin_trial(0)
            detector = RaceDetector()
            executor.run_concurrent(
                [writer, reader], scheduler=scheduler, race_detector=detector
            )
            if any(
                r.involves("sys_sysinfo") and r.involves("alloc.py")
                for r in detector.reports()
            ):
                found = True
                break
        assert found
