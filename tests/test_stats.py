"""Trace aggregation and the ``repro stats`` views.

Unit tests drive :mod:`repro.obs.stats` over synthetic event lists; the
integration half runs real traced campaigns and pins the headline
contracts: tracing changes no campaign result, and serial and parallel
campaigns of the same seed emit identical funnel totals.
"""

from __future__ import annotations

import pytest

from repro.obs import Observer, JsonlSink
from repro.obs.stats import (
    aggregate_trace,
    fleet_worker_rows,
    funnel_rows,
    funnel_totals,
    load_stats,
    percentile,
    render_stats,
    stage_time_rows,
    trial_latency,
)
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig


def span(name, t0, dur, **attrs):
    return {
        "kind": "span",
        "name": name,
        "t0": t0,
        "dur": dur,
        "depth": 0,
        "parent": None,
        "attrs": attrs,
    }


class TestAggregation:
    def test_span_aggregation(self):
        events = [
            span("stage4.trial", 0.0, 0.010),
            span("stage4.trial", 0.1, 0.030),
            span("stage2.identify", 0.2, 0.500),
        ]
        stats = aggregate_trace({}, events)
        trial = stats.spans["stage4.trial"]
        assert trial.count == 2
        assert trial.total == pytest.approx(0.040)
        assert trial.max == pytest.approx(0.030)
        assert trial.mean == pytest.approx(0.020)
        # Wall: earliest start to latest end across all spans.
        assert stats.wall == pytest.approx(0.7)

    def test_last_metrics_snapshot_wins(self):
        events = [
            {"kind": "metrics", "counters": {"stage4.trials": 3}, "gauges": {}},
            {"kind": "metrics", "counters": {"stage4.trials": 8}, "gauges": {"stage4.bugs": 2}},
        ]
        stats = aggregate_trace({}, events)
        assert stats.counters == {"stage4.trials": 8}
        assert stats.gauges == {"stage4.bugs": 2}

    def test_point_events_counted(self):
        events = [{"kind": "event", "name": "fleet.worker", "attrs": {}}] * 3
        assert aggregate_trace({}, events).nevents == 3


class TestFunnel:
    def test_rows_tolerate_missing_names(self):
        stats = aggregate_trace(
            {}, [{"kind": "metrics", "counters": {"stage4.trials": 1234}, "gauges": {}}]
        )
        rows = funnel_rows(stats)
        by_label = {label: value for _stage, label, value in rows}
        assert by_label["trials executed"] == "1,234"
        assert by_label["PMCs identified"] == "-"

    def test_totals_exclude_history_dependent_quantities(self):
        stats = aggregate_trace(
            {},
            [
                {
                    "kind": "metrics",
                    "counters": {"stage4.trials": 5, "restore.pages": 9999},
                    "gauges": {"stage4.bugs": 1},
                }
            ],
        )
        totals = funnel_totals(stats)
        assert totals == {"stage4.trials": 5, "stage4.bugs": 1}

    def test_gauges_feed_the_funnel(self):
        stats = aggregate_trace(
            {}, [{"kind": "metrics", "counters": {}, "gauges": {"stage4.bugs": 4}}]
        )
        by_label = {label: v for _s, label, v in funnel_rows(stats)}
        assert by_label["catalogued bugs"] == "4"


class TestTimeAndLatency:
    def test_stage_time_rows_sorted_by_total(self):
        events = [
            span("fast", 0.0, 0.01),
            span("slow", 0.0, 1.0),
            span("fast", 0.5, 0.01),
        ]
        rows = stage_time_rows(aggregate_trace({}, events))
        assert [r[0] for r in rows] == ["slow", "fast"]
        assert rows[0][1] == "1"  # count
        assert rows[1][1] == "2"

    def test_trial_latency_percentiles(self):
        events = [span("stage4.trial", i * 0.1, (i + 1) / 1000.0) for i in range(100)]
        latency = trial_latency(aggregate_trace({}, events))
        assert latency["count"] == 100
        assert latency["p50_ms"] == pytest.approx(50.0)
        assert latency["p95_ms"] == pytest.approx(95.0)
        assert latency["max_ms"] == pytest.approx(100.0)

    def test_trial_latency_empty(self):
        latency = trial_latency(aggregate_trace({}, []))
        assert latency == {
            "count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "mean_ms": 0.0, "max_ms": 0.0
        }

    def test_percentile_nearest_rank(self):
        assert percentile([], 50) == 0.0
        assert percentile([5.0], 95) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0


class TestRendering:
    def test_render_stats_has_all_three_views(self):
        stats = aggregate_trace(
            {"kind": "header", "schema": 1, "strategy": "S-INS-PAIR", "seed": 7},
            [
                span("stage4.trial", 0.0, 0.01),
                {"kind": "metrics", "counters": {"stage4.trials": 1}, "gauges": {}},
            ],
        )
        text = render_stats(stats)
        assert "campaign: strategy=S-INS-PAIR, seed=7" in text
        assert "== Stage 1 -> 4 funnel ==" in text
        assert "== Per-stage wall time ==" in text
        assert "== Trial latency ==" in text

    def test_markdown_mode(self):
        stats = aggregate_trace({}, [span("stage4.trial", 0.0, 0.01)])
        text = render_stats(stats, markdown=True)
        assert "|" in text and "---" in text

    def test_fleet_worker_rows_from_counters(self):
        stats = aggregate_trace(
            {},
            [
                {
                    "kind": "metrics",
                    "counters": {
                        "fleet.w1.tasks": 3,
                        "fleet.w1.retries": 1,
                        "fleet.w0.tasks": 4,
                        "fleet.w0.respawns": 1,
                        "fleet.w0.missed_heartbeats": 1,
                        "stage4.trials": 7,  # non-fleet counters ignored
                    },
                    "gauges": {},
                }
            ],
        )
        rows = fleet_worker_rows(stats)
        # "-" marks counters the trace never emitted (real campaigns
        # emit explicit zeros for every worker).
        assert rows == [
            ["w0", "4", "-", "1", "1"],
            ["w1", "3", "1", "-", "-"],
        ]
        assert "== Fleet workers ==" in render_stats(stats)

    def test_fleet_worker_section_absent_for_serial_traces(self):
        stats = aggregate_trace(
            {},
            [{"kind": "metrics", "counters": {"stage4.trials": 7}, "gauges": {}}],
        )
        assert fleet_worker_rows(stats) == []
        assert "Fleet workers" not in render_stats(stats)


# -- integration: real traced campaigns ----------------------------------------

CONFIG = SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=8)
BUDGET = 8


def traced_campaign(workers: int, path: str):
    obs = Observer(JsonlSink(path, header={"seed": CONFIG.seed, "workers": workers}))
    snowboard = Snowboard(CONFIG, observer=obs)
    campaign = snowboard.run_campaign("S-INS-PAIR", test_budget=BUDGET, workers=workers)
    obs.close()
    return campaign


@pytest.fixture(scope="module")
def serial(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "serial.jsonl")
    return traced_campaign(1, path), path


@pytest.fixture(scope="module")
def parallel(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "parallel.jsonl")
    return traced_campaign(2, path), path


class TestTracedCampaigns:
    def test_tracing_changes_no_results(self, serial):
        campaign, _path = serial
        untraced = Snowboard(CONFIG).run_campaign("S-INS-PAIR", test_budget=BUDGET)
        assert campaign.summary() == untraced.summary()

    def test_serial_and_parallel_summaries_identical(self, serial, parallel):
        assert serial[0].summary() == parallel[0].summary()

    def test_serial_and_parallel_funnel_totals_identical(self, serial, parallel):
        totals_serial = funnel_totals(load_stats(serial[1]))
        totals_parallel = funnel_totals(load_stats(parallel[1]))
        assert totals_serial == totals_parallel
        assert totals_serial  # not vacuously equal

    def test_funnel_matches_campaign_counters(self, serial):
        campaign, path = serial
        totals = funnel_totals(load_stats(path))
        assert totals["stage4.trials"] == campaign.trials
        assert totals["stage4.tests"] == campaign.tested_pmcs
        assert totals["stage4.instructions"] == campaign.instructions
        assert totals["stage4.exercised"] == campaign.exercised_pmcs
        assert totals["stage4.bugs"] == campaign.distinct_bugs

    def test_trial_spans_cover_every_merged_trial(self, serial, parallel):
        for campaign, path in (serial, parallel):
            stats = load_stats(path)
            assert stats.spans["stage4.trial"].count == campaign.trials
            assert stats.spans["stage4.test"].count == campaign.tested_pmcs

    def test_render_stats_over_real_trace(self, parallel):
        _campaign, path = parallel
        text = render_stats(load_stats(path))
        assert "trials executed" in text
        assert "stage2.identify" in text
