"""Tests for the L2TP subsystem and the Figure 1 order-violation bug."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.errors import ENOTCONN
from repro.kernel.kernel import boot_kernel
from repro.kernel.subsystems.l2tp import TUNNEL
from repro.sched.executor import Executor


@pytest.fixture()
def booted_l2tp():
    kernel, snapshot = boot_kernel()
    return kernel, Executor(kernel, snapshot)


class TestSequentialSemantics:
    def test_connect_registers_tunnel(self, booted_l2tp):
        kernel, executor = booted_l2tp
        result = executor.run_sequential(
            prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        )
        assert result.returns[0] == [0, 0]
        l2tp = kernel.subsystems["l2tp"]
        head = kernel.machine.memory.read_int(l2tp.list_head, 8)
        assert head != 0
        tid = kernel.machine.memory.read_int(TUNNEL.addr(head, "tunnel_id"), 8)
        assert tid == 1

    def test_second_connect_reuses_tunnel(self, booted_l2tp):
        kernel, executor = booted_l2tp
        result = executor.run_sequential(
            prog(
                Call("socket", (2,)),
                Call("connect", (Res(0), 1)),
                Call("socket", (2,)),
                Call("connect", (Res(2), 1)),
            )
        )
        assert result.returns[0] == [0, 0, 1, 0]
        # Only one tunnel on the list.
        l2tp = kernel.subsystems["l2tp"]
        head = kernel.machine.memory.read_int(l2tp.list_head, 8)
        nxt = kernel.machine.memory.read_int(TUNNEL.addr(head, "next"), 8)
        assert nxt == 0

    def test_distinct_ids_chain(self, booted_l2tp):
        kernel, executor = booted_l2tp
        result = executor.run_sequential(
            prog(
                Call("socket", (2,)),
                Call("connect", (Res(0), 1)),
                Call("socket", (2,)),
                Call("connect", (Res(2), 2)),
            )
        )
        assert result.returns[0][-1] == 0
        l2tp = kernel.subsystems["l2tp"]
        head = kernel.machine.memory.read_int(l2tp.list_head, 8)
        nxt = kernel.machine.memory.read_int(TUNNEL.addr(head, "next"), 8)
        assert nxt != 0

    def test_sendmsg_after_connect_works(self, booted_l2tp):
        _, executor = booted_l2tp
        result = executor.run_sequential(
            prog(Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 9)))
        )
        assert result.returns[0] == [0, 0, 9]

    def test_sendmsg_without_connect_is_enotconn(self, booted_l2tp):
        _, executor = booted_l2tp
        result = executor.run_sequential(
            prog(Call("socket", (2,)), Call("sendmsg", (Res(0), 9)))
        )
        assert result.returns[0] == [0, ENOTCONN]

    def test_sock_initialised_after_sequential_register(self, booted_l2tp):
        kernel, executor = booted_l2tp
        executor.run_sequential(prog(Call("socket", (2,)), Call("connect", (Res(0), 3))))
        l2tp = kernel.subsystems["l2tp"]
        head = kernel.machine.memory.read_int(l2tp.list_head, 8)
        sock = kernel.machine.memory.read_int(TUNNEL.addr(head, "sock"), 8)
        assert sock != 0


class TestOrderViolation:
    """Bug #12: the tunnel is published before tunnel->sock is set."""

    def _forced_result(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        reader = prog(
            Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
        )
        l2tp = kernel.subsystems["l2tp"]

        class ForcePublishWindow:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                # Immediately after the writer publishes the tunnel on the
                # RCU list (and before tunnel->sock is initialised).
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_write
                    and access.addr == l2tp.list_head
                    and access.value != 0
                ):
                    self.switched = True
                    return True
                return False

        return executor.run_concurrent([writer, reader], scheduler=ForcePublishWindow())

    def test_forced_schedule_panics_with_null_deref(self):
        result = self._forced_result()
        assert result.panicked
        assert "NULL pointer dereference" in result.panic_message
        assert "pppol2tp_sendmsg" in result.panic_message

    def test_no_data_race_reported(self):
        """#12 is an order violation, NOT a data race: all the accesses
        involved are synchronised (RCU publish + WRITE_ONCE/READ_ONCE)."""
        from repro.detect.datarace import RaceDetector

        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        reader = prog(
            Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
        )
        l2tp = kernel.subsystems["l2tp"]

        class ForcePublishWindow:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_write
                    and access.addr == l2tp.list_head
                    and access.value != 0
                ):
                    self.switched = True
                    return True
                return False

        detector = RaceDetector()
        result = executor.run_concurrent(
            [writer, reader], scheduler=ForcePublishWindow(), race_detector=detector
        )
        assert result.panicked  # the bug fired...
        l2tp_races = [r for r in detector.reports() if r.involves("l2tp")]
        assert l2tp_races == []  # ...with no data race involved
