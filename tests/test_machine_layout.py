"""Unit tests for the struct layout DSL."""

import pytest

from repro.machine.layout import Struct, field


class TestStruct:
    def test_sequential_offsets(self):
        s = Struct("demo", field("a", 4), field("b", 8), field("c", 2))
        assert s["a"].offset == 0
        assert s["b"].offset == 4
        assert s["c"].offset == 12
        assert s.size == 14

    def test_addr_helper(self):
        s = Struct("demo", field("a", 4), field("b", 8))
        assert s.addr(0x1000, "b") == 0x1004

    def test_contains(self):
        s = Struct("demo", field("a", 4))
        assert "a" in s
        assert "z" not in s

    def test_unknown_field_raises(self):
        s = Struct("demo", field("a", 4))
        with pytest.raises(KeyError):
            s.addr(0, "nope")

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            Struct("demo", field("a", 4), field("a", 8))

    def test_zero_size_field_rejected(self):
        with pytest.raises(ValueError):
            field("bad", 0)

    def test_alignment_pads_total_size(self):
        s = Struct("demo", field("a", 3), align=8)
        assert s.size == 8

    def test_fields_tuple_order(self):
        s = Struct("demo", field("x", 1), field("y", 2))
        names = [f.name for f in s.fields()]
        assert names == ["x", "y"]

    def test_field_end(self):
        s = Struct("demo", field("a", 4), field("b", 8))
        assert s["b"].end == 12

    def test_empty_struct(self):
        s = Struct("empty")
        assert s.size == 0
        assert s.fields() == ()
