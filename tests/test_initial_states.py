"""Tests for multi-initial-state support (section 4.1's diversity knob)."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.orchestrate.pipeline import (
    Snowboard,
    SnowboardConfig,
    derive_initial_state,
)
from repro.sched.executor import Executor


class TestDeriveInitialState:
    def test_setup_state_contains_setup_effects(self):
        kernel, boot_snap = boot_kernel()
        setup = prog(Call("msgget", (3,)), Call("msgsnd", (3, 0x77)))
        derived = derive_initial_state(kernel, boot_snap, setup)

        executor = Executor(kernel, derived)
        result = executor.run_sequential(prog(Call("msgrcv", (3,))))
        assert result.returns[0] == [0x77]  # the queue pre-exists

    def test_boot_state_unaffected(self):
        kernel, boot_snap = boot_kernel()
        setup = prog(Call("msgget", (3,)))
        derive_initial_state(kernel, boot_snap, setup)

        executor = Executor(kernel, boot_snap)
        from repro.kernel.errors import ENOENT

        result = executor.run_sequential(prog(Call("msgrcv", (3,))))
        assert result.returns[0] == [ENOENT]  # no queue in the boot state

    def test_failing_setup_rejected(self):
        kernel, boot_snap = boot_kernel()

        def nullread(ctx):
            value = yield from ctx.load_word(8)
            return value

        kernel.register_syscall("nullread_setup", nullread)
        with pytest.raises(ValueError):
            derive_initial_state(kernel, boot_snap, prog(Call("nullread_setup", ())))

    def test_derived_state_is_deterministic(self):
        setup = prog(Call("msgget", (1,)), Call("socket", (2,)), Call("connect", (Res(1), 2)))
        k1, s1 = boot_kernel()
        k2, s2 = boot_kernel()
        d1 = derive_initial_state(k1, s1, setup)
        d2 = derive_initial_state(k2, s2, setup)
        assert d1.pages == d2.pages


class TestPipelineWithSetup:
    def test_pipeline_profiles_from_derived_state(self):
        """PMCs identified against the richer initial state differ from
        the plain boot state — pre-created objects shift the channels."""
        setup = prog(Call("msgget", (2,)), Call("msgget", (3,)))
        with_setup = Snowboard(
            SnowboardConfig(seed=5, corpus_budget=40, setup_program=setup)
        ).prepare()
        without = Snowboard(
            SnowboardConfig(seed=5, corpus_budget=40)
        ).prepare()
        assert with_setup.snapshot.label == "post-setup"
        assert without.snapshot.label == "post-boot"
        # A corpus msgget(2) from the derived state finds the queue
        # instead of creating it, so the profiles (and PMCs) diverge.
        assert len(with_setup.pmcset) != len(without.pmcset)

    def test_campaign_runs_from_derived_state(self):
        setup = prog(Call("msgget", (2,)))
        snowboard = Snowboard(
            SnowboardConfig(
                seed=5, corpus_budget=60, trials_per_pmc=4, setup_program=setup
            )
        ).prepare()
        campaign = snowboard.run_campaign("S-INS", test_budget=5)
        assert campaign.tested_pmcs == 5
